"""Resource-constrained list scheduling (the schedule-then-bind flow).

The classic alternative to Hebe's bind-then-schedule flow: operations
are placed cycle by cycle, at most ``count`` concurrent operations per
resource class, priority given to the operation with the longest path to
the sink (critical-path list scheduling).  No timing constraints and no
unbounded delays -- it is the baseline against which the paper's flow is
positioned, and the comparison bench uses it to show that binding first
plus relative scheduling achieves the same steady-state throughput while
additionally honouring min/max constraints.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.core.delay import is_unbounded
from repro.core.graph import ConstraintGraph


def list_schedule(graph: ConstraintGraph,
                  resource_counts: Mapping[str, int],
                  classes: Optional[Mapping[str, str]] = None
                  ) -> Dict[str, int]:
    """Critical-path list scheduling under resource constraints.

    Args:
        graph: a bounded-delay constraint graph (forward edges only are
            honoured; backward edges are rejected).
        resource_counts: available units per resource class.
        classes: operation name -> resource class; operations missing
            from the map are unconstrained.

    Returns:
        Start times per operation.

    Raises:
        ValueError: on unbounded operations or backward edges (use the
            relative scheduler for those).
    """
    if graph.backward_edges():
        raise ValueError("list scheduling does not support maximum timing "
                         "constraints; use relative scheduling")
    for vertex in graph.vertices():
        if vertex.name != graph.source and vertex.is_unbounded:
            raise ValueError(f"unbounded operation {vertex.name!r} not supported")
    classes = dict(classes or {})

    # Priority: longest path to the sink (critical-path heuristic).
    priority: Dict[str, int] = {}
    order = graph.forward_topological_order()
    for vertex in reversed(order):
        downstream = [priority[e.head] + e.static_weight
                      for e in graph.out_edges(vertex, forward_only=True)]
        priority[vertex] = max(downstream) if downstream else 0

    indegree = {name: 0 for name in order}
    for edge in graph.forward_edges():
        indegree[edge.head] += 1

    start: Dict[str, int] = {}
    finish: Dict[str, int] = {}
    ready: List[str] = [name for name, d in indegree.items() if d == 0]
    busy: Dict[str, List[int]] = {}  # class -> finish times of running ops
    clock = 0
    pending_edges = {name: graph.out_edges(name, forward_only=True)
                     for name in order}

    remaining = set(order)
    max_clock = 10 * (sum(_delay(graph, n) for n in order) + len(order) + 1)
    while remaining:
        started_this_cycle: Dict[str, int] = {}

        def units_free(rclass: str) -> bool:
            capacity = resource_counts.get(rclass, 1)
            running = len([t for t in busy.get(rclass, []) if t > clock])
            return running + started_this_cycle.get(rclass, 0) < capacity

        # Zero-delay predecessors finishing at `clock` unlock successors
        # in the same cycle: iterate to an intra-cycle fixpoint.
        progress = True
        while progress:
            progress = False
            candidates = sorted(
                (name for name in ready if name not in start),
                key=lambda name: (-priority[name], name))
            for name in candidates:
                earliest = max(
                    (finish[e.tail]
                     for e in graph.in_edges(name, forward_only=True)),
                    default=0)
                if earliest > clock:
                    continue
                rclass = classes.get(name)
                if rclass is not None and not units_free(rclass):
                    continue
                delay = _delay(graph, name)
                start[name] = clock
                finish[name] = clock + delay
                if rclass is not None:
                    busy.setdefault(rclass, []).append(finish[name])
                    if delay == 0:
                        # Zero-delay ops never show as "running" (their
                        # finish equals the clock) but still hold the
                        # unit for this cycle.
                        started_this_cycle[rclass] = \
                            started_this_cycle.get(rclass, 0) + 1
                remaining.discard(name)
                progress = True
                for edge in pending_edges[name]:
                    indegree[edge.head] -= 1
                    if indegree[edge.head] == 0:
                        ready.append(edge.head)
        if remaining:
            clock += 1
            if clock > max_clock:
                raise RuntimeError("list scheduler failed to converge")
    return start


def _delay(graph: ConstraintGraph, name: str) -> int:
    delay = graph.delta(name)
    return 0 if is_unbounded(delay) else delay
