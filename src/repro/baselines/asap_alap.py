"""Classical ASAP / ALAP scheduling of fixed-delay graphs.

The textbook baselines: ASAP pushes every operation as early as data
dependencies allow; ALAP pushes it as late as a deadline allows; their
difference is the *mobility* (slack) used by list schedulers and
force-directed schedulers.  Neither supports unbounded delays or
maximum timing constraints -- the gap relative scheduling fills.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.exceptions import UnfeasibleConstraintsError
from repro.core.graph import ConstraintGraph


def _require_bounded(graph: ConstraintGraph, who: str) -> None:
    for vertex in graph.vertices():
        if vertex.name != graph.source and vertex.is_unbounded:
            raise ValueError(
                f"{who} requires fixed execution delays, but {vertex.name!r} "
                f"is unbounded; use relative scheduling instead")


def asap_schedule(graph: ConstraintGraph) -> Dict[str, int]:
    """As-soon-as-possible start times over the forward edges.

    Ignores backward edges (classical ASAP has no maximum constraints).

    Raises:
        ValueError: if the graph has unbounded operations.
    """
    _require_bounded(graph, "ASAP scheduling")
    start: Dict[str, int] = {}
    for vertex in graph.forward_topological_order():
        candidates = [start[e.tail] + e.static_weight
                      for e in graph.in_edges(vertex, forward_only=True)]
        start[vertex] = max(candidates) if candidates else 0
    return start


def alap_schedule(graph: ConstraintGraph,
                  deadline: Optional[int] = None) -> Dict[str, int]:
    """As-late-as-possible start times meeting *deadline* at the sink.

    Args:
        graph: a bounded-delay constraint graph.
        deadline: sink start time; defaults to the ASAP sink time (the
            critical-path-tight deadline).

    Raises:
        UnfeasibleConstraintsError: when the deadline is shorter than
            the critical path.
    """
    _require_bounded(graph, "ALAP scheduling")
    asap = asap_schedule(graph)
    if deadline is None:
        deadline = asap[graph.sink]
    if deadline < asap[graph.sink]:
        raise UnfeasibleConstraintsError(
            f"deadline {deadline} is below the critical path "
            f"{asap[graph.sink]}")
    start: Dict[str, int] = {}
    for vertex in reversed(graph.forward_topological_order()):
        candidates = [start[e.head] - e.static_weight
                      for e in graph.out_edges(vertex, forward_only=True)]
        start[vertex] = min(candidates) if candidates else deadline
    return start


def mobility(graph: ConstraintGraph,
             deadline: Optional[int] = None) -> Dict[str, int]:
    """Scheduling slack per operation: ``ALAP(v) - ASAP(v)``.

    Zero-mobility operations form the critical path.
    """
    asap = asap_schedule(graph)
    alap = alap_schedule(graph, deadline)
    return {vertex: alap[vertex] - asap[vertex] for vertex in asap}
