"""Static worst-case budgeting of unbounded delays.

Before relative scheduling, a designer facing an operation of unknown
delay had to *assume a budget*: replace the unbounded delay with a fixed
``B`` and schedule traditionally.  The resulting control is a single
counter -- simple -- but the schedule is wrong in both directions:

* if the operation actually takes longer than ``B``, downstream
  operations start too early (a correctness failure for synchronization
  and a violation of data dependencies);
* if it takes less, every downstream operation waits out the full
  budget (a performance loss relative scheduling's ASAP property avoids).

The ablation benches quantify both effects against the minimum relative
schedule across delay profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.baselines.bellman_ford import bellman_ford_schedule
from repro.core.delay import UNBOUNDED, is_unbounded
from repro.core.graph import ConstraintGraph


@dataclass(frozen=True)
class WorstCaseOutcome:
    """Evaluation of a budgeted schedule under an actual delay profile.

    Attributes:
        start_times: the static schedule computed with the budget.
        safe: True when the budget covered every actual delay (no
            operation starts before its unbounded predecessors finish).
        latency: the static sink start (paid regardless of actual
            delays).
        wasted_cycles: latency minus what an ideal (relative) schedule
            would need under the actual profile; 0 or negative means the
            budget was too small somewhere.
    """

    start_times: Dict[str, int]
    safe: bool
    latency: int
    wasted_cycles: int


def budget_graph(graph: ConstraintGraph, budget: int) -> ConstraintGraph:
    """A copy of *graph* with every unbounded delay replaced by *budget*.

    The source keeps its role (activation reference).
    """
    from repro.core.graph import Edge, Vertex

    clone = ConstraintGraph.__new__(ConstraintGraph)
    clone.source = graph.source
    clone.sink = graph.sink
    clone._vertices = {}
    clone._edges = []
    clone._out = {}
    clone._in = {}
    from repro.sanitize import make_rlock

    clone._version = 0
    clone._analysis_cache = {}
    clone._cache_version = -1
    clone._cache_lock = make_rlock("graph.cache")
    clone._vindex = {}
    clone._vdelay_tok = []
    clone._epack = []
    clone._pack_dirty = True  # rebuilt lazily from _vertices/_edges
    for vertex in graph.vertices():
        delay = vertex.delay
        if vertex.name == graph.source:
            new_vertex = Vertex(vertex.name, UNBOUNDED, vertex.tag)
        elif is_unbounded(delay):
            new_vertex = Vertex(vertex.name, budget, vertex.tag)
        else:
            new_vertex = Vertex(vertex.name, delay, vertex.tag)
        clone._vertices[new_vertex.name] = new_vertex
        clone._out[new_vertex.name] = []
        clone._in[new_vertex.name] = []
    for edge in graph.edges():
        if edge.is_unbounded and edge.tail != graph.source:
            new_edge = Edge(edge.tail, edge.head,
                            clone._vertices[edge.tail].delay, edge.kind)
        else:
            new_edge = edge
        clone._edges.append(new_edge)
        clone._out[new_edge.tail].append(new_edge)
        clone._in[new_edge.head].append(new_edge)
    return clone


def worst_case_schedule(graph: ConstraintGraph, budget: int,
                        actual: Optional[Mapping[str, int]] = None
                        ) -> WorstCaseOutcome:
    """Schedule with a static *budget* per unbounded operation and judge
    the result against an *actual* delay profile.

    Args:
        graph: a constraint graph with unbounded operations.
        budget: cycles assumed for every unbounded delay.
        actual: the delays realized at run time (defaults to the budget
            itself, i.e. a perfect guess).

    Returns:
        A :class:`WorstCaseOutcome`; ``safe`` is False when any actual
        delay exceeds the budget (the static schedule would start a
        successor before its unbounded predecessor completed).
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    actual = dict(actual or {})
    budgeted = budget_graph(graph, budget)
    # Treat the budgeted source as bounded 0 for the baseline scheduler.
    static = bellman_ford_schedule(_pin_source(budgeted))

    unbounded_ops = [v.name for v in graph.vertices()
                     if v.name != graph.source and v.is_unbounded]
    safe = all(actual.get(name, 0) <= budget for name in unbounded_ops)
    latency = static[graph.sink]

    # The ideal latency comes from the minimum relative schedule
    # evaluated at the actual profile.
    from repro.core.scheduler import schedule_graph

    relative = schedule_graph(graph)
    ideal = relative.start_times(actual)[graph.sink]
    return WorstCaseOutcome(start_times=static, safe=safe, latency=latency,
                            wasted_cycles=latency - ideal)


def _pin_source(graph: ConstraintGraph) -> ConstraintGraph:
    """Replace the unbounded source with a zero-delay vertex so the
    fixed-delay baseline accepts the graph."""
    from repro.core.graph import Edge, Vertex

    clone = graph.copy()
    clone._vertices[graph.source] = Vertex(graph.source, 0)
    rewritten = []
    for edge in clone._edges:
        if edge.tail == graph.source and edge.is_unbounded:
            rewritten.append(Edge(edge.tail, edge.head, 0, edge.kind))
        else:
            rewritten.append(edge)
    clone._edges = rewritten
    clone._out = {name: [] for name in clone._vertices}
    clone._in = {name: [] for name in clone._vertices}
    clone._pack_dirty = True  # vertex delay and edge weights rewritten
    clone._version += 1
    for edge in clone._edges:
        clone._out[edge.tail].append(edge)
        clone._in[edge.head].append(edge)
    return clone
