"""Baseline schedulers that relative scheduling generalizes.

* :mod:`repro.baselines.asap_alap` -- classical ASAP/ALAP scheduling of
  fixed-delay graphs, plus mobility analysis.
* :mod:`repro.baselines.bellman_ford` -- fixed-delay scheduling under
  min/max timing constraints by longest-path relaxation, with the
  Camposano-Kunzmann consistency condition (no positive cycle); this is
  the traditional formulation the paper's Section III starts from, and
  reduces to the relative scheduler when no unbounded operations exist.
* :mod:`repro.baselines.worst_case` -- the pre-relative-scheduling way
  of handling unknown delays: assume a static budget ``B`` for every
  unbounded operation.  Used by the ablation benches to show what
  relative scheduling buys (no budget is simultaneously safe and
  efficient).
* :mod:`repro.baselines.list_scheduler` -- classic resource-constrained
  list scheduling, the scheduling-before-binding alternative flow.
"""

from repro.baselines.asap_alap import alap_schedule, asap_schedule, mobility
from repro.baselines.bellman_ford import (
    bellman_ford_schedule,
    constraints_consistent,
)
from repro.baselines.worst_case import WorstCaseOutcome, worst_case_schedule
from repro.baselines.list_scheduler import list_schedule

__all__ = [
    "alap_schedule",
    "asap_schedule",
    "mobility",
    "bellman_ford_schedule",
    "constraints_consistent",
    "WorstCaseOutcome",
    "worst_case_schedule",
    "list_schedule",
]
