"""Scheduling-as-a-service: the relative scheduler behind an HTTP API.

The service stack, bottom up:

* :mod:`repro.service.pool` -- a bounded worker pool; connections are
  cheap, scheduling work is admitted (:class:`PoolSaturatedError`
  -> HTTP 503);
* :mod:`repro.service.batcher` -- leader/follower coalescing of
  concurrent ``/schedule`` requests into one
  :func:`~repro.core.batch.schedule_many` arena sweep;
* :mod:`repro.service.app` -- transport-agnostic dispatch: endpoints,
  budgets, the error contract;
* :mod:`repro.service.sessions` -- the bounded table of durable
  executor sessions (journaled ``/sessions`` streams with idempotent
  replay and crash recovery);
* :mod:`repro.service.server` -- the stdlib HTTP front
  (``ThreadingHTTPServer``) and :func:`serve`;
* :mod:`repro.service.client` -- the JSON client the tests, smoke
  harness and benchmark share.

Start one from the command line with ``repro serve``.
"""

from repro.service.app import (
    PROTOCOL_VERSION,
    SchedulingService,
    ServiceConfig,
    ServiceError,
)
from repro.service.batcher import CoalescingBatcher
from repro.service.client import ServiceClient
from repro.service.pool import (
    JobTimeoutError,
    PoolSaturatedError,
    PoolShutdownError,
    WorkerPool,
)
from repro.service.server import ServiceServer, serve
from repro.service.sessions import Session, SessionSealedError, SessionTable

__all__ = [
    "PROTOCOL_VERSION",
    "CoalescingBatcher",
    "JobTimeoutError",
    "PoolSaturatedError",
    "PoolShutdownError",
    "SchedulingService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "Session",
    "SessionSealedError",
    "SessionTable",
    "WorkerPool",
    "serve",
]
