"""The HTTP front of the scheduling service (stdlib only).

``ThreadingHTTPServer`` accepts connections on per-connection threads,
but those threads never schedule anything themselves: every POST body
is decoded on the handler thread and then dispatched through the
bounded :class:`~repro.service.pool.WorkerPool`, so the number of
graphs being scheduled at once is exactly ``config.workers`` no matter
how many sockets are open.  GET endpoints (``/healthz``, ``/stats``)
bypass the pool -- they must answer even when the pool is saturated,
or the health check would report the overload it is supposed to survive.

Transport-level failures map onto the same error contract the
dispatcher uses:

* unparsable / non-UTF-8 body -> 400,
* body over ``max_body_bytes`` -> 413 (checked against Content-Length
  *before* reading, so an oversized upload costs one header read),
* saturated pool -> 503 with a ``Retry-After`` hint,
* pool job timeout -> 504.

Startup logs the *actual* worker count and queue bound -- the
configuration is never silently capped, per the scaling rules.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from repro.sanitize import make_lock
from repro.service.app import SchedulingService, ServiceConfig
from repro.service.pool import JobTimeoutError, PoolSaturatedError, WorkerPool

LOGGER = logging.getLogger("repro.service")


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns the service core and worker pool."""

    daemon_threads = True

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.service = SchedulingService(self.config)
        self.pool = WorkerPool(workers=self.config.workers,
                               queue_capacity=self.config.queue_capacity)
        super().__init__((self.config.host, self.config.port),
                         _ServiceHandler)
        # Port 0 binds an ephemeral port; expose what we actually got.
        self.port = self.server_address[1]
        LOGGER.info(
            "scheduling service on %s:%d -- %d workers, queue bound %d, "
            "batching %s",
            self.config.host, self.port, self.pool.workers,
            self.pool.queue_capacity,
            "on" if self.service.batcher is not None else "off")
        if self.config.journal_dir is not None:
            LOGGER.info(
                "session journals in %s -- %d session(s) recovered",
                self.config.journal_dir, self.service.recovered_sessions)
        # io_ok: shutdown closes sockets and drains the pool while
        # held -- teardown-only, declared in the sanitizer policy.
        self._down = make_lock("server.down", io_ok=True)

    def shutdown(self) -> None:
        # Guard the teardown: the SIGTERM drain thread and serve()'s
        # finally block may both get here.
        with self._down:
            super().shutdown()
            self.pool.shutdown(wait=True)
            self.service.close()

    def drain(self) -> None:
        """Graceful drain (the SIGTERM path): stop session admission
        (503 + Retry-After), then stop accepting connections, finish
        queued work, and fsync every journal -- in that order, so a
        kill arriving mid-drain loses nothing acknowledged.

        Must not run on the ``serve_forever`` thread (``shutdown``
        would deadlock there); the signal handler spawns a thread.
        """
        self.service.draining.set()
        self.shutdown()


class _ServiceHandler(BaseHTTPRequestHandler):
    """One request: read, decode, dispatch through the pool, respond."""

    protocol_version = "HTTP/1.1"
    # Responses are written as two small segments (headers, body);
    # Nagle + the peer's delayed ACK would add ~40 ms per request.
    disable_nagle_algorithm = True
    server: ServiceServer  # narrowed for the attribute accesses below

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        LOGGER.debug("%s -- %s", self.address_string(), format % args)

    def _respond(self, status: int, body: Any,
                 extra_headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self) -> Optional[Any]:
        """Decode the JSON body, or respond with the error and None."""
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            self._respond(400, {"error": "Content-Length required",
                                "error_type": "MalformedInputError"})
            return None
        if length > self.server.config.max_body_bytes:
            self._respond(413, {
                "error": f"request body of {length} bytes exceeds the "
                         f"{self.server.config.max_body_bytes} byte limit",
                "error_type": "BudgetExceededError"})
            return None
        raw = self.rfile.read(length)

        def reject_nonfinite(token: str) -> float:
            raise ValueError(f"non-finite number {token}")

        try:
            return json.loads(raw.decode("utf-8"),
                              parse_constant=reject_nonfinite)
        except (UnicodeDecodeError, ValueError) as error:
            self._respond(400, {
                "error": f"request body is not valid JSON: {error}",
                "error_type": "MalformedInputError"})
            return None

    # -- verbs ---------------------------------------------------------

    def _respond_dispatch(self, status: int, body: Any) -> None:
        # Every 503 -- saturation, drain, journal outage -- carries a
        # Retry-After hint so the client's bounded retry has a cadence.
        self._respond(status, body,
                      extra_headers=((("Retry-After", "1"),)
                                     if status == 503 else ()))

    def do_GET(self) -> None:
        path = self.path.split("?", 1)[0]
        # Health and stats answer on the handler thread: they must work
        # while the pool is saturated.
        status, body = self.server.service.dispatch("GET", path, None)
        self._respond_dispatch(status, body)

    def do_POST(self) -> None:
        path = self.path.split("?", 1)[0]
        payload = self._read_body()
        if payload is None:
            return
        self._pooled_dispatch("POST", path, payload)

    def do_DELETE(self) -> None:
        # DELETE bodies are ignored (none of the endpoints take one);
        # the verb mutates state, so it goes through the pool like POST.
        self._pooled_dispatch("DELETE", self.path.split("?", 1)[0], None)

    def _pooled_dispatch(self, method: str, path: str,
                         payload: Any) -> None:
        tenant = self.headers.get("X-Tenant")
        service = self.server.service
        try:
            status, body = self.server.pool.run(
                lambda: service.dispatch(method, path, payload, tenant),
                timeout=self.server.config.request_timeout_s)
        except PoolSaturatedError as error:
            self._respond(503, {"error": str(error),
                                "error_type": "PoolSaturatedError"},
                          extra_headers=(("Retry-After", "1"),))
            return
        except JobTimeoutError as error:
            self._respond(504, {"error": str(error),
                                "error_type": "JobTimeoutError"})
            return
        self._respond_dispatch(status, body)


def serve(config: Optional[ServiceConfig] = None, *,
          ready: Optional[threading.Event] = None) -> None:
    """Run the service until interrupted (the ``repro serve`` path).

    Args:
        config: service configuration; defaults bind 127.0.0.1:8080.
        ready: optional event set once the socket is bound -- lets
            tests and the smoke harness start a server on port 0 in a
            thread and learn the real port race-free (via the server
            object they construct themselves; this helper is the
            blocking convenience wrapper).
    """
    server = ServiceServer(config)
    if ready is not None:
        ready.set()
    try:
        # SIGTERM -> graceful drain: refuse new session work with
        # 503 + Retry-After, stop the acceptor, finish queued jobs,
        # fsync every journal, exit 0.  The handler must hand the
        # actual shutdown to another thread -- calling it from the
        # serve_forever thread would deadlock.
        signal.signal(
            signal.SIGTERM,
            lambda signum, frame: threading.Thread(
                target=server.drain, name="drain", daemon=True).start())
    except ValueError:
        pass  # not the main thread (test harnesses): no signal hook
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
