"""A minimal JSON client for the scheduling service (stdlib only).

Used by the integration tests, the CI smoke harness and the service
benchmark so they all speak to the server the same way.  One
:class:`ServiceClient` holds one persistent HTTP/1.1 connection (the
server keeps connections alive), so per-request overhead in the
benchmark measures the service, not TCP handshakes.  The client is
**not** thread-safe -- give each thread its own instance, which is
exactly what the concurrency tests do.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, Optional, Tuple


class ServiceClient:
    """One persistent connection to a running scheduling service."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080, *,
                 timeout: float = 30.0,
                 tenant: Optional[str] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.tenant = tenant
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
            self._conn.connect()
            # http.client sends headers and body as separate segments;
            # without TCP_NODELAY, Nagle holds the second one until the
            # server's delayed ACK (~40 ms per request).
            self._conn.sock.setsockopt(socket.IPPROTO_TCP,
                                       socket.TCP_NODELAY, 1)
        return self._conn

    def request(self, method: str, path: str,
                payload: Optional[Any] = None) -> Tuple[int, Dict[str, Any]]:
        """One round-trip; returns ``(status, decoded body)``.

        Retries once on a stale keep-alive connection (the server may
        have closed it between requests), never on fresh failures.
        """
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"}
        if self.tenant is not None:
            headers["X-Tenant"] = self.tenant
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        return response.status, json.loads(raw.decode("utf-8"))

    # -- endpoint conveniences ----------------------------------------

    def schedule(self, graph_dict: Dict[str, Any],
                 **options: Any) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", "/schedule",
                            {"graph": graph_dict, **options})

    def schedule_many(self, graph_dicts: Any,
                      **options: Any) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", "/schedule_many",
                            {"graphs": graph_dicts, **options})

    def lint(self, graph_dict: Dict[str, Any],
             **options: Any) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", "/lint",
                            {"graph": graph_dict, **options})

    def observe(self, graph_dict: Dict[str, Any],
                **options: Any) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", "/observe",
                            {"graph": graph_dict, **options})

    def chaos(self, **options: Any) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", "/chaos", dict(options))

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        return self.request("GET", "/healthz")

    def stats(self) -> Tuple[int, Dict[str, Any]]:
        return self.request("GET", "/stats")

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
