"""A minimal JSON client for the scheduling service (stdlib only).

Used by the integration tests, the CI smoke harness and the service
benchmark so they all speak to the server the same way.  One
:class:`ServiceClient` holds one persistent HTTP/1.1 connection (the
server keeps connections alive), so per-request overhead in the
benchmark measures the service, not TCP handshakes.  The client is
**not** thread-safe -- give each thread its own instance, which is
exactly what the concurrency tests do.

Load shedding: a saturated server answers 503 with a ``Retry-After``
hint.  By default the client surfaces that 503 to the caller (the
benchmark and the concurrency tests want to *see* shed load).  Pass
``retries=N`` to opt in to bounded retry: the client sleeps for the
server's ``Retry-After`` (capped at ``retry_cap_s``), falls back to
doubling backoff when the hint is missing or unparsable, and re-sends
at most N times before returning the final 503.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Dict, Optional, Tuple


class ServiceClient:
    """One persistent connection to a running scheduling service.

    Args:
        retries: how many times to re-send a request answered 503
            (pool saturated) before giving up.  0 -- the default --
            never retries; shed load is returned to the caller.
        retry_cap_s: upper bound on any single retry sleep, whether it
            came from ``Retry-After`` or from the backoff fallback.
    """

    #: Backoff fallback when a 503 carries no usable ``Retry-After``:
    #: ``_BACKOFF_BASE_S * 2**attempt``, capped at ``retry_cap_s``.
    _BACKOFF_BASE_S = 0.05

    def __init__(self, host: str = "127.0.0.1", port: int = 8080, *,
                 timeout: float = 30.0,
                 tenant: Optional[str] = None,
                 retries: int = 0,
                 retry_cap_s: float = 2.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.tenant = tenant
        self.retries = retries
        self.retry_cap_s = retry_cap_s
        self.retries_used = 0
        self._conn: Optional[http.client.HTTPConnection] = None
        self._sleep = time.sleep  # injectable for tests

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
            self._conn.connect()
            # http.client sends headers and body as separate segments;
            # without TCP_NODELAY, Nagle holds the second one until the
            # server's delayed ACK (~40 ms per request).
            self._conn.sock.setsockopt(socket.IPPROTO_TCP,
                                       socket.TCP_NODELAY, 1)
        return self._conn

    def _round_trip(self, method: str, path: str, body: Optional[str],
                    headers: Dict[str, str]
                    ) -> Tuple[int, Optional[str], Dict[str, Any]]:
        """One HTTP exchange -> (status, retry-after header, body).

        Retries once on a stale keep-alive connection (the server may
        have closed it between requests), never on fresh failures.
        """
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        return (response.status, response.getheader("Retry-After"),
                json.loads(raw.decode("utf-8")))

    def _retry_delay(self, retry_after: Optional[str], attempt: int) -> float:
        try:
            delay = float(retry_after)  # type: ignore[arg-type]
            if delay < 0:
                raise ValueError
        except (TypeError, ValueError):
            delay = self._BACKOFF_BASE_S * (2 ** attempt)
        return min(delay, self.retry_cap_s)

    def request(self, method: str, path: str,
                payload: Optional[Any] = None) -> Tuple[int, Dict[str, Any]]:
        """One round-trip; returns ``(status, decoded body)``.

        With ``retries > 0``, a 503 is retried after honoring the
        server's ``Retry-After`` hint (capped), at most ``retries``
        times; the last response is returned either way.
        """
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"}
        if self.tenant is not None:
            headers["X-Tenant"] = self.tenant
        attempt = 0
        while True:
            status, retry_after, decoded = self._round_trip(
                method, path, body, headers)
            if status != 503 or attempt >= self.retries:
                return status, decoded
            self._sleep(self._retry_delay(retry_after, attempt))
            attempt += 1
            self.retries_used += 1

    # -- endpoint conveniences ----------------------------------------

    def schedule(self, graph_dict: Dict[str, Any],
                 **options: Any) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", "/schedule",
                            {"graph": graph_dict, **options})

    def schedule_many(self, graph_dicts: Any,
                      **options: Any) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", "/schedule_many",
                            {"graphs": graph_dicts, **options})

    def execute(self, graph_dict: Dict[str, Any], events: Any,
                **options: Any) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", "/execute",
                            {"graph": graph_dict, "events": events,
                             **options})

    # -- durable sessions ---------------------------------------------
    #
    # All four go through request(), so ``retries=N`` gives sessions
    # the same bounded 503 retry as /schedule -- safe end-to-end
    # because event POSTs are idempotent by sequence number: a retry
    # of an acknowledgement lost in flight replays the original
    # response instead of double-applying the batch.

    def create_session(self, graph_dict: Dict[str, Any],
                       **options: Any) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", "/sessions",
                            {"graph": graph_dict, **options})

    def post_events(self, session_id: str, seq: int, events: Any
                    ) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", f"/sessions/{session_id}/events",
                            {"seq": seq, "events": events})

    def get_session(self, session_id: str) -> Tuple[int, Dict[str, Any]]:
        return self.request("GET", f"/sessions/{session_id}")

    def delete_session(self, session_id: str) -> Tuple[int, Dict[str, Any]]:
        return self.request("DELETE", f"/sessions/{session_id}")

    def lint(self, graph_dict: Dict[str, Any],
             **options: Any) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", "/lint",
                            {"graph": graph_dict, **options})

    def observe(self, graph_dict: Dict[str, Any],
                **options: Any) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", "/observe",
                            {"graph": graph_dict, **options})

    def chaos(self, **options: Any) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", "/chaos", dict(options))

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        return self.request("GET", "/healthz")

    def stats(self) -> Tuple[int, Dict[str, Any]]:
        return self.request("GET", "/stats")

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
