"""Request coalescing: concurrent ``/schedule`` calls -> one arena sweep.

The batched kernel (:func:`repro.core.batch.schedule_many`) amortizes
its fixed numpy dispatch cost over a whole corpus, but an HTTP service
receives graphs one request at a time.  The batcher closes that gap
with a leader/follower protocol:

* the first request to arrive becomes the **leader**: it waits up to
  ``window_s`` (or until ``max_batch`` requests are pending) for
  followers, then runs the whole batch through ``schedule_many`` on its
  own thread;
* **followers** just park on their slot's event and wake up with a
  result (or that graph's own taxonomy exception -- per-graph failures
  never poison the batch, exactly as in ``schedule_many``).

Results are FULL-anchor-mode schedules -- bit-identical to
``schedule_graph(graph, anchor_mode=AnchorMode.FULL)`` by the PR-6
batch-consistency oracle invariant -- so coalescing is invisible to
clients beyond latency.  The shared :class:`ScheduleCache` (optional)
turns repeated designs into lookups across requests and processes.

The protocol is synchronous on purpose: no dedicated batcher thread to
supervise, no queue to bound separately (the worker pool already bounds
concurrency), and a batch of one degrades to a plain ``schedule_many``
call of size one.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.sanitize import make_condition
from repro.core.batch import schedule_many
from repro.core.graph import ConstraintGraph
from repro.core.resultcache import ScheduleCache
from repro.core.schedule import RelativeSchedule


class _Slot:
    """One coalesced request: its graph, and later its outcome."""

    __slots__ = ("graph", "done", "schedule", "error", "cached")

    def __init__(self, graph: ConstraintGraph) -> None:
        self.graph = graph
        self.done = threading.Event()
        self.schedule: Optional[RelativeSchedule] = None
        self.error: Optional[BaseException] = None
        self.cached = False


class CoalescingBatcher:
    """Coalesce concurrent schedule requests into ``schedule_many`` runs.

    Args:
        window_s: how long a leader lingers for followers.  Zero is
            legal (coalesces only truly simultaneous arrivals).
        max_batch: flush immediately once this many requests pend.
        cache: optional shared persistent schedule cache.
        auto_well_pose: forwarded to ``schedule_many``.
    """

    def __init__(self, *, window_s: float = 0.002, max_batch: int = 64,
                 cache: Optional[ScheduleCache] = None,
                 auto_well_pose: bool = True) -> None:
        self.window_s = window_s
        self.max_batch = max_batch
        self.cache = cache
        self.auto_well_pose = auto_well_pose
        self._cond = make_condition("batcher.pending")
        self._pending: List[_Slot] = []
        self._leader_active = False
        # Telemetry (read under the condition's lock via stats()).
        self._batches = 0
        self._requests = 0
        self._coalesced = 0  # requests that shared a batch with others
        self._largest = 0

    def schedule(self, graph: ConstraintGraph) -> RelativeSchedule:
        """Schedule *graph*, possibly coalesced with concurrent callers.

        Returns the FULL-anchor-mode minimum relative schedule; raises
        exactly what ``schedule_graph`` would raise for this graph.
        """
        slot = _Slot(graph)
        with self._cond:
            self._requests += 1
            self._pending.append(slot)
            lead = not self._leader_active
            if lead:
                self._leader_active = True
            elif len(self._pending) >= self.max_batch:
                self._cond.notify_all()  # wake the lingering leader
        if lead:
            self._lead()
        slot.done.wait()
        if slot.error is not None:
            raise slot.error
        assert slot.schedule is not None
        return slot.schedule

    def _lead(self) -> None:
        """Linger for followers, then run the batch (leader thread)."""
        deadline = time.monotonic() + self.window_s
        with self._cond:
            while len(self._pending) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            batch = self._pending
            self._pending = []
            # Hand leadership to the next arrival before the (possibly
            # long) sweep below, so new requests start a fresh round
            # instead of waiting for this one.
            self._leader_active = False
            self._batches += 1
            self._largest = max(self._largest, len(batch))
            if len(batch) > 1:
                self._coalesced += len(batch)
        try:
            run = schedule_many([slot.graph for slot in batch],
                                cache=self.cache,
                                auto_well_pose=self.auto_well_pose)
            for slot, result in zip(batch, run):
                try:
                    slot.schedule = result.unpack()
                    slot.cached = result.cached
                except BaseException as error:  # noqa: B036 -- re-raised on the slot's own thread
                    slot.error = error
        except BaseException as error:  # noqa: B036 -- fanned out to every waiter, re-raised there
            # A batch-level failure (deadline, internal error) reaches
            # every waiter; nobody is left parked forever.
            for slot in batch:
                if slot.schedule is None and slot.error is None:
                    slot.error = error
        finally:
            for slot in batch:
                slot.done.set()

    def stats(self) -> Dict[str, Any]:
        """Coalescing counters (for ``/stats`` and the benchmarks)."""
        with self._cond:
            return {
                "requests": self._requests,
                "batches": self._batches,
                "coalesced_requests": self._coalesced,
                "largest_batch": self._largest,
            }
