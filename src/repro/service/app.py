"""The scheduling service's request core (transport-agnostic).

:class:`SchedulingService` maps JSON request payloads to JSON response
payloads plus an HTTP status, with no socket code -- the HTTP layer
(:mod:`repro.service.server`) and the tests drive the same dispatch.

Wire format: graphs travel as :mod:`repro.qa.serialize` dicts (the
fuzzer's and the CLI's format); schedules come back as
:func:`repro.io.schedule_to_dict` documents; lint responses are SARIF
2.1 logs; observe responses are observability run reports.

Error contract (the CLI's ``error:`` contract, mapped onto HTTP):
every failure body is ``{"error": <message>, "error_type": <class>}``
where ``<message>`` is character-identical to what ``repro <cmd>``
would print after ``error:``.

========================  ======  =========================================
condition                 status  source
========================  ======  =========================================
malformed body / graph    400     ``MalformedInputError`` and JSON errors
over budget               429     ``BudgetExceededError`` (admission)
unschedulable graph       422     other ``ConstraintGraphError`` taxonomy
unknown endpoint          404     routing
wrong method              405     routing
body too large            413     ``max_body_bytes``
pool saturated            503     :class:`~repro.service.pool.PoolSaturatedError`
========================  ======  =========================================

Admission control happens *before* scheduling work: the per-tenant
:class:`~repro.resilience.guard.RunBudget` (``X-Tenant`` header selects
it; ``default_budget`` otherwise) rejects oversized graphs and
over-bound iteration counts up front, exactly like ``guarded_schedule``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.sanitize import make_lock
from repro.core.anchors import AnchorMode
from repro.core.batch import schedule_many
from repro.core.exceptions import (
    BudgetExceededError,
    ConstraintGraphError,
    MalformedInputError,
)
from repro.core.graph import ConstraintGraph
from repro.core.resultcache import ScheduleCache
from repro.io import schedule_to_dict
from repro.observability import Tracer, build_report, use_tracer
from repro.resilience.guard import (
    RunBudget,
    guarded_schedule,
    untrusted_graph_from_dict,
)
from repro.service.batcher import CoalescingBatcher
from repro.service.sessions import (
    Session,
    SessionSealedError,
    SessionTable,
)

#: Service protocol version, stamped into /healthz and /stats.
PROTOCOL_VERSION = 1

#: Endpoint ceilings that are service policy, not tenant budget: they
#: bound the *work multiplier* a single request may ask for.
MAX_OBSERVE_RUNS = 100
MAX_CHAOS_CASES = 500
MAX_BATCH_GRAPHS = 10_000
MAX_EXECUTE_EVENTS = 10_000

#: Cumulative per-session event cap: a single live stream may feed at
#: most this many completion events over its whole lifetime (each batch
#: is additionally capped at :data:`MAX_EXECUTE_EVENTS`).
MAX_SESSION_EVENTS = 100_000


class ServiceError(Exception):
    """A request-level failure with an HTTP status and a clean message.

    *body* overrides the default ``{"error", "error_type"}`` response
    body -- the session apply path uses it so a watchdog abort can
    carry the batch's partial delta (and so an idempotent replay of a
    non-200 acknowledgement reproduces the original body exactly).
    """

    def __init__(self, status: int, message: str,
                 error_type: str = "ServiceError",
                 body: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.body = body


class ServiceConfig:
    """Everything a service process needs to know, in one place.

    Args:
        host/port: bind address (port 0 -> ephemeral, see server).
        workers: worker-pool size; this is the real concurrency and is
            logged at startup, never silently capped.
        queue_capacity: pending-job bound (None -> ``8 * workers``).
        batch_window_ms: coalescing window for ``/schedule`` (0 still
            coalesces simultaneous arrivals; ``batching=False`` turns
            the batcher off entirely).
        max_batch: coalescing flush threshold.
        cache_path: optional persistent schedule-cache JSONL shared by
            the batcher and ``/schedule_many``.
        default_budget: per-request admission budget when the tenant
            has no specific one.
        tenant_budgets: per-tenant overrides keyed by ``X-Tenant``.
        max_body_bytes: request-body cap (HTTP 413 above it).
        request_timeout_s: how long a handler waits for its pool job.
        journal_dir: directory for per-session write-ahead journals;
            None -> sessions are in-memory only (not crash-recoverable).
        session_cap: most sessions resident at once (LRU beyond it are
            evicted; journaled ones stay lazily recoverable).
        session_ttl_s: idle seconds before a session is evicted.
        journal_fsync: ``"always"`` (durable per batch) or ``"never"``
            (OS page cache; drain still fsyncs).
        max_session_events: cumulative per-session event budget (429
            beyond it).
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 8080,
                 workers: int = 4,
                 queue_capacity: Optional[int] = None,
                 batching: bool = True,
                 batch_window_ms: float = 2.0,
                 max_batch: int = 64,
                 cache_path: Optional[str] = None,
                 default_budget: Optional[RunBudget] = None,
                 tenant_budgets: Optional[Mapping[str, RunBudget]] = None,
                 max_body_bytes: int = 8 << 20,
                 request_timeout_s: float = 60.0,
                 journal_dir: Optional[str] = None,
                 session_cap: int = 256,
                 session_ttl_s: float = 3600.0,
                 journal_fsync: str = "always",
                 max_session_events: int = MAX_SESSION_EVENTS) -> None:
        self.host = host
        self.port = port
        self.workers = workers
        self.queue_capacity = queue_capacity
        self.batching = batching
        self.batch_window_ms = batch_window_ms
        self.max_batch = max_batch
        self.cache_path = cache_path
        self.default_budget = default_budget
        self.tenant_budgets = dict(tenant_budgets or {})
        self.max_body_bytes = max_body_bytes
        self.request_timeout_s = request_timeout_s
        self.journal_dir = journal_dir
        self.session_cap = session_cap
        self.session_ttl_s = session_ttl_s
        self.journal_fsync = journal_fsync
        self.max_session_events = max_session_events

    def budget_for(self, tenant: Optional[str]) -> Optional[RunBudget]:
        if tenant is not None and tenant in self.tenant_budgets:
            return self.tenant_budgets[tenant]
        return self.default_budget


class ServiceStats:
    """Thread-safe request counters and a latency reservoir."""

    _RESERVOIR = 2048

    def __init__(self) -> None:
        self._lock = make_lock("service.stats")
        # Monotonic, not wall-clock: an NTP step or DST jump must never
        # make the reported uptime leap or go negative.
        self._started = time.monotonic()
        self._by_endpoint: Dict[str, Dict[str, int]] = {}
        self._latencies: List[float] = []

    def record(self, endpoint: str, status: int, seconds: float) -> None:
        with self._lock:
            entry = self._by_endpoint.setdefault(
                endpoint, {"requests": 0, "errors": 0})
            entry["requests"] += 1
            if status >= 400:
                entry["errors"] += 1
            if len(self._latencies) < self._RESERVOIR:
                self._latencies.append(seconds)
            else:  # overwrite round-robin: cheap, recency-biased
                self._latencies[entry["requests"] % self._RESERVOIR] = seconds

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            latencies = sorted(self._latencies)
            percentile = (lambda q: round(
                latencies[min(len(latencies) - 1,
                              int(q * len(latencies)))] * 1e3, 3)
                if latencies else None)
            return {
                "uptime_s": round(time.monotonic() - self._started, 3),
                "endpoints": {name: dict(entry) for name, entry
                              in self._by_endpoint.items()},
                "latency_ms": {"p50": percentile(0.50),
                               "p99": percentile(0.99)},
            }


class SchedulingService:
    """Dispatches decoded requests; owns the cache, batcher and stats."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.cache: Optional[ScheduleCache] = (
            ScheduleCache(self.config.cache_path)
            if self.config.cache_path else None)
        self.batcher: Optional[CoalescingBatcher] = (
            CoalescingBatcher(window_s=self.config.batch_window_ms / 1e3,
                              max_batch=self.config.max_batch,
                              cache=self.cache)
            if self.config.batching else None)
        self.stats = ServiceStats()
        self.sessions = SessionTable(
            journal_dir=self.config.journal_dir,
            cap=self.config.session_cap,
            ttl_s=self.config.session_ttl_s,
            fsync=self.config.journal_fsync,
            budget=self.config.default_budget)
        #: Set by the SIGTERM drain path: session admission and event
        #: appends answer 503 + Retry-After while the server winds down.
        self.draining = threading.Event()
        #: Sessions resumed from journals at startup (crash recovery).
        self.recovered_sessions = (self.sessions.recover_all()
                                   if self.config.journal_dir else 0)
        self._routes: Dict[Tuple[str, str], Callable[..., Dict[str, Any]]] = {
            ("POST", "/schedule"): self.handle_schedule,
            ("POST", "/schedule_many"): self.handle_schedule_many,
            ("POST", "/lint"): self.handle_lint,
            ("POST", "/observe"): self.handle_observe,
            ("POST", "/chaos"): self.handle_chaos,
            ("POST", "/execute"): self.handle_execute,
            ("POST", "/sessions"): self.handle_session_create,
            ("GET", "/healthz"): self.handle_healthz,
            ("GET", "/stats"): self.handle_stats,
        }
        # Parameterized session routes: (method, label) -> handler
        # taking (payload, tenant, session_id).  Labels double as the
        # stats key so per-id paths cannot grow the stats table.
        self._session_routes: Dict[Tuple[str, str],
                                   Callable[..., Dict[str, Any]]] = {
            ("POST", "/sessions/{id}/events"): self.handle_session_events,
            ("GET", "/sessions/{id}"): self.handle_session_get,
            ("DELETE", "/sessions/{id}"): self.handle_session_delete,
        }

    # -- dispatch ------------------------------------------------------

    def _resolve(self, method: str, path: str) -> Tuple[
            Callable[..., Dict[str, Any]], str, Tuple[str, ...]]:
        """Route lookup -> ``(handler, stats label, extra args)``.

        Raises the 404/405 ServiceErrors of the routing contract; the
        label is still returned inside the error via attribute so the
        stats table stays bounded.
        """
        handler = self._routes.get((method, path))
        if handler is not None:
            return handler, path, ()
        label, session_id = _session_label(path)
        if label is not None:
            handler = self._session_routes.get((method, label))
            if handler is not None:
                return handler, label, (session_id,)
            methods = {m for m, lbl in self._session_routes if lbl == label}
            if methods or any(p == label for _, p in self._routes):
                raise ServiceError(405, f"{method} not allowed on {path}")
        if any(route_path == path for _, route_path in self._routes):
            raise ServiceError(405, f"{method} not allowed on {path}")
        raise ServiceError(404, f"no such endpoint {path!r}")

    def dispatch(self, method: str, path: str, payload: Any,
                 tenant: Optional[str] = None) -> Tuple[int, Dict[str, Any]]:
        """Route one decoded request; returns ``(status, body)``.

        Never raises: every failure mode maps to the error contract.
        """
        t0 = time.perf_counter()
        label = None
        try:
            handler, label, extra = self._resolve(method, path)
            status, body = 200, handler(payload, tenant, *extra)
        except ServiceError as error:
            status = error.status
            body = error.body if error.body is not None else {
                "error": str(error), "error_type": error.error_type}
        except MalformedInputError as error:
            status, body = 400, _error_body(error)
        except BudgetExceededError as error:
            status, body = 429, _error_body(error)
        except ConstraintGraphError as error:
            status, body = 422, _error_body(error)
        except Exception as error:  # internal: never leak a traceback
            status, body = 500, {"error": f"internal error: "
                                          f"{type(error).__name__}",
                                 "error_type": "InternalError"}
        # Unknown paths share one counter so path-scanning clients
        # cannot grow the stats table without bound.
        self.stats.record(label if label is not None else "(unknown)",
                          status, time.perf_counter() - t0)
        return status, body

    # -- endpoint handlers --------------------------------------------

    def handle_schedule(self, payload: Any,
                        tenant: Optional[str]) -> Dict[str, Any]:
        """One graph in, one schedule out (coalesced when possible)."""
        payload = _object(payload)
        budget = self.config.budget_for(tenant)
        graph = untrusted_graph_from_dict(payload.get("graph"), budget)
        if budget is not None:  # admission: refuse before any analysis
            budget.check_size(graph)
            budget.check_iteration_bound(graph)
        mode = _anchor_mode(payload.get("mode", "full"))
        auto_well_pose = _flag(payload, "auto_well_pose", True)

        tracer = Tracer() if _flag(payload, "trace", False) else None
        t0 = time.perf_counter()
        # Traced requests bypass the batcher: the point of trace=True is
        # telemetry for *this* request, not a shared arena sweep.
        batched = (self.batcher is not None and mode is AnchorMode.FULL
                   and auto_well_pose and tracer is None)
        if batched:
            # FULL mode comes back bit-identical from the arena sweep
            # (PR-6 batch_consistency invariant), so coalescing is safe.
            schedule = self.batcher.schedule(graph)
        elif tracer is not None:
            with use_tracer(tracer):
                schedule = guarded_schedule(graph, budget, anchor_mode=mode,
                                            auto_well_pose=auto_well_pose)
        else:
            schedule = guarded_schedule(graph, budget, anchor_mode=mode,
                                        auto_well_pose=auto_well_pose)
        body: Dict[str, Any] = {
            "schedule": schedule_to_dict(schedule),
            "batched": batched,
        }
        if tracer is not None:
            body["telemetry"] = {
                "duration_ms": round((time.perf_counter() - t0) * 1e3, 3),
                "counters": dict(tracer.counters),
                "spans": len(tracer.spans),
            }
        return body

    def handle_schedule_many(self, payload: Any,
                             tenant: Optional[str]) -> Dict[str, Any]:
        """A whole corpus through the arena kernel; per-graph verdicts."""
        payload = _object(payload)
        raw = payload.get("graphs")
        if not isinstance(raw, list) or not raw:
            raise ServiceError(400, "\"graphs\" must be a non-empty list",
                               "MalformedInputError")
        if len(raw) > MAX_BATCH_GRAPHS:
            raise ServiceError(
                429, f"{len(raw)} graphs exceed the per-request cap "
                     f"{MAX_BATCH_GRAPHS}", "BudgetExceededError")
        budget = self.config.budget_for(tenant)
        graphs: List[ConstraintGraph] = []
        for index, data in enumerate(raw):
            try:
                graphs.append(untrusted_graph_from_dict(data, budget))
            except ConstraintGraphError as error:
                raise MalformedInputError(
                    f"graph #{index}: {error}") from error
        run = schedule_many(graphs, cache=self.cache, budget=budget,
                            auto_well_pose=_flag(payload, "auto_well_pose",
                                                 True))
        results = []
        for result in run:
            if result.ok:
                schedule = result.unpack()
                results.append({
                    "index": result.index,
                    "status": ("cached" if result.cached else
                               "fallback" if result.fallback else
                               "scheduled"),
                    "schedule": schedule_to_dict(schedule),
                })
            else:
                results.append({
                    "index": result.index, "status": "error",
                    "error_type": result.error_type,
                    "error": str(result.error),
                })
        return {"results": results, "stats": dict(run.stats)}

    def handle_lint(self, payload: Any,
                    tenant: Optional[str]) -> Dict[str, Any]:
        """Static diagnostics; the response body is a SARIF 2.1 log."""
        from repro.lint import LintConfig, LintEngine, to_sarif

        payload = _object(payload)
        budget = self.config.budget_for(tenant)
        graph = untrusted_graph_from_dict(payload.get("graph"), budget)
        select = _string_list(payload, "select")
        ignore = _string_list(payload, "ignore")
        engine = LintEngine(LintConfig(
            select=frozenset(select) if select else None,
            ignore=frozenset(ignore) if ignore else frozenset()))
        report = engine.lint_graph(graph, file="request")
        return {
            "sarif": to_sarif(report, artifact_uri="request"),
            "diagnostics": len(report.diagnostics),
            "errors": len(report.errors()),
        }

    def handle_observe(self, payload: Any,
                       tenant: Optional[str]) -> Dict[str, Any]:
        """Traced scheduling run(s) -> observability run report."""
        payload = _object(payload)
        budget = self.config.budget_for(tenant)
        graph = untrusted_graph_from_dict(payload.get("graph"), budget)
        runs = payload.get("runs", 1)
        if not isinstance(runs, int) or isinstance(runs, bool) \
                or not 1 <= runs <= MAX_OBSERVE_RUNS:
            raise ServiceError(
                400, f"\"runs\" must be an integer in "
                     f"[1, {MAX_OBSERVE_RUNS}], got {runs!r}",
                "MalformedInputError")
        mode = _anchor_mode(payload.get("mode", "irredundant"))
        tracer = Tracer()
        with use_tracer(tracer):
            for _ in range(runs):
                guarded_schedule(graph, budget, anchor_mode=mode)
        from repro.observability import iteration_bound_violations

        report = build_report(tracer)
        return {"report": report,
                "bound_violations": iteration_bound_violations(report)}

    def handle_chaos(self, payload: Any,
                     tenant: Optional[str]) -> Dict[str, Any]:
        """A seeded fault-injection campaign, sized for a request."""
        from repro.core.watchdog import WatchdogPolicy
        from repro.resilience.chaos import run_campaign

        payload = _object(payload)
        seed = payload.get("seed", 0)
        cases = payload.get("cases", 50)
        for name, value in (("seed", seed), ("cases", cases)):
            if not isinstance(value, int) or isinstance(value, bool):
                raise ServiceError(400, f"\"{name}\" must be an integer, "
                                        f"got {value!r}",
                                   "MalformedInputError")
        if not 1 <= cases <= MAX_CHAOS_CASES:
            raise ServiceError(
                429, f"chaos cases {cases} outside [1, {MAX_CHAOS_CASES}]",
                "BudgetExceededError")
        policy = payload.get("policy")
        if policy is not None:
            try:
                policy = WatchdogPolicy(policy)
            except ValueError:
                raise ServiceError(
                    400, f"unknown watchdog policy {policy!r}",
                    "MalformedInputError") from None
        stats = run_campaign(seed, cases, policy)
        return {
            "cases": stats.cases,
            "unschedulable": stats.unschedulable,
            "faultless": stats.faultless,
            "detected": stats.detected,
            "masked": stats.masked,
            "silent": stats.silent,
            "divergences": list(stats.divergences),
            "summary": stats.summary(),
        }

    def handle_execute(self, payload: Any,
                       tenant: Optional[str]) -> Dict[str, Any]:
        """Online execution: graph + completion-event stream -> issue log.

        The graph is scheduled (through the shared batcher-free guarded
        pipeline, honoring the tenant budget), then the event list is
        streamed through an :class:`~repro.runtime.OnlineExecutor`.
        Watchdog timeouts follow the error contract: an ABORT surfaces
        as 422 with ``WatchdogTimeoutError``, FALLBACK degradation comes
        back 200 with ``"degraded": true`` in the log.
        """
        from repro.core.watchdog import (
            WatchdogConfig,
            WatchdogPolicy,
            validate_watchdog_bounds,
        )
        from repro.runtime.events import CompletionEvent
        from repro.runtime.executor import OnlineExecutor

        payload = _object(payload)
        budget = self.config.budget_for(tenant)
        graph = untrusted_graph_from_dict(payload.get("graph"), budget)
        mode = _anchor_mode(payload.get("mode", "full"))
        events = _event_list(payload)
        watchdog = _watchdog_config(payload, WatchdogConfig, WatchdogPolicy)
        source_done = payload.get("source_done", 0)
        if not isinstance(source_done, int) or isinstance(source_done, bool) \
                or source_done < 0:
            raise ServiceError(
                400, f"\"source_done\" must be a non-negative integer, "
                     f"got {source_done!r}", "MalformedInputError")

        if watchdog is not None and watchdog.bounds:
            # Bounds naming a non-anchor are a graph-semantics error
            # (422), same as the schedule endpoint's watchdog knob.
            validate_watchdog_bounds(watchdog.bounds, graph.anchors,
                                     graph.source)
        schedule = guarded_schedule(graph, budget, anchor_mode=mode,
                                    auto_well_pose=_flag(payload,
                                                         "auto_well_pose",
                                                         True))
        executor = OnlineExecutor(schedule, watchdog=watchdog,
                                  source_done=source_done)
        log = executor.run(CompletionEvent(anchor, cycle)
                           for anchor, cycle in events)
        return {"log": log.to_dict()}

    # -- durable sessions ---------------------------------------------

    def _check_admission(self) -> None:
        if self.draining.is_set():
            raise ServiceError(
                503, "service is draining: session admission suspended",
                "ServiceDrainingError")

    def _session(self, session_id: str) -> Session:
        """The live session, lazily recovered; 404/410 per contract."""
        try:
            return self.sessions.get(session_id)
        except SessionSealedError:
            raise ServiceError(
                410, f"session {session_id!r} was deleted and its "
                     f"journal sealed", "SessionSealedError") from None
        except KeyError:
            raise ServiceError(
                404, f"no such session {session_id!r}",
                "SessionNotFoundError") from None

    def handle_session_create(self, payload: Any,
                              tenant: Optional[str]) -> Dict[str, Any]:
        """Open a journaled executor stream: graph + watchdog + profile
        go into the journal's genesis record, so the whole session is
        recoverable from the journal alone."""
        from repro.core.watchdog import (
            WatchdogConfig,
            WatchdogPolicy,
            validate_watchdog_bounds,
        )
        from repro.qa.serialize import graph_to_dict
        from repro.runtime.executor import OnlineExecutor
        from repro.runtime.journal import JournalWriteError, watchdog_to_dict

        self._check_admission()
        payload = _object(payload)
        budget = self.config.budget_for(tenant)
        graph = untrusted_graph_from_dict(payload.get("graph"), budget)
        mode = _anchor_mode(payload.get("mode", "full"))
        watchdog = _watchdog_config(payload, WatchdogConfig, WatchdogPolicy)
        auto_well_pose = _flag(payload, "auto_well_pose", True)
        source_done = payload.get("source_done", 0)
        if not isinstance(source_done, int) or isinstance(source_done, bool) \
                or source_done < 0:
            raise ServiceError(
                400, f"\"source_done\" must be a non-negative integer, "
                     f"got {source_done!r}", "MalformedInputError")
        if watchdog is not None and watchdog.bounds:
            validate_watchdog_bounds(watchdog.bounds, graph.anchors,
                                     graph.source)
        schedule = guarded_schedule(graph, budget, anchor_mode=mode,
                                    auto_well_pose=auto_well_pose)
        executor = OnlineExecutor(schedule, watchdog=watchdog,
                                  source_done=source_done)
        try:
            session = self.sessions.create(
                executor,
                # The canonical serialization, not the raw payload: the
                # recovery path replays exactly what the live path
                # scheduled, whatever aliases the client's dict used.
                graph_dict=graph_to_dict(graph),
                mode=mode.value,
                watchdog=watchdog_to_dict(watchdog),
                source_done=source_done,
                auto_well_pose=auto_well_pose)
        except JournalWriteError as error:
            raise ServiceError(503, f"session journal unavailable: {error}",
                               "JournalWriteError") from None
        return {
            "session": session.id,
            "state": session.state,
            "journaled": session.journal is not None,
            "issues": dict(executor.log.issues),
            "done": dict(executor.log.done),
            "complete": session.complete,
        }

    def handle_session_events(self, payload: Any, tenant: Optional[str],
                              session_id: str) -> Dict[str, Any]:
        """Append one event batch; journal first, then apply, then ack.

        The write-ahead ordering is the durability contract: by the
        time the response leaves, the batch is on disk (per the fsync
        policy), so a crash after the acknowledgement loses nothing.
        Idempotent by sequence number: a re-POSTed ``seq`` returns the
        original acknowledgement with ``"replayed": true`` -- which is
        what makes the client's at-least-once 503/timeout retry safe.
        """
        from repro.runtime.journal import (
            JournalWriteError,
            apply_batch,
            validate_batch,
        )

        self._check_admission()
        payload = _object(payload)
        seq = payload.get("seq")
        if isinstance(seq, bool) or not isinstance(seq, int) or seq < 1:
            raise ServiceError(
                400, f"\"seq\" must be a positive integer, got {seq!r}",
                "MalformedInputError")
        events = _event_list(payload)
        if not events:
            raise ServiceError(
                400, "\"events\" must be a non-empty list (an empty "
                     "batch has no acknowledgement to replay)",
                "MalformedInputError")
        session = self._session(session_id)
        with session.lock:
            if seq <= session.last_seq:
                # Idempotent replay: the original acknowledgement, as
                # recorded (or deterministically recomputed by journal
                # replay after a crash).
                stored = session.responses.get(seq)
                if stored is None:  # pragma: no cover - defensive
                    raise ServiceError(
                        409, f"seq {seq} predates this session's "
                             f"recovered prefix", "SequenceGapError")
                status, body = stored
                body = dict(body)
                body["replayed"] = True
                if status == 200:
                    return body
                raise ServiceError(status, body.get("error", ""),
                                   body.get("error_type", "ServiceError"),
                                   body=body)
            if seq != session.last_seq + 1:
                raise ServiceError(
                    409, f"sequence gap: expected seq "
                         f"{session.last_seq + 1}, got {seq}",
                    "SequenceGapError")
            if session.aborted:
                raise ServiceError(
                    409, f"session {session_id!r} aborted by watchdog "
                         f"timeout; no further events accepted",
                    "SessionAbortedError")
            budget = self.config.max_session_events
            if session.events_total + len(events) > budget:
                raise ServiceError(
                    429, f"batch of {len(events)} events would exceed "
                         f"the per-session budget of {budget} "
                         f"(already acknowledged: {session.events_total})",
                    "BudgetExceededError")
            # Semantic pre-validation BEFORE journaling: a batch feed()
            # would reject must leave both the journal and the executor
            # untouched (no partially applied batches on disk).
            validate_batch(session.executor, events)
            if session.journal is not None:
                try:
                    session.journal.append_events(seq, events)
                except JournalWriteError as error:
                    # The append may have left a torn fragment; drop the
                    # session so the next request recovers (and
                    # truncates) from the trusted prefix on disk.
                    self.sessions.drop(session_id)
                    raise ServiceError(
                        503, f"session journal unavailable: {error}",
                        "JournalWriteError") from None
            outcome = apply_batch(session.executor, seq, events)
            status, body = session.record(seq, events, outcome)
            if status == 200:
                return body
            raise ServiceError(status, outcome.error_message,
                               outcome.error or "ServiceError", body=body)

    def handle_session_get(self, payload: Any, tenant: Optional[str],
                           session_id: str) -> Dict[str, Any]:
        """Executor state: the full execution log plus stream position."""
        session = self._session(session_id)
        with session.lock:
            return {
                "session": session.id,
                "state": session.state,
                "last_seq": session.last_seq,
                "events_total": session.events_total,
                "complete": session.complete,
                "journaled": session.journal is not None,
                "log": session.executor.log.to_dict(),
            }

    def handle_session_delete(self, payload: Any, tenant: Optional[str],
                              session_id: str) -> Dict[str, Any]:
        """Close the stream and seal the journal (tombstone: the id
        answers 410 afterwards, which makes DELETE retry-safe)."""
        from repro.core.exceptions import WatchdogTimeoutError
        from repro.runtime.journal import JournalWriteError

        session = self._session(session_id)
        with session.lock:
            abort_error: Optional[WatchdogTimeoutError] = None
            try:
                log = session.executor.close()
            except WatchdogTimeoutError as error:
                # End-of-stream watchdog escalation: the close still
                # succeeds; the final state reports the abort.
                abort_error = error
                session.aborted = True
                log = session.executor.log
            if session.journal is not None:
                try:
                    session.journal.append_seal(session.last_seq)
                except JournalWriteError as error:
                    # Unsealed journals stay recoverable; the client
                    # can retry the DELETE.
                    raise ServiceError(
                        503, f"session journal unavailable: {error}",
                        "JournalWriteError") from None
            self.sessions.drop(session_id)
            body: Dict[str, Any] = {
                "session": session.id,
                "sealed": session.journal is not None,
                "state": session.state,
                "last_seq": session.last_seq,
                "log": log.to_dict(),
            }
            if abort_error is not None:
                body["error"] = str(abort_error)
                body["error_type"] = type(abort_error).__name__
            return body

    def handle_healthz(self, payload: Any,
                       tenant: Optional[str]) -> Dict[str, Any]:
        return {"ok": True, "protocol": PROTOCOL_VERSION,
                "draining": self.draining.is_set()}

    def handle_stats(self, payload: Any,
                     tenant: Optional[str]) -> Dict[str, Any]:
        body = self.stats.snapshot()
        body["protocol"] = PROTOCOL_VERSION
        body["workers"] = self.config.workers
        if self.batcher is not None:
            body["batching"] = self.batcher.stats()
        if self.cache is not None:
            body["cache"] = {"entries": len(self.cache),
                             "hits": self.cache.hits,
                             "misses": self.cache.misses}
        body["sessions"] = {
            "resident": len(self.sessions),
            "recovered": self.recovered_sessions,
            "evictions": self.sessions.evictions,
            "journaled": self.config.journal_dir is not None,
        }
        return body

    def close(self) -> None:
        """Flush shared state at shutdown (cache staging -> disk,
        session journals fsynced -- the drain ordering's last step)."""
        if self.cache is not None:
            self.cache.flush()
        self.sessions.sync_all()


# -- payload helpers ---------------------------------------------------


def _error_body(error: Exception) -> Dict[str, Any]:
    return {"error": str(error), "error_type": type(error).__name__}


def _session_label(path: str) -> Tuple[Optional[str], Optional[str]]:
    """Normalize ``/sessions/{id}[/events]`` -> (route label, id).

    Ids are restricted to alphanumerics and dashes (the same character
    set the journal-directory scan accepts), so a crafted path cannot
    smuggle separators toward journal filenames.
    """
    parts = path.strip("/").split("/")
    if not 2 <= len(parts) <= 3 or parts[0] != "sessions":
        return None, None
    session_id = parts[1]
    if not session_id or not all(c.isalnum() or c == "-"
                                 for c in session_id):
        return None, None
    if len(parts) == 2:
        return "/sessions/{id}", session_id
    if parts[2] == "events":
        return "/sessions/{id}/events", session_id
    return None, None


def _object(payload: Any) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise ServiceError(
            400, f"request body must be a JSON object, "
                 f"got {type(payload).__name__}", "MalformedInputError")
    return payload


def _flag(payload: Mapping[str, Any], key: str, default: bool) -> bool:
    value = payload.get(key, default)
    if not isinstance(value, bool):
        raise ServiceError(400, f"\"{key}\" must be a boolean, "
                                f"got {value!r}", "MalformedInputError")
    return value


def _string_list(payload: Mapping[str, Any], key: str) -> Optional[List[str]]:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, list) \
            or not all(isinstance(item, str) for item in value):
        raise ServiceError(400, f"\"{key}\" must be a list of strings, "
                                f"got {value!r}", "MalformedInputError")
    return value


def _anchor_mode(value: Any) -> AnchorMode:
    try:
        return AnchorMode(value)
    except ValueError:
        raise ServiceError(
            400, f"unknown anchor mode {value!r} (expected one of "
                 f"{[m.value for m in AnchorMode]})",
            "MalformedInputError") from None


def _event_list(payload: Mapping[str, Any]) -> List[Tuple[str, int]]:
    """The ``"events"`` field: ``{"anchor", "cycle"}`` objects or
    ``[anchor, cycle]`` pairs, capped at :data:`MAX_EXECUTE_EVENTS`.

    Shape errors are 400s here; *semantic* errors (unknown anchor,
    stream out of order) are left for the executor, whose
    ``MalformedInputError`` maps to 400 through the error contract.
    """
    value = payload.get("events")
    if not isinstance(value, list):
        raise ServiceError(
            400, f"\"events\" must be a list of completion events, "
                 f"got {type(value).__name__}", "MalformedInputError")
    if len(value) > MAX_EXECUTE_EVENTS:
        raise ServiceError(
            429, f"{len(value)} events exceed the per-request cap of "
                 f"{MAX_EXECUTE_EVENTS}", "BudgetExceededError")
    events: List[Tuple[str, int]] = []
    for index, item in enumerate(value):
        if isinstance(item, dict):
            anchor, cycle = item.get("anchor"), item.get("cycle")
        elif isinstance(item, (list, tuple)) and len(item) == 2:
            anchor, cycle = item
        else:
            raise ServiceError(
                400, f"events[{index}] must be an "
                     f"{{\"anchor\", \"cycle\"}} object or an "
                     f"[anchor, cycle] pair, got {item!r}",
                "MalformedInputError")
        if not isinstance(anchor, str) or isinstance(cycle, bool) \
                or not isinstance(cycle, int):
            raise ServiceError(
                400, f"events[{index}] must name an anchor (string) and "
                     f"an integer cycle, got {item!r}",
                "MalformedInputError")
        events.append((anchor, cycle))
    return events


def _watchdog_config(payload: Mapping[str, Any], config_cls: type,
                     policy_cls: type) -> Optional[Any]:
    """The optional ``"watchdog"`` object: bounds, policy and re-arm
    knobs for the execute endpoint's :class:`WatchdogConfig`."""
    value = payload.get("watchdog")
    if value is None:
        return None
    if not isinstance(value, dict):
        raise ServiceError(
            400, f"\"watchdog\" must be an object, got "
                 f"{type(value).__name__}", "MalformedInputError")
    known = {"bounds", "default", "policy", "max_rearms", "backoff",
             "fallback_budget"}
    unknown = sorted(set(value) - known)
    if unknown:
        raise ServiceError(
            400, f"unknown watchdog field(s) {unknown} (expected a "
                 f"subset of {sorted(known)})", "MalformedInputError")
    kwargs = dict(value)
    policy = kwargs.get("policy")
    if policy is not None:
        try:
            kwargs["policy"] = policy_cls(policy)
        except ValueError:
            raise ServiceError(
                400, f"unknown watchdog policy {policy!r}",
                "MalformedInputError") from None
    bounds = kwargs.get("bounds", {})
    if not isinstance(bounds, dict) \
            or not all(isinstance(k, str) for k in bounds):
        raise ServiceError(
            400, f"watchdog \"bounds\" must map anchor names to integer "
                 f"windows, got {bounds!r}", "MalformedInputError")
    try:
        return config_cls(**kwargs)
    except (TypeError, ValueError) as error:
        raise ServiceError(400, f"invalid watchdog config: {error}",
                           "MalformedInputError") from None
