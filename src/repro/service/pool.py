"""A bounded worker pool for the scheduling service.

``ThreadingHTTPServer`` spawns one thread per connection, which bounds
nothing: a burst of requests would schedule graphs on hundreds of
threads at once.  The pool decouples *connections* from *work*: handler
threads submit jobs into a bounded queue serviced by a fixed number of
worker threads and block on the result.  A full queue is an admission
decision (:class:`PoolSaturatedError` -> HTTP 503), made *before* any
scheduling work starts, mirroring the RunBudget philosophy of refusing
up front rather than aborting halfway.

Jobs run under a **copy of the submitter's context**
(:func:`contextvars.copy_context`), so the per-request tracer installed
by the handler is visible to the pipeline even though the work executes
on a pool thread -- the property the contextvar-backed tracer slot
exists to provide.
"""

from __future__ import annotations

import contextvars
import queue
import threading
from typing import Any, Callable, Optional


class PoolSaturatedError(RuntimeError):
    """The job queue is full; the caller should shed load (HTTP 503)."""


class PoolShutdownError(RuntimeError):
    """The pool is draining; no new jobs are accepted."""


class JobTimeoutError(RuntimeError):
    """The job did not finish within the caller's wait timeout."""


class _Job:
    """One unit of work and its eventual outcome."""

    __slots__ = ("fn", "context", "done", "result", "error")

    def __init__(self, fn: Callable[[], Any]) -> None:
        self.fn = fn
        self.context = contextvars.copy_context()
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block for the outcome; re-raises the job's exception."""
        if not self.done.wait(timeout):
            raise JobTimeoutError("job did not finish in time")
        if self.error is not None:
            raise self.error
        return self.result


class WorkerPool:
    """Fixed worker threads over a bounded job queue.

    Args:
        workers: number of worker threads (the *whole* pool's
            concurrency; never silently capped -- see the startup log in
            :mod:`repro.service.server`).
        queue_capacity: queued-but-unstarted job limit; defaults to
            ``8 * workers``.  Submitting beyond it raises
            :class:`PoolSaturatedError` immediately.
    """

    def __init__(self, workers: int = 4,
                 queue_capacity: Optional[int] = None,
                 name: str = "repro-service") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.queue_capacity = (queue_capacity if queue_capacity is not None
                               else 8 * workers)
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue(
            maxsize=self.queue_capacity)
        self._shutdown = False
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"{name}-worker-{i}")
            for i in range(workers)]
        for thread in self._threads:
            thread.start()

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # drain sentinel
                self._queue.task_done()
                return
            try:
                job.result = job.context.run(job.fn)
            except BaseException as error:  # noqa: B036 -- delivered to the waiter, who re-raises
                job.error = error
            finally:
                job.done.set()
                self._queue.task_done()

    def submit(self, fn: Callable[[], Any]) -> _Job:
        """Enqueue *fn*; returns the job handle without blocking."""
        if self._shutdown:
            raise PoolShutdownError("pool is shut down")
        job = _Job(fn)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            raise PoolSaturatedError(
                f"job queue is full ({self.queue_capacity} pending); "
                f"try again later") from None
        return job

    def run(self, fn: Callable[[], Any],
            timeout: Optional[float] = None) -> Any:
        """Submit *fn* and block for its result (the handler-thread path)."""
        return self.submit(fn).wait(timeout)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; workers drain the queue and exit."""
        if self._shutdown:
            return
        self._shutdown = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=30)
