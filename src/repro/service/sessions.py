"""The bounded session table: live executor streams behind the service.

A *session* is one :class:`~repro.runtime.executor.OnlineExecutor` kept
alive across requests, fed by incremental ``POST /sessions/{id}/events``
batches instead of one-shot ``/execute`` bodies.  Each session owns:

* its executor (the live stream state),
* its write-ahead :class:`~repro.runtime.journal.SessionJournal`
  (when the service runs with a journal directory),
* its **idempotency table**: the ``(status, body)`` the service
  acknowledged each sequence number with, so an at-least-once client
  retrying a lost acknowledgement gets the original answer byte-for-
  byte rather than a sequence-gap error.

The table is bounded two ways -- an LRU cap and a TTL -- because a
service holding streams for millions of users cannot keep every
executor resident.  Eviction syncs the journal and drops the in-memory
state only: the next request for an evicted id *lazily recovers* it by
replaying the journal's acknowledged prefix (bit-identical by the
anomaly-freedom invariant), so eviction is invisible to clients apart
from one slower request.  Without a journal directory, sessions live
only in memory and eviction is loss -- the create response says which
kind the client got (``"journaled"``).

A sealed journal (explicit ``DELETE``) is a tombstone: the id answers
410 Gone forever after, which is what makes DELETE safe to retry.
"""

from __future__ import annotations

import time
import uuid
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.sanitize import make_lock
from repro.runtime.journal import (
    BatchOutcome,
    SessionJournal,
    journal_path,
    read_journal,
    replay_journal,
    scan_journal_dir,
    truncate_to_trusted,
)


class SessionSealedError(KeyError):
    """The session was deleted and its journal sealed: 410 Gone."""


def outcome_response(session_id: str,
                     outcome: BatchOutcome) -> Tuple[int, Dict[str, Any]]:
    """The acknowledgement for one applied batch.

    Shared by the live apply path and the recovery replay path so a
    replayed acknowledgement is byte-identical to the one the crashed
    process sent (both are pure functions of the same outcome).
    """
    body = outcome.to_dict()
    body["session"] = session_id
    if outcome.error:
        body["state"] = "aborted"
    elif outcome.degraded:
        body["state"] = "degraded"
    elif outcome.complete:
        body["state"] = "complete"
    else:
        body["state"] = "active"
    return (422 if outcome.error else 200), body


class Session:
    """One live executor stream plus its durability bookkeeping."""

    def __init__(self, session_id: str, executor: Any,
                 journal: Optional[SessionJournal] = None) -> None:
        self.id = session_id
        self.executor = executor
        self.journal = journal
        # io_ok: the write-ahead contract journals *under* the
        # per-session lock (append must be ordered with the executor
        # mutation it precedes); declared, not a sanitizer bug.
        self.lock = make_lock("session", io_ok=True)
        self.responses: Dict[int, Tuple[int, Dict[str, Any]]] = {}
        self.last_seq = 0
        self.events_total = 0
        self.aborted = False
        self.touched = time.monotonic()

    @property
    def complete(self) -> bool:
        return not self.executor._pending

    @property
    def state(self) -> str:
        if self.aborted:
            return "aborted"
        if self.executor.log.degraded:
            return "degraded"
        if self.complete:
            return "complete"
        return "active"

    def record(self, seq: int, events: List[Tuple[str, int]],
               outcome: BatchOutcome) -> Tuple[int, Dict[str, Any]]:
        """Fold one applied batch into the session's bookkeeping."""
        self.last_seq = seq
        self.events_total += len(events)
        if outcome.error:
            self.aborted = True
        response = outcome_response(self.id, outcome)
        self.responses[seq] = response
        return response


class SessionTable:
    """LRU + TTL bounded map of live sessions, backed by journals.

    Args:
        journal_dir: where session journals live; None -> in-memory
            sessions only (not recoverable, documented as such).
        cap: most sessions held in memory at once; the least recently
            used beyond it are evicted (journal synced, state dropped).
        ttl_s: idle seconds before a session is evicted.
        fsync: journal fsync policy for new and recovered sessions.
        budget: admission budget used when replaying journals (recovery
            has no request tenant; the service passes its default).
    """

    def __init__(self, *, journal_dir: Optional[str] = None,
                 cap: int = 256, ttl_s: float = 3600.0,
                 fsync: str = "always", budget: Any = None) -> None:
        self.journal_dir = journal_dir
        self.cap = max(1, cap)
        self.ttl_s = ttl_s
        self.fsync = fsync
        self.budget = budget
        self._lock = make_lock("sessions.table")
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        self.evictions = 0
        self.recoveries = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- lifecycle -----------------------------------------------------

    def create(self, executor: Any, *, graph_dict: Dict[str, Any],
               mode: str, watchdog: Optional[Dict[str, Any]],
               source_done: int, auto_well_pose: bool) -> Session:
        """Admit a new session; journal its genesis before returning.

        Raises :class:`~repro.runtime.journal.JournalWriteError` when
        the open record cannot be made durable -- the session is not
        admitted (a session whose genesis is not on disk could never be
        recovered, so acknowledging it would overpromise).
        """
        session_id = uuid.uuid4().hex
        journal = None
        if self.journal_dir is not None:
            journal = SessionJournal(
                journal_path(self.journal_dir, session_id), fsync=self.fsync)
            journal.append_open(session_id, graph_dict, mode=mode,
                                watchdog=watchdog, source_done=source_done,
                                auto_well_pose=auto_well_pose)
        session = Session(session_id, executor, journal)
        self._admit(session)
        return session

    def get(self, session_id: str) -> Session:
        """The live session, lazily recovered from its journal if
        evicted (or if a previous process crashed holding it).

        Raises:
            KeyError: no such session (never journaled, or in-memory
                only and evicted/lost).
            SessionSealedError: the session was deleted; its sealed
                journal is a tombstone.
        """
        with self._lock:
            session = self._sessions.get(session_id)
            if session is not None:
                session.touched = time.monotonic()
                self._sessions.move_to_end(session_id)
                return session
        if self.journal_dir is None:
            raise KeyError(session_id)
        session = self._recover(session_id)
        self._admit(session)
        self.recoveries += 1
        return session

    def drop(self, session_id: str) -> None:
        """Forget the in-memory state (journal left as-is on disk)."""
        with self._lock:
            self._sessions.pop(session_id, None)

    def ids(self) -> List[str]:
        with self._lock:
            return list(self._sessions)

    # -- recovery ------------------------------------------------------

    def recover_all(self) -> int:
        """Startup scan: resume every recoverable journal in the
        directory.  Returns how many sessions were recovered (beyond
        the LRU cap they are immediately evicted again -- still one
        lazy replay away, but not resident)."""
        if self.journal_dir is None:
            return 0
        recovered = 0
        for session_id, state in scan_journal_dir(self.journal_dir).items():
            if not state.recoverable:
                continue
            try:
                session = self._replay(session_id, state)
            except Exception:
                # A journal that validates line-by-line but replays to
                # an error (hostile genesis, unschedulable graph) is
                # left on disk untouched and skipped -- recovery must
                # never take the service down.
                continue
            self._admit(session)
            recovered += 1
        self.recoveries += recovered
        return recovered

    def _recover(self, session_id: str) -> Session:
        if not _valid_session_id(session_id):
            raise KeyError(session_id)
        state = read_journal(journal_path(self.journal_dir, session_id))
        if state.sealed:
            raise SessionSealedError(session_id)
        if not state.recoverable:
            raise KeyError(session_id)
        try:
            return self._replay(session_id, state)
        except Exception:
            raise KeyError(session_id) from None

    def _replay(self, session_id: str, state: Any) -> Session:
        # Cut any torn fragment first: appending after it would splice
        # the fragment onto the next acknowledged record.
        truncate_to_trusted(journal_path(self.journal_dir, session_id),
                            state)
        executor, outcomes = replay_journal(state, self.budget)
        journal = SessionJournal(
            journal_path(self.journal_dir, session_id), fsync=self.fsync)
        session = Session(session_id, executor, journal)
        for seq, outcome in outcomes.items():
            session.record(seq, state.batches[seq - 1][1], outcome)
        return session

    # -- bounds --------------------------------------------------------

    def _admit(self, session: Session) -> None:
        with self._lock:
            self._sessions[session.id] = session
            self._sessions.move_to_end(session.id)
            evicted = self._evict_locked()
        self._sync_evicted(evicted)

    def evict_expired(self) -> None:
        with self._lock:
            evicted = self._evict_locked(expired_only=True)
        self._sync_evicted(evicted)

    def _evict_locked(self, expired_only: bool = False) -> List[Session]:
        """Pop every over-TTL / over-cap session; caller holds the lock.

        Returns the popped sessions so the *caller* can sync their
        journals **after releasing the table lock**: an fsync can take
        milliseconds, and holding the global lock across it would stall
        every concurrent session lookup (a held-lock blocking-I/O
        finding under ``REPRO_SANITIZE=1``).  Dropping the lock first
        is safe -- the popped session is no longer discoverable, and a
        concurrent lazy recovery of the same id replays only the
        journal's acknowledged prefix, which the pending sync can only
        extend, never contradict.
        """
        now = time.monotonic()
        evicted = [self._evict_one(sid)
                   for sid, s in list(self._sessions.items())
                   if now - s.touched > self.ttl_s]
        if expired_only:
            return evicted
        while len(self._sessions) > self.cap:
            evicted.append(self._evict_one(next(iter(self._sessions))))
        return evicted

    def _evict_one(self, session_id: str) -> Optional[Session]:
        session = self._sessions.pop(session_id, None)
        self.evictions += 1
        return session

    @staticmethod
    def _sync_evicted(evicted: List[Optional[Session]]) -> None:
        for session in evicted:
            if session is not None and session.journal is not None:
                session.journal.sync()

    # -- drain ---------------------------------------------------------

    def sync_all(self) -> None:
        """Force every resident journal to disk (the drain path)."""
        for session_id in self.ids():
            with self._lock:
                session = self._sessions.get(session_id)
            if session is not None and session.journal is not None:
                session.journal.sync()


def _valid_session_id(session_id: str) -> bool:
    return bool(session_id) and all(c.isalnum() or c == "-"
                                    for c in session_id)
