"""Per-operator cycle-delay model and resource classification.

Module binding happens before scheduling (Section II), so every
operation's execution delay is known once it is mapped to a functional
unit.  The delay model captures that mapping at the granularity the
frontend needs: each source-level operator belongs to a resource class
(ALU, multiplier, shifter, port, ...) with a cycle count.

The defaults are deliberately simple -- single-cycle ALU and logic,
multi-cycle multiply/divide, single-cycle port transactions -- and can
be overridden per design (the binding subsystem can also override the
delay of individual operations after resource assignment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

#: operator -> resource class
_DEFAULT_CLASSES: Dict[str, str] = {
    "+": "alu", "-": "alu",
    "==": "alu", "!=": "alu", "<": "alu", "<=": "alu", ">": "alu", ">=": "alu",
    "&": "logic", "|": "logic", "^": "logic", "~": "logic", "!": "logic",
    "&&": "logic", "||": "logic",
    "<<": "shift", ">>": "shift",
    "*": "mul", "/": "div", "%": "div",
    "read": "port", "write": "port",
}

#: resource class -> execution delay in cycles
_DEFAULT_DELAYS: Dict[str, int] = {
    "alu": 1,
    "logic": 1,
    "shift": 1,
    "mul": 3,
    "div": 5,
    "port": 1,
    "move": 1,
}


@dataclass
class DelayModel:
    """Maps operators to resource classes and cycle delays.

    Attributes:
        class_delays: cycles per resource class.
        operator_classes: resource class per source operator.
        move_delay: delay of a plain register-to-register move
            (an assignment with no operators).
    """

    class_delays: Dict[str, int] = field(default_factory=lambda: dict(_DEFAULT_DELAYS))
    operator_classes: Dict[str, str] = field(default_factory=lambda: dict(_DEFAULT_CLASSES))

    def resource_class(self, operators: Sequence[str]) -> Optional[str]:
        """The resource class of a statement: the class of its slowest
        operator, or None for a plain move."""
        best: Optional[str] = None
        best_delay = -1
        for op in operators:
            cls = self.operator_classes.get(op)
            if cls is None:
                continue
            delay = self.class_delays.get(cls, 1)
            if delay > best_delay:
                best, best_delay = cls, delay
        return best

    def statement_delay(self, operators: Sequence[str]) -> int:
        """Execution delay of a statement given its operator bag.

        The statement maps to one functional unit (the one implementing
        its slowest operator class); chained cheap operators fold into
        the same cycle, matching Hercules's operator-chaining
        optimization.
        """
        cls = self.resource_class(operators)
        if cls is None:
            return self.class_delays.get("move", 1)
        return self.class_delays.get(cls, 1)
