"""A HardwareC-subset frontend (the Hercules input language).

The paper's designs are written in HardwareC, a C-flavoured behavioural
hardware description language with processes, ports, data-dependent
loops, operation tags, and ``constraint mintime/maxtime`` statements
(Fig. 13 shows the gcd source).  This package implements the subset
needed to express all of the paper's examples:

* :mod:`repro.hdl.lexer` -- tokenizer;
* :mod:`repro.hdl.ast` -- abstract syntax tree;
* :mod:`repro.hdl.parser` -- recursive-descent parser;
* :mod:`repro.hdl.lower` -- lowering to hierarchical sequencing graphs
  (Hercules's behavioural synthesis step, producing maximal
  parallelism from dataflow);
* :mod:`repro.hdl.delay_model` -- per-operator cycle-delay model.

End-to-end::

    from repro.hdl import compile_source
    design = compile_source(GCD_SOURCE)
    from repro.seqgraph import schedule_design
    result = schedule_design(design)
"""

from repro.hdl.ast import (
    Assign,
    Binary,
    Block,
    Call,
    Const,
    ConstraintStmt,
    If,
    PortDecl,
    Process,
    ReadExpr,
    RepeatUntil,
    Unary,
    Var,
    VarDecl,
    While,
    WriteStmt,
)
from repro.hdl.delay_model import DelayModel
from repro.hdl.errors import HdlLexError, HdlLowerError, HdlParseError
from repro.hdl.lexer import Token, tokenize
from repro.hdl.lower import compile_source, lower_process
from repro.hdl.parser import parse

__all__ = [
    "Assign",
    "Binary",
    "Block",
    "Call",
    "Const",
    "ConstraintStmt",
    "If",
    "PortDecl",
    "Process",
    "ReadExpr",
    "RepeatUntil",
    "Unary",
    "Var",
    "VarDecl",
    "While",
    "WriteStmt",
    "DelayModel",
    "HdlLexError",
    "HdlLowerError",
    "HdlParseError",
    "Token",
    "tokenize",
    "compile_source",
    "lower_process",
    "parse",
]
