"""Recursive-descent parser for the HardwareC subset.

Grammar (EBNF, ``[]`` optional, ``{}`` repetition)::

    program    = process { process } ;
    process    = "process" IDENT "(" [ IDENT { "," IDENT } ] ")"
                 "{" { decl } { stmt } "}" ;
    decl       = ("in"|"out"|"inout") "port" item { "," item } ";"
               | "boolean" item { "," item } ";"
               | "tag" IDENT { "," IDENT } ";" ;
    item       = IDENT [ "[" NUMBER "]" ] ;
    stmt       = [ IDENT ":" ] unlabeled ;
    unlabeled  = block | parblock | while | repeat | if | constraint
               | wait | write | call | assign | ";" ;
    block      = "{" { stmt } "}" ;
    parblock   = "<" { stmt } ">" ;
    while      = "while" "(" expr ")" ( ";" | stmt ) ;
    repeat     = "repeat" stmt "until" "(" expr ")" ";" ;
    if         = "if" "(" expr ")" stmt [ "else" stmt ] ;
    constraint = "constraint" ("mintime"|"maxtime") "from" IDENT
                 "to" IDENT "=" NUMBER [ "cycles" ] ";" ;
    wait       = "wait" "(" expr ")" ";" ;
    write      = "write" IDENT "=" expr ";" ;
    call       = "call" IDENT [ "(" [ expr { "," expr } ] ")" ] ";" ;
    assign     = IDENT "=" expr ";" ;

Expressions use C-like precedence: ``||`` < ``&&`` < ``|`` < ``^`` <
``&`` < equality < relational < shifts < additive < multiplicative <
unary (``! ~ -``) < primary (identifier, literal, ``read(port)``,
parenthesised expression).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.hdl.ast import (
    Assign,
    Binary,
    Block,
    Call,
    Const,
    ConstraintStmt,
    Expr,
    If,
    PortDecl,
    Process,
    Program,
    ReadExpr,
    RepeatUntil,
    Stmt,
    Unary,
    Var,
    VarDecl,
    Wait,
    While,
    WriteStmt,
)
from repro.hdl.errors import HdlParseError
from repro.hdl.lexer import Token, tokenize

#: Binary operator precedence levels, loosest first.
_PRECEDENCE: List[Tuple[str, ...]] = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token helpers --------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        """Consume and return the current token (EOF is sticky)."""
        token = self.current
        if token.kind != "eof":
            self.index += 1
        return token

    def check(self, kind: str, value: Optional[str] = None) -> bool:
        """True when the current token matches without consuming it."""
        token = self.current
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        """Consume and return the current token if it matches, else None."""
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        """Consume a required token or raise a positioned parse error."""
        if self.check(kind, value):
            return self.advance()
        want = value if value is not None else kind
        got = self.current.value or self.current.kind
        raise HdlParseError(f"expected {want!r}, found {got!r}",
                            self.current.line, self.current.column)

    def _number(self) -> int:
        token = self.expect("number")
        text = token.value
        base = 16 if text.lower().startswith("0x") else 10
        return int(text, base)

    # -- program / process ----------------------------------------------

    def parse_program(self) -> Program:
        """program = process { process } ;"""
        processes = []
        while not self.check("eof"):
            processes.append(self.parse_process())
        if not processes:
            raise HdlParseError("empty program", 1, 1)
        return Program(tuple(processes))

    def parse_process(self) -> Process:
        """process = header, declarations, statements."""
        start = self.expect("keyword", "process")
        name = self.expect("ident").value
        self.expect("op", "(")
        while not self.check("op", ")"):
            self.expect("ident")
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        self.expect("op", "{")
        ports: List[PortDecl] = []
        variables: List[VarDecl] = []
        tags: List[str] = []
        while True:
            if self.check("keyword", "in") or self.check("keyword", "out") \
                    or self.check("keyword", "inout"):
                direction = self.advance().value
                self.expect("keyword", "port")
                for item_name, width, line in self._items():
                    ports.append(PortDecl(direction, item_name, width, line))
            elif self.check("keyword", "boolean") or self.check("keyword", "static"):
                self.advance()
                for item_name, width, line in self._items():
                    variables.append(VarDecl(item_name, width, line))
            elif self.check("keyword", "tag"):
                self.advance()
                tags.append(self.expect("ident").value)
                while self.accept("op", ","):
                    tags.append(self.expect("ident").value)
                self.expect("op", ";")
            else:
                break
        statements: List[Stmt] = []
        while not self.check("op", "}"):
            statements.append(self.parse_statement())
        self.expect("op", "}")
        body = Block(tuple(statements), parallel=False, line=start.line)
        return Process(name, tuple(ports), tuple(variables), tuple(tags),
                       body, line=start.line)

    def _items(self) -> List[Tuple[str, int, int]]:
        items = []
        while True:
            token = self.expect("ident")
            width = 1
            if self.accept("op", "["):
                width = self._number()
                self.expect("op", "]")
            items.append((token.value, width, token.line))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        return items

    # -- statements -------------------------------------------------------

    def parse_statement(self) -> Stmt:
        """One statement, handling optional tag labels."""
        # Tag label: IDENT ":" stmt (lookahead of one token).
        if self.check("ident") and self.tokens[self.index + 1].kind == "op" \
                and self.tokens[self.index + 1].value == ":":
            tag = self.advance().value
            self.advance()  # ':'
            statement = self.parse_statement()
            if isinstance(statement, ConstraintStmt) or isinstance(statement, Block):
                raise HdlParseError(f"tag {tag!r} cannot label this statement",
                                    self.current.line, self.current.column)
            if getattr(statement, "tag", None) is not None:
                raise HdlParseError(
                    f"statement already labelled {statement.tag!r}; "
                    f"cannot add second tag {tag!r}",
                    self.current.line, self.current.column)
            return dataclasses.replace(statement, tag=tag)
        if self.check("op", "{"):
            return self._block("{", "}", parallel=False)
        if self.check("op", "<"):
            return self._block("<", ">", parallel=True)
        if self.check("keyword", "while"):
            return self._while()
        if self.check("keyword", "repeat"):
            return self._repeat()
        if self.check("keyword", "if"):
            return self._if()
        if self.check("keyword", "constraint"):
            return self._constraint()
        if self.check("keyword", "wait"):
            return self._wait()
        if self.check("keyword", "write"):
            return self._write()
        if self.check("keyword", "call"):
            return self._call()
        if self.check("op", ";"):
            token = self.advance()
            return Block((), line=token.line)
        return self._assign()

    def _block(self, open_ch: str, close_ch: str, parallel: bool) -> Block:
        start = self.expect("op", open_ch)
        statements: List[Stmt] = []
        while not self.check("op", close_ch):
            if self.check("eof"):
                raise HdlParseError(f"unterminated {open_ch!r} block",
                                    start.line, start.column)
            statements.append(self.parse_statement())
        self.expect("op", close_ch)
        return Block(tuple(statements), parallel=parallel, line=start.line)

    def _while(self) -> While:
        start = self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        if self.accept("op", ";"):
            return While(cond, None, line=start.line)
        body = self.parse_statement()
        return While(cond, body, line=start.line)

    def _repeat(self) -> RepeatUntil:
        start = self.expect("keyword", "repeat")
        body = self.parse_statement()
        self.expect("keyword", "until")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return RepeatUntil(body, cond, line=start.line)

    def _if(self) -> If:
        start = self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then = self.parse_statement()
        otherwise = None
        if self.accept("keyword", "else"):
            otherwise = self.parse_statement()
        return If(cond, then, otherwise, line=start.line)

    def _constraint(self) -> ConstraintStmt:
        start = self.expect("keyword", "constraint")
        if self.check("keyword", "mintime") or self.check("keyword", "maxtime"):
            kind = self.advance().value
        else:
            raise HdlParseError("expected 'mintime' or 'maxtime'",
                                self.current.line, self.current.column)
        self.expect("keyword", "from")
        from_tag = self.expect("ident").value
        self.expect("keyword", "to")
        to_tag = self.expect("ident").value
        self.expect("op", "=")
        cycles = self._number()
        self.accept("keyword", "cycles")
        self.expect("op", ";")
        return ConstraintStmt(kind, from_tag, to_tag, cycles, line=start.line)

    def _wait(self) -> Wait:
        start = self.expect("keyword", "wait")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return Wait(cond, line=start.line)

    def _write(self) -> WriteStmt:
        start = self.expect("keyword", "write")
        port = self.expect("ident").value
        self.expect("op", "=")
        value = self.parse_expression()
        self.expect("op", ";")
        return WriteStmt(port, value, line=start.line)

    def _call(self) -> Call:
        start = self.expect("keyword", "call")
        callee = self.expect("ident").value
        args: List[Expr] = []
        if self.accept("op", "("):
            while not self.check("op", ")"):
                args.append(self.parse_expression())
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        self.expect("op", ";")
        return Call(callee, tuple(args), line=start.line)

    def _assign(self) -> Assign:
        target = self.expect("ident")
        self.expect("op", "=")
        value = self.parse_expression()
        self.expect("op", ";")
        return Assign(target.value, value, line=target.line)

    # -- expressions ------------------------------------------------------

    def parse_expression(self, level: int = 0) -> Expr:
        """Precedence-climbing expression parser."""
        if level >= len(_PRECEDENCE):
            return self._unary()
        left = self.parse_expression(level + 1)
        while self.current.kind == "op" and self.current.value in _PRECEDENCE[level]:
            op = self.advance()
            right = self.parse_expression(level + 1)
            left = Binary(op.value, left, right, line=op.line)
        return left

    def _unary(self) -> Expr:
        if self.current.kind == "op" and self.current.value in ("!", "~", "-"):
            op = self.advance()
            return Unary(op.value, self._unary(), line=op.line)
        return self._primary()

    def _primary(self) -> Expr:
        token = self.current
        if token.kind == "number":
            return Const(self._number(), line=token.line)
        if self.check("keyword", "read"):
            self.advance()
            self.expect("op", "(")
            port = self.expect("ident").value
            self.expect("op", ")")
            return ReadExpr(port, line=token.line)
        if token.kind == "ident":
            self.advance()
            # Bit-select x[3] reads the variable; width analysis is out
            # of scope, so the select collapses to the variable itself.
            if self.accept("op", "["):
                self.parse_expression()
                self.expect("op", "]")
            return Var(token.value, line=token.line)
        if self.accept("op", "("):
            inner = self.parse_expression()
            self.expect("op", ")")
            return inner
        raise HdlParseError(f"unexpected token {token.value or token.kind!r}",
                            token.line, token.column)


def parse(source: str) -> Program:
    """Parse HardwareC *source* into a :class:`Program`."""
    return _Parser(tokenize(source)).parse_program()
