"""Abstract syntax tree for the HardwareC subset.

All nodes are frozen dataclasses carrying the source line for error
reporting.  Expressions expose :meth:`read_symbols` (the identifiers and
ports the expression samples) used by the lowering's dataflow analysis,
and :meth:`operators` used by the delay model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for expressions."""

    def read_symbols(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def operators(self) -> Tuple[str, ...]:
        raise NotImplementedError


@dataclass(frozen=True)
class Var(Expr):
    """A variable or port reference."""

    name: str
    line: int = 0

    def read_symbols(self) -> Tuple[str, ...]:
        return (self.name,)

    def operators(self) -> Tuple[str, ...]:
        return ()


@dataclass(frozen=True)
class Const(Expr):
    """An integer literal."""

    value: int
    line: int = 0

    def read_symbols(self) -> Tuple[str, ...]:
        return ()

    def operators(self) -> Tuple[str, ...]:
        return ()


@dataclass(frozen=True)
class Unary(Expr):
    """A unary operation: ``!``, ``~``, or ``-``."""

    op: str
    operand: Expr
    line: int = 0

    def read_symbols(self) -> Tuple[str, ...]:
        return self.operand.read_symbols()

    def operators(self) -> Tuple[str, ...]:
        return (self.op,) + self.operand.operators()


@dataclass(frozen=True)
class Binary(Expr):
    """A binary operation."""

    op: str
    left: Expr
    right: Expr
    line: int = 0

    def read_symbols(self) -> Tuple[str, ...]:
        return self.left.read_symbols() + self.right.read_symbols()

    def operators(self) -> Tuple[str, ...]:
        return (self.op,) + self.left.operators() + self.right.operators()


@dataclass(frozen=True)
class ReadExpr(Expr):
    """``read(port)`` -- samples an input port."""

    port: str
    line: int = 0

    def read_symbols(self) -> Tuple[str, ...]:
        return (self.port,)

    def operators(self) -> Tuple[str, ...]:
        return ("read",)


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    """Base class for statements."""


@dataclass(frozen=True)
class Block(Stmt):
    """``{ ... }`` or ``< ... >``; HardwareC's ``<>`` groups are
    data-parallel, but Hercules derives parallelism from dataflow for
    both forms, so lowering treats them identically."""

    statements: Tuple[Stmt, ...]
    parallel: bool = False
    line: int = 0


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = expr;`` with an optional tag label."""

    target: str
    value: Expr
    tag: Optional[str] = None
    line: int = 0


@dataclass(frozen=True)
class WriteStmt(Stmt):
    """``write port = expr;``."""

    port: str
    value: Expr
    tag: Optional[str] = None
    line: int = 0


@dataclass(frozen=True)
class While(Stmt):
    """``while (cond) body`` -- data-dependent iteration.

    An empty body (``while (cond) ;``) is a busy-wait on an external
    condition, the canonical unbounded synchronization of the paper.
    """

    cond: Expr
    body: Optional[Stmt]
    tag: Optional[str] = None
    line: int = 0


@dataclass(frozen=True)
class RepeatUntil(Stmt):
    """``repeat { ... } until (cond);`` -- at-least-once iteration."""

    body: Stmt
    cond: Expr
    tag: Optional[str] = None
    line: int = 0


@dataclass(frozen=True)
class If(Stmt):
    """``if (cond) then [else other]``."""

    cond: Expr
    then: Stmt
    otherwise: Optional[Stmt] = None
    tag: Optional[str] = None
    line: int = 0


@dataclass(frozen=True)
class Call(Stmt):
    """``call name;`` or ``call name(arg, ...);`` -- procedure call."""

    callee: str
    args: Tuple[Expr, ...] = ()
    tag: Optional[str] = None
    line: int = 0


@dataclass(frozen=True)
class Wait(Stmt):
    """``wait(cond);`` -- explicit external synchronization point."""

    cond: Expr
    tag: Optional[str] = None
    line: int = 0


@dataclass(frozen=True)
class ConstraintStmt(Stmt):
    """``constraint mintime|maxtime from a to b = N cycles;``."""

    kind: str  # "mintime" | "maxtime"
    from_tag: str
    to_tag: str
    cycles: int
    line: int = 0


# ----------------------------------------------------------------------
# declarations and processes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PortDecl:
    """``in|out|inout port name[width], ...;`` (one entry per name)."""

    direction: str  # "in" | "out" | "inout"
    name: str
    width: int = 1
    line: int = 0


@dataclass(frozen=True)
class VarDecl:
    """``boolean name[width], ...;`` (one entry per name)."""

    name: str
    width: int = 1
    line: int = 0


@dataclass(frozen=True)
class Process:
    """A ``process name (args) { decls; body }`` definition."""

    name: str
    ports: Tuple[PortDecl, ...]
    variables: Tuple[VarDecl, ...]
    tags: Tuple[str, ...]
    body: Block
    line: int = 0

    def port(self, name: str) -> PortDecl:
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"no port {name!r} in process {self.name!r}")


@dataclass(frozen=True)
class Program:
    """A compilation unit: one or more processes."""

    processes: Tuple[Process, ...]

    def process(self, name: str) -> Process:
        for proc in self.processes:
            if proc.name == name:
                return proc
        raise KeyError(f"no process {name!r}")
