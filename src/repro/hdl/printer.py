"""HardwareC source emission from ASTs.

The inverse of the parser: renders a :class:`~repro.hdl.ast.Program`
(or any statement/expression) back to HardwareC text.  Used for
constraint-editing round trips, design persistence in source form, and
the parser round-trip fuzz tests (``parse(to_source(p))`` must be
structurally identical to ``p``).

Expressions are emitted fully parenthesized below the statement level,
so precedence never needs re-deriving; the round-trip property is
checked through a print-parse-print fixpoint.
"""

from __future__ import annotations

from typing import List

from repro.hdl.ast import (
    Assign,
    Binary,
    Block,
    Call,
    Const,
    ConstraintStmt,
    Expr,
    If,
    Process,
    Program,
    ReadExpr,
    RepeatUntil,
    Stmt,
    Unary,
    Var,
    Wait,
    While,
    WriteStmt,
)

_INDENT = "    "


def expr_to_source(expr: Expr) -> str:
    """Render an expression (parenthesized compound subterms)."""
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, ReadExpr):
        return f"read({expr.port})"
    if isinstance(expr, Unary):
        return f"{expr.op}{_sub(expr.operand)}"
    if isinstance(expr, Binary):
        return f"{_sub(expr.left)} {expr.op} {_sub(expr.right)}"
    raise TypeError(f"cannot print {type(expr).__name__}")


def _sub(expr: Expr) -> str:
    text = expr_to_source(expr)
    if isinstance(expr, (Binary, Unary)):
        return f"({text})"
    return text


def _tag_prefix(stmt) -> str:
    tag = getattr(stmt, "tag", None)
    return f"{tag}: " if tag else ""


def stmt_to_source(stmt: Stmt, depth: int = 1) -> List[str]:
    """Render one statement as indented source lines."""
    pad = _INDENT * depth
    if isinstance(stmt, Block):
        opener, closer = ("<", ">") if stmt.parallel else ("{", "}")
        if not stmt.statements:
            return [f"{pad};"] if not stmt.parallel else [f"{pad}< >"]
        lines = [f"{pad}{opener}"]
        for inner in stmt.statements:
            lines += stmt_to_source(inner, depth + 1)
        lines.append(f"{pad}{closer}")
        return lines
    if isinstance(stmt, Assign):
        return [f"{pad}{_tag_prefix(stmt)}{stmt.target} = "
                f"{expr_to_source(stmt.value)};"]
    if isinstance(stmt, WriteStmt):
        return [f"{pad}{_tag_prefix(stmt)}write {stmt.port} = "
                f"{expr_to_source(stmt.value)};"]
    if isinstance(stmt, While):
        header = (f"{pad}{_tag_prefix(stmt)}while "
                  f"({expr_to_source(stmt.cond)})")
        if stmt.body is None:
            return [header, f"{pad}{_INDENT};"]
        return [header] + stmt_to_source(stmt.body, depth + 1)
    if isinstance(stmt, RepeatUntil):
        lines = [f"{pad}{_tag_prefix(stmt)}repeat"]
        lines += stmt_to_source(stmt.body, depth + 1)
        lines.append(f"{pad}until ({expr_to_source(stmt.cond)});")
        return lines
    if isinstance(stmt, If):
        lines = [f"{pad}{_tag_prefix(stmt)}if ({expr_to_source(stmt.cond)})"]
        lines += stmt_to_source(stmt.then, depth + 1)
        if stmt.otherwise is not None:
            lines.append(f"{pad}else")
            lines += stmt_to_source(stmt.otherwise, depth + 1)
        return lines
    if isinstance(stmt, Wait):
        return [f"{pad}{_tag_prefix(stmt)}wait"
                f"({expr_to_source(stmt.cond)});"]
    if isinstance(stmt, Call):
        if stmt.args:
            args = ", ".join(expr_to_source(a) for a in stmt.args)
            return [f"{pad}{_tag_prefix(stmt)}call {stmt.callee}({args});"]
        return [f"{pad}{_tag_prefix(stmt)}call {stmt.callee};"]
    if isinstance(stmt, ConstraintStmt):
        return [f"{pad}constraint {stmt.kind} from {stmt.from_tag} "
                f"to {stmt.to_tag} = {stmt.cycles} cycles;"]
    raise TypeError(f"cannot print {type(stmt).__name__}")


def process_to_source(process: Process) -> str:
    """Render one process definition."""
    port_names = ", ".join(p.name for p in process.ports)
    lines = [f"process {process.name} ({port_names})", "{"]
    for direction in ("in", "out", "inout"):
        group = [p for p in process.ports if p.direction == direction]
        if group:
            decls = ", ".join(
                p.name if p.width == 1 else f"{p.name}[{p.width}]"
                for p in group)
            lines.append(f"{_INDENT}{direction} port {decls};")
    if process.variables:
        decls = ", ".join(
            v.name if v.width == 1 else f"{v.name}[{v.width}]"
            for v in process.variables)
        lines.append(f"{_INDENT}boolean {decls};")
    if process.tags:
        lines.append(f"{_INDENT}tag {', '.join(process.tags)};")
    lines.append("")
    for stmt in process.body.statements:
        lines += stmt_to_source(stmt, 1)
    lines.append("}")
    return "\n".join(lines)


def to_source(program: Program) -> str:
    """Render a whole program."""
    return "\n\n".join(process_to_source(p) for p in program.processes) + "\n"
