"""Frontend error types, all carrying source line/column information."""

from __future__ import annotations


class HdlError(Exception):
    """Base class for HardwareC frontend errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class HdlLexError(HdlError):
    """An unrecognised character or malformed token."""


class HdlParseError(HdlError):
    """The token stream does not match the grammar."""


class HdlLowerError(HdlError):
    """The AST is structurally valid but cannot be lowered (undeclared
    identifiers, duplicate tags, constraints on missing tags, ...)."""
