"""Tokenizer for the HardwareC subset.

Handles identifiers, decimal/hex integer literals, one- and two-
character operators, ``/* */`` and ``//`` comments, and tracks line and
column for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hdl.errors import HdlLexError

KEYWORDS = frozenset({
    "process", "in", "out", "inout", "port", "boolean", "tag", "static",
    "while", "repeat", "until", "if", "else", "read", "write", "call",
    "constraint", "mintime", "maxtime", "from", "to", "cycles", "wait",
})

#: Two-character operators, longest-match-first.
TWO_CHAR_OPS = ("==", "!=", "<=", ">=", "&&", "||", "<<", ">>")

ONE_CHAR_OPS = "+-*/%&|^~!<>=(){}[];,:"


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``ident``, ``number``, ``keyword``, ``op``, or
    ``eof``; ``value`` is the matched text (numbers keep their text form,
    the parser converts).
    """

    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*; raises :class:`HdlLexError` on bad input."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise HdlLexError("unterminated comment", line, column)
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += i - start
            continue
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
            else:
                while i < n and source[i].isdigit():
                    i += 1
            text = source[start:i]
            tokens.append(Token("number", text, line, column))
            column += i - start
            continue
        matched = False
        for op in TWO_CHAR_OPS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, column))
                i += 2
                column += 2
                matched = True
                break
        if matched:
            continue
        if ch in ONE_CHAR_OPS:
            tokens.append(Token("op", ch, line, column))
            i += 1
            column += 1
            continue
        raise HdlLexError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", line, column))
    return tokens
