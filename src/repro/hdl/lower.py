"""Lowering HardwareC ASTs to hierarchical sequencing graphs.

This is the frontend half of Hercules's behavioural synthesis: each
process becomes a hierarchy of sequencing graphs.  Leaf statements map
to fixed-delay operations (delays from the :class:`DelayModel`),
``while``/``repeat`` loops become data-dependent LOOP operations over a
body graph, ``if`` becomes a COND over branch graphs, and ``call``
becomes a CALL of the callee process's root graph.  Parallelism comes
from dataflow: statements with no data dependence stay unordered
(maximal parallelism), and ``< ... >`` groups additionally suppress
intra-group dependencies.

Timing constraints reference operation *tags*; every tagged statement's
operation is named after its tag, and constraints resolve within the
graph where they appear.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.hdl.ast import (
    Assign,
    Block,
    Call,
    ConstraintStmt,
    Expr,
    If,
    Process,
    Program,
    RepeatUntil,
    Stmt,
    Wait,
    While,
    WriteStmt,
)
from repro.hdl.delay_model import DelayModel
from repro.hdl.errors import HdlLowerError
from repro.hdl.parser import parse
from repro.seqgraph.builder import GraphBuilder
from repro.seqgraph.model import Design, SequencingGraph


class _ProcessLowerer:
    """Lowers one process into sequencing graphs added to a design."""

    def __init__(self, process: Process, program: Program, design: Design,
                 delay_model: DelayModel, preserve_io_order: bool = True,
                 granularity: str = "statement") -> None:
        if granularity not in ("statement", "operator"):
            raise ValueError(f"granularity must be 'statement' or "
                             f"'operator', got {granularity!r}")
        self.process = process
        self.program = program
        self.design = design
        self.delay_model = delay_model
        self.preserve_io_order = preserve_io_order
        self.granularity = granularity
        self._counter = 0
        self._graph_counter = 0
        self.declared: Set[str] = (
            {port.name for port in process.ports}
            | {var.name for var in process.variables})
        self.process_names = {proc.name for proc in program.processes}
        #: graphs known to contain side-effecting operations
        self._effectful_graphs: Set[str] = set()
        #: AST pre-order indices for control constructs, shared with the
        #: instrumented interpreter so co-simulation can match dynamic
        #: trip counts to lowered operations.
        self._construct_index: Dict[int, int] = {}
        self._index_constructs(process.body, [0])
        #: per-builder frontier of the latest side-effecting operations.
        #: Keyed by the builder object itself (NOT id(builder): ids are
        #: reused after garbage collection, which would leak a dead
        #: graph's frontier into a new one).
        self._effect_frontier: Dict[GraphBuilder, List[str]] = {}

    # ------------------------------------------------------------------

    def lower(self) -> str:
        """Lower the process body; returns the root graph name."""
        root_name = self.process.name
        graph, _, _ = self._lower_block(self.process.body, root_name)
        return root_name

    # ------------------------------------------------------------------

    def _index_constructs(self, stmt: Stmt, counter: List[int]) -> None:
        """Assign AST pre-order indices to While/RepeatUntil/If nodes --
        the same order :func:`repro.sim.cosim.index_constructs` assigns,
        keying the construct registries in ``design.metadata``."""
        if isinstance(stmt, (While, RepeatUntil, If)):
            self._construct_index[id(stmt)] = counter[0]
            counter[0] += 1
        if isinstance(stmt, Block):
            for inner in stmt.statements:
                self._index_constructs(inner, counter)
        elif isinstance(stmt, While) and stmt.body is not None:
            self._index_constructs(stmt.body, counter)
        elif isinstance(stmt, RepeatUntil):
            self._index_constructs(stmt.body, counter)
        elif isinstance(stmt, If):
            self._index_constructs(stmt.then, counter)
            if stmt.otherwise is not None:
                self._index_constructs(stmt.otherwise, counter)

    def _register_construct(self, kind: str, stmt: Stmt, graph_name: str,
                            op_name: str) -> None:
        registry = self.design.metadata.setdefault(kind, [])
        registry.append({
            "process": self.process.name,
            "index": self._construct_index[id(stmt)],
            "graph": graph_name,
            "op": op_name,
        })

    def _fresh(self, stem: str) -> str:
        self._counter += 1
        return f"{stem}_{self._counter}"

    def _fresh_graph(self, stem: str) -> str:
        self._graph_counter += 1
        return f"{self.process.name}__{stem}{self._graph_counter}"

    def _check_symbols(self, expr: Expr, line: int) -> None:
        for symbol in expr.read_symbols():
            if symbol not in self.declared:
                raise HdlLowerError(
                    f"undeclared identifier {symbol!r} in process "
                    f"{self.process.name!r}", line)

    def _op_name(self, builder: GraphBuilder, tag: Optional[str], stem: str,
                 line: int) -> str:
        if tag is None:
            name = self._fresh(stem)
        else:
            if tag not in self.process.tags:
                raise HdlLowerError(f"tag {tag!r} not declared", line)
            if tag in builder.graph:
                raise HdlLowerError(f"tag {tag!r} used twice in one graph",
                                    line)
            name = tag
        self._record_op_line(builder.graph.name, name, line)
        return name

    def _record_op_line(self, graph_name: str, op_name: str,
                        line: int) -> None:
        """Source provenance consumed by ``repro.lint`` RS5xx spans."""
        if line <= 0:
            return
        lines = self.design.metadata.setdefault("op_lines", {})
        lines.setdefault(graph_name, {})[op_name] = line

    # ------------------------------------------------------------------

    def _lower_block(self, block: Block, graph_name: str
                     ) -> Tuple[SequencingGraph, Tuple[str, ...], Tuple[str, ...]]:
        """Lower a block into a new sequencing graph.

        Returns the built graph plus the sets of symbols it reads and
        writes (for dataflow at the parent level).
        """
        builder = GraphBuilder(graph_name)
        reads: List[str] = []
        writes: List[str] = []
        constraints: List[ConstraintStmt] = []
        self._lower_statements(block, builder, reads, writes, constraints)
        for stmt in constraints:
            self._apply_constraint(builder, stmt)
        graph = builder.build()
        self.design.add_graph(graph)
        self._register_graph(graph)
        return graph, tuple(dict.fromkeys(reads)), tuple(dict.fromkeys(writes))

    def _register_graph(self, graph: SequencingGraph) -> None:
        """Record whether *graph* contains side effects, so conditionals
        referencing it participate in I/O ordering."""
        from repro.seqgraph.model import OpKind

        for op in graph.operations():
            if op.kind in (OpKind.WAIT, OpKind.LOOP, OpKind.CALL):
                self._effectful_graphs.add(graph.name)
                return
            if op.kind is OpKind.COND and any(
                    branch in self._effectful_graphs for branch in op.branches):
                self._effectful_graphs.add(graph.name)
                return
            if op.resource_class == "port":
                self._effectful_graphs.add(graph.name)
                return

    def _lower_statements(self, block: Block, builder: GraphBuilder,
                          reads: List[str], writes: List[str],
                          constraints: List[ConstraintStmt]) -> List[str]:
        """Lower a block's statements; returns the operation names created
        directly at this level (for parallel-group marking above)."""
        group: List[str] = []
        for stmt in block.statements:
            if isinstance(stmt, Block):
                # Nested blocks order their own effects recursively.
                names = self._lower_statements(stmt, builder, reads, writes,
                                               constraints)
            else:
                names = self._lower_statement(stmt, builder, reads, writes,
                                              constraints)
                if not block.parallel:
                    self._order_effects(builder, names, parallel=False)
            group.extend(names)
        if block.parallel:
            if len(group) > 1:
                builder.mark_parallel(group)
            self._order_effects(builder, group, parallel=True)
        return group

    # ------------------------------------------------------------------
    # side-effect ordering
    # ------------------------------------------------------------------

    def _is_effectful(self, builder: GraphBuilder, name: str) -> bool:
        """Side-effecting: port I/O, synchronization, loops, and calls;
        conditionals whose branches contain effects."""
        from repro.seqgraph.model import OpKind

        op = builder.graph.operation(name)
        if op.kind in (OpKind.WAIT, OpKind.LOOP, OpKind.CALL):
            return True
        if op.kind is OpKind.COND:
            return any(branch in self._effectful_graphs for branch in op.branches)
        return op.resource_class == "port"

    def _order_effects(self, builder: GraphBuilder, names: List[str],
                       parallel: bool = False) -> None:
        """Chain side-effecting operations in program order.

        HardwareC I/O has observable order; Hercules preserves it while
        still parallelizing pure computation.  Each new effectful
        operation is sequenced after the current effect frontier.
        Operations created by one ``< ... >`` group join the frontier
        together (they are explicitly concurrent), but still follow the
        effects that preceded the group.
        """
        if not self.preserve_io_order:
            return
        effectful = [n for n in names if self._is_effectful(builder, n)]
        if not effectful:
            return
        frontier = self._effect_frontier.setdefault(builder, [])
        for name in effectful:
            for previous in frontier:
                builder.then(previous, name)
        if parallel:
            frontier[:] = effectful
        else:
            # sequential statements: chain within the batch too
            for tail, head in zip(effectful, effectful[1:]):
                builder.then(tail, head)
            frontier[:] = [effectful[-1]]

    def _lower_statement(self, stmt: Stmt, builder: GraphBuilder,
                         reads: List[str], writes: List[str],
                         constraints: List[ConstraintStmt]) -> List[str]:
        """Lower one statement; returns the operation names it created at
        this level (for parallel-group marking)."""
        if isinstance(stmt, ConstraintStmt):
            constraints.append(stmt)
            return []
        if isinstance(stmt, Block):
            return self._lower_statements(stmt, builder, reads, writes, constraints)
        if isinstance(stmt, Assign):
            self._check_symbols(stmt.value, stmt.line)
            if stmt.target not in self.declared:
                raise HdlLowerError(f"undeclared target {stmt.target!r}", stmt.line)
            if self.granularity == "operator":
                return self._lower_assign_fine(stmt, builder, reads, writes)
            operators = stmt.value.operators()
            name = self._op_name(builder, stmt.tag, f"asg_{stmt.target}", stmt.line)
            builder.op(name,
                       delay=self.delay_model.statement_delay(operators),
                       reads=stmt.value.read_symbols(),
                       writes=(stmt.target,),
                       resource_class=self.delay_model.resource_class(operators),
                       tag=stmt.tag)
            reads.extend(stmt.value.read_symbols())
            writes.append(stmt.target)
            return [name]
        if isinstance(stmt, WriteStmt):
            self._check_symbols(stmt.value, stmt.line)
            if stmt.port not in self.declared:
                raise HdlLowerError(f"undeclared port {stmt.port!r}", stmt.line)
            created: List[str] = []
            value_reads = stmt.value.read_symbols()
            if self.granularity == "operator" and stmt.value.operators():
                symbol = self._lower_expr_fine(stmt.value, builder, created)
                value_reads = (symbol,) if symbol is not None else ()
            name = self._op_name(builder, stmt.tag, f"wr_{stmt.port}", stmt.line)
            builder.op(name,
                       delay=self.delay_model.statement_delay(("write",)),
                       reads=value_reads,
                       writes=(stmt.port,),
                       resource_class="port",
                       tag=stmt.tag)
            reads.extend(stmt.value.read_symbols())
            writes.append(stmt.port)
            return created + [name]
        if isinstance(stmt, Wait):
            self._check_symbols(stmt.cond, stmt.line)
            name = self._op_name(builder, stmt.tag, "wait", stmt.line)
            builder.wait(name, reads=stmt.cond.read_symbols(), tag=stmt.tag)
            reads.extend(stmt.cond.read_symbols())
            return [name]
        if isinstance(stmt, While):
            return self._lower_loop(stmt.cond, stmt.body, stmt.tag, "while",
                                    builder, reads, writes, cond_first=True,
                                    line=stmt.line, stmt=stmt)
        if isinstance(stmt, RepeatUntil):
            return self._lower_loop(stmt.cond, stmt.body, stmt.tag, "repeat",
                                    builder, reads, writes, cond_first=False,
                                    line=stmt.line, stmt=stmt)
        if isinstance(stmt, If):
            return self._lower_if(stmt, builder, reads, writes)
        if isinstance(stmt, Call):
            if stmt.callee not in self.process_names:
                raise HdlLowerError(f"call to unknown process {stmt.callee!r}",
                                    stmt.line)
            for arg in stmt.args:
                self._check_symbols(arg, stmt.line)
            name = self._op_name(builder, stmt.tag, f"call_{stmt.callee}", stmt.line)
            arg_reads: List[str] = []
            for arg in stmt.args:
                arg_reads.extend(arg.read_symbols())
            builder.call(name, callee=stmt.callee, reads=arg_reads, tag=stmt.tag)
            reads.extend(arg_reads)
            return [name]
        raise HdlLowerError(f"cannot lower statement {type(stmt).__name__}",
                            getattr(stmt, "line", 0))

    # ------------------------------------------------------------------
    # operator-granularity lowering (one vertex per operation, the
    # granularity Hercules itself compiled to)
    # ------------------------------------------------------------------

    def _fresh_temp(self) -> str:
        self._counter += 1
        temp = f"__t{self._counter}"
        self.declared.add(temp)
        return temp

    def _lower_expr_fine(self, expr: Expr, builder: GraphBuilder,
                         created: List[str],
                         target: Optional[str] = None,
                         root_name: Optional[str] = None,
                         tag: Optional[str] = None) -> Optional[str]:
        """Decompose *expr* into per-operator operations.

        Returns the symbol holding the expression's value (None for a
        constant operand, which contributes no dataflow read).  When
        *target* names a variable, the root operation writes it directly
        (no extra move); *root_name*/*tag* name and label the root
        operation (for timing-constraint tags).  Created operation names
        append to *created*.
        """
        from repro.hdl.ast import Binary, Const, ReadExpr, Unary, Var

        def operand_reads(symbol: Optional[str]) -> tuple:
            return () if symbol is None else (symbol,)

        if isinstance(expr, Const):
            if target is None:
                return None  # literal operand: no operation, no read
            name = root_name or self._fresh(f"ld_{target}")
            builder.op(name, delay=self.delay_model.statement_delay(()),
                       reads=(), writes=(target,), tag=tag)
            created.append(name)
            return target
        if isinstance(expr, Var):
            if target is None:
                return expr.name
            name = root_name or self._fresh(f"mv_{target}")
            builder.op(name, delay=self.delay_model.statement_delay(()),
                       reads=(expr.name,), writes=(target,), tag=tag)
            created.append(name)
            return target
        if isinstance(expr, ReadExpr):
            out = target if target is not None else self._fresh_temp()
            name = root_name or self._fresh(f"rd_{expr.port}")
            builder.op(name, delay=self.delay_model.statement_delay(("read",)),
                       reads=(expr.port,), writes=(out,),
                       resource_class="port", tag=tag)
            created.append(name)
            return out
        if isinstance(expr, Unary):
            operand = self._lower_expr_fine(expr.operand, builder, created)
            out = target if target is not None else self._fresh_temp()
            name = root_name or self._fresh(f"un{len(created)}")
            builder.op(name, delay=self.delay_model.statement_delay((expr.op,)),
                       reads=operand_reads(operand), writes=(out,),
                       resource_class=self.delay_model.resource_class((expr.op,)),
                       tag=tag)
            created.append(name)
            return out
        if isinstance(expr, Binary):
            left = self._lower_expr_fine(expr.left, builder, created)
            right = self._lower_expr_fine(expr.right, builder, created)
            out = target if target is not None else self._fresh_temp()
            name = root_name or self._fresh(f"bin{len(created)}")
            builder.op(name, delay=self.delay_model.statement_delay((expr.op,)),
                       reads=operand_reads(left) + operand_reads(right),
                       writes=(out,),
                       resource_class=self.delay_model.resource_class((expr.op,)),
                       tag=tag)
            created.append(name)
            return out
        raise HdlLowerError(f"cannot decompose {type(expr).__name__}")

    def _lower_assign_fine(self, stmt: Assign, builder: GraphBuilder,
                           reads: List[str], writes: List[str]) -> List[str]:
        created: List[str] = []
        root_name = self._op_name(builder, stmt.tag, f"asg_{stmt.target}",
                                  stmt.line) if stmt.tag else None
        self._lower_expr_fine(stmt.value, builder, created,
                              target=stmt.target, root_name=root_name,
                              tag=stmt.tag)
        reads.extend(stmt.value.read_symbols())
        writes.append(stmt.target)
        return created

    def _lower_loop(self, cond: Expr, body: Optional[Stmt], tag: Optional[str],
                    stem: str, builder: GraphBuilder, reads: List[str],
                    writes: List[str], cond_first: bool, line: int,
                    stmt: Optional[Stmt] = None) -> List[str]:
        """A data-dependent loop: condition + body form the body graph.

        The condition is evaluated every iteration, so it lives inside
        the loop body graph (before the body for ``while``, after it for
        ``repeat ... until``).
        """
        self._check_symbols(cond, line)
        graph_name = self._fresh_graph(stem)
        body_builder = GraphBuilder(graph_name)
        body_reads: List[str] = list(cond.read_symbols())
        body_writes: List[str] = []
        body_constraints: List[ConstraintStmt] = []

        cond_name = f"{stem}_cond"
        cond_operators = cond.operators() or ("==",)

        def add_cond() -> None:
            if self.granularity == "operator" and cond.operators():
                cond_created: List[str] = []
                exit_symbol = f"__{graph_name}_exit"
                self.declared.add(exit_symbol)
                self._lower_expr_fine(cond, body_builder, cond_created,
                                      target=exit_symbol, root_name=cond_name)
                return
            body_builder.op(cond_name,
                            delay=self.delay_model.statement_delay(cond_operators),
                            reads=cond.read_symbols(),
                            writes=(f"__{graph_name}_exit",),
                            resource_class=self.delay_model.resource_class(cond_operators))

        body_names: List[str] = []
        if cond_first:
            add_cond()
        if body is not None:
            wrapped = body if isinstance(body, Block) else Block((body,), line=line)
            body_names = self._lower_statements(wrapped, body_builder, body_reads,
                                                body_writes, body_constraints)
        if not cond_first:
            add_cond()
        # The condition evaluation is control-ordered against the body:
        # a while tests before executing, repeat...until tests after.
        for name in body_names:
            if cond_first:
                body_builder.then(cond_name, name)
            else:
                body_builder.then(name, cond_name)
        for stmt in body_constraints:
            self._apply_constraint(body_builder, stmt)
        graph = body_builder.build()
        self.design.add_graph(graph)
        self._register_graph(graph)

        loop_name = self._op_name(builder, tag, f"loop_{stem}", line)
        builder.loop(loop_name, body=graph_name,
                     reads=tuple(dict.fromkeys(body_reads)),
                     writes=tuple(dict.fromkeys(body_writes)), tag=tag)
        if stmt is not None:
            self._register_construct("loops", stmt, builder.graph.name,
                                     loop_name)
        reads.extend(body_reads)
        writes.extend(body_writes)
        return [loop_name]

    def _lower_if(self, stmt: If, builder: GraphBuilder,
                  reads: List[str], writes: List[str]) -> List[str]:
        self._check_symbols(stmt.cond, stmt.line)
        created: List[str] = []
        cond_reads = list(stmt.cond.read_symbols())
        if self.granularity == "operator" and stmt.cond.operators():
            guard = self._lower_expr_fine(stmt.cond, builder, created)
            cond_reads = [guard] if guard is not None else []
            reads.extend(stmt.cond.read_symbols())
        branch_names: List[str] = []
        branch_reads: List[str] = list(cond_reads)
        branch_writes: List[str] = []
        for label, branch in (("then", stmt.then), ("else", stmt.otherwise)):
            graph_name = self._fresh_graph(f"if_{label}")
            wrapped = (branch if isinstance(branch, Block)
                       else Block(() if branch is None else (branch,), line=stmt.line))
            graph, graph_reads, graph_writes = self._lower_block(wrapped, graph_name)
            branch_names.append(graph_name)
            branch_reads.extend(graph_reads)
            branch_writes.extend(graph_writes)
        cond_name = self._op_name(builder, stmt.tag, "if", stmt.line)
        builder.cond(cond_name, branches=branch_names,
                     reads=tuple(dict.fromkeys(branch_reads)),
                     writes=tuple(dict.fromkeys(branch_writes)), tag=stmt.tag)
        self._register_construct("conds", stmt, builder.graph.name, cond_name)
        reads.extend(branch_reads)
        writes.extend(branch_writes)
        return created + [cond_name]

    def _apply_constraint(self, builder: GraphBuilder, stmt: ConstraintStmt) -> None:
        for tag in (stmt.from_tag, stmt.to_tag):
            if tag not in builder.graph:
                raise HdlLowerError(
                    f"constraint references tag {tag!r} which labels no "
                    f"operation in this block", stmt.line)
        if stmt.kind == "mintime":
            builder.min_constraint(stmt.from_tag, stmt.to_tag, stmt.cycles)
        else:
            builder.max_constraint(stmt.from_tag, stmt.to_tag, stmt.cycles)


def lower_process(process: Process, program: Program, design: Design,
                  delay_model: Optional[DelayModel] = None,
                  preserve_io_order: bool = True,
                  granularity: str = "statement") -> str:
    """Lower one *process* into *design*; returns its root graph name."""
    lowerer = _ProcessLowerer(process, program, design,
                              delay_model or DelayModel(),
                              preserve_io_order=preserve_io_order,
                              granularity=granularity)
    return lowerer.lower()


def compile_source(source: str, root: Optional[str] = None,
                   delay_model: Optional[DelayModel] = None,
                   preserve_io_order: bool = True,
                   granularity: str = "statement") -> Design:
    """Parse and lower HardwareC *source* into a hierarchical design.

    Args:
        source: HardwareC text (one or more processes).
        root: name of the root process; defaults to the first one.
        delay_model: operator delay model (defaults apply otherwise).
        preserve_io_order: keep side-effecting operations (port I/O,
            waits, loops, calls) in program order, as observable
            behaviour requires; pure computation still parallelizes.
        granularity: "statement" (default) emits one operation per
            statement with operator chaining folded into its delay;
            "operator" emits one operation per source-level operator,
            the granularity Hercules itself compiled to (larger graphs,
            more intra-statement parallelism).

    Returns:
        A validated :class:`~repro.seqgraph.model.Design` whose root is
        the root process's body graph.
    """
    program = parse(source)
    model = delay_model or DelayModel()
    design = Design(root or program.processes[0].name)
    for process in program.processes:
        lower_process(process, program, design, model,
                      preserve_io_order=preserve_io_order,
                      granularity=granularity)
    design.root = root or program.processes[0].name
    design.validate()
    return design
