"""Self-lint for the repo: AST contract rules + the runtime sanitizer.

``repro.devlint`` turns the invariants past PRs fixed by hand --
monotonic clocks, guarded tracers, the exception taxonomy, fcntl
append discipline, lock-copy hygiene -- into mechanical checks over
the repo's **own** source (``repro devlint src/``), and pairs them
with the opt-in lock-order sanitizer of :mod:`repro.sanitize`
(``REPRO_SANITIZE=1``).  See DESIGN.md section 15.
"""

from repro.devlint.engine import iter_python_files, lint_paths, lint_source
from repro.devlint.rules import (
    ALL_RULES,
    DECLARED_ROOTS,
    DECLARED_STDLIB_PASSTHROUGH,
    RULE_CATALOGUE,
    RULE_CODES,
)
from repro.devlint.sarif import (
    SANITIZER_RULES,
    TOOL_NAME,
    sarif_json,
    to_sarif,
)

__all__ = [
    "ALL_RULES",
    "DECLARED_ROOTS",
    "DECLARED_STDLIB_PASSTHROUGH",
    "RULE_CATALOGUE",
    "RULE_CODES",
    "SANITIZER_RULES",
    "TOOL_NAME",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "sarif_json",
    "to_sarif",
]
