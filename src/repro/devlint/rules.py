"""The ``DLxxx`` rule catalogue: invariants past PRs fixed by hand.

Each rule encodes one concurrency or contract bug this repo actually
shipped (the *citation* on every diagnostic names the incident), and
checks it mechanically over the repo's own AST.  Rules are pure
functions from a parsed module (plus a project-wide class table for
the exception taxonomy) to findings; the engine owns file walking,
waivers and severity mapping.

========  ==========================================================
``DL101``  ``time.time()`` used for durations/TTLs (PR-8 ``/stats``
           uptime skew -- wall clock steps under NTP/DST)
``DL102``  naive ``datetime.now()/utcnow()`` (same family)
``DL103``  tracer emission not under ``if tracer.enabled`` (PR-3's
           zero-overhead-when-disabled contract)
``DL104``  exception outside the ``ConstraintGraphError`` taxonomy
           or the declared passthrough list (PR-3 runtime audit,
           made static)
``DL105``  ``os.write`` append without flock + memoryview
           short-write loop (PR-7 ``ScheduleCache`` torn-line bug)
``DL106``  copy method of a lock-holding class that does not
           re-create the lock (PR-7 ``budget_graph`` clone rule)
``DL107``  bare ``except:`` (masks ``SystemExit``/``KeyboardInterrupt``)
``DL108``  swallowed ``KeyError``/``IndexError`` on kernel paths
           (PR-2 fallback-signal rule: raise
           ``IndexedKernelUnsupported``, don't mask)
``DL109``  ``lock.acquire()`` statement without try/finally release
``DL110``  ``time.sleep`` while holding a lock
========  ==========================================================
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: (code, name, summary, citation, severity) -- the devlint analogue of
#: ``repro.lint.sarif.RULE_CATALOGUE`` (kept separate: that catalogue
#: describes graph rules with paper citations, this one describes
#: source rules with incident citations).
RULE_CATALOGUE: Tuple[Tuple[str, str, str, str, str], ...] = (
    ("DL101", "wall-clock-duration",
     "time.time() used where a duration/TTL needs time.monotonic()",
     "PR-8 /stats uptime skew", "error"),
    ("DL102", "naive-datetime",
     "datetime.now()/utcnow() in library code",
     "PR-8 /stats uptime skew", "error"),
    ("DL103", "unguarded-tracer",
     "tracer emission call not under an `if tracer.enabled` guard",
     "PR-3 zero-overhead tracer contract", "error"),
    ("DL104", "exception-taxonomy",
     "exception outside the ConstraintGraphError taxonomy or the "
     "declared passthrough list",
     "PR-3 exception-contract audit", "error"),
    ("DL105", "append-discipline",
     "os.write append without flock guard and memoryview "
     "short-write loop",
     "PR-7 ScheduleCache atomic appends", "error"),
    ("DL106", "lock-copy",
     "copy method of a lock-holding class must re-create the lock",
     "PR-7 budget_graph clone rule", "error"),
    ("DL107", "bare-except",
     "bare `except:` masks SystemExit/KeyboardInterrupt",
     "PR-2 fallback-signal rule", "error"),
    ("DL108", "swallowed-lookup",
     "KeyError/IndexError silently swallowed on a kernel path",
     "PR-2 fallback-signal rule", "error"),
    ("DL109", "manual-acquire",
     "lock.acquire() statement without a try/finally release",
     "PR-7 service concurrency fixes", "error"),
    ("DL110", "sleep-under-lock",
     "time.sleep while holding a lock stalls every waiter",
     "PR-7 request coalescing windows", "error"),
)

RULE_CODES: Tuple[str, ...] = tuple(code for code, *_ in RULE_CATALOGUE)

#: Tracer methods that *record* (vs. query methods like ``counter``).
TRACER_EMIT_METHODS = frozenset(
    {"span", "event", "count", "add_time", "begin_span", "end_span"})

#: Stdlib exceptions ``src/repro`` may raise directly.  ``Exception``
#: and ``BaseException`` are deliberately absent: raising them is
#: always a taxonomy violation.
DECLARED_STDLIB_PASSTHROUGH = frozenset({
    "ValueError", "TypeError", "KeyError", "IndexError", "LookupError",
    "RuntimeError", "OSError", "IOError", "NotImplementedError",
    "ZeroDivisionError", "ArithmeticError", "OverflowError",
    "AttributeError", "UnicodeDecodeError", "AssertionError",
    "StopIteration", "SystemExit", "KeyboardInterrupt",
})

#: Repo-defined roots that may subclass ``Exception`` directly.  The
#: HDL frontend errors predate the taxonomy and are caught wholesale
#: at the CLI boundary; ``ServiceError`` is the HTTP status envelope
#: (its payload is a response, not a graph condition).  Everything
#: else must root in ``ConstraintGraphError`` or a stdlib passthrough.
DECLARED_ROOTS = frozenset({"ConstraintGraphError", "HdlError",
                            "ServiceError"})

#: Names a lock attribute may be constructed from (``threading``
#: primitives or the sanitizer factories of :mod:`repro.sanitize`).
_LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock", "Condition",
                                "make_lock", "make_rlock",
                                "make_condition"})

_COPY_METHODS = frozenset({"copy", "__copy__", "__deepcopy__", "clone"})


@dataclass
class Finding:
    """One raw rule hit; the engine turns these into Diagnostics."""

    code: str
    line: int
    message: str


@dataclass
class ModuleContext:
    """One parsed file plus the lookaside tables rules share."""

    filename: str
    tree: ast.Module
    source_lines: List[str]
    parents: Dict[int, ast.AST] = field(default_factory=dict)
    enabled_aliases: Set[str] = field(default_factory=set)
    is_kernel_path: bool = False

    @classmethod
    def parse(cls, source: str, filename: str) -> "ModuleContext":
        tree = ast.parse(source, filename=filename)
        ctx = cls(filename=filename, tree=tree,
                  source_lines=source.splitlines(),
                  is_kernel_path="/core/" in filename.replace("\\", "/"))
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                ctx.parents[id(child)] = node
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Attribute)
                    and node.value.attr == "enabled"):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        ctx.enabled_aliases.add(target.id)
        return ctx

    def ancestors(self, node: ast.AST) -> Iterator[Tuple[ast.AST, ast.AST]]:
        """(ancestor, the direct child on the path to *node*) pairs."""
        child: ast.AST = node
        parent = self.parents.get(id(child))
        while parent is not None:
            yield parent, child
            child = parent
            parent = self.parents.get(id(child))


@dataclass
class ProjectContext:
    """Cross-file state: every exception class definition in the run."""

    #: class name -> base expression names (``Name`` ids / ``Attribute``
    #: tails) as written at the def site.
    class_bases: Dict[str, List[str]] = field(default_factory=dict)

    def add_module(self, ctx: ModuleContext) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                bases = []
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        bases.append(base.id)
                    elif isinstance(base, ast.Attribute):
                        bases.append(base.attr)
                self.class_bases[node.name] = bases

    def roots_in_taxonomy(self, name: str,
                          _seen: Optional[Set[str]] = None) -> Optional[bool]:
        """True/False when resolvable; None when *name* is unknown."""
        if name in DECLARED_ROOTS or name in DECLARED_STDLIB_PASSTHROUGH:
            return True
        if _is_builtin_exception(name):
            # A builtin exception outside the passthrough list
            # (Exception, BaseException, GeneratorExit...) is never a
            # legal root.
            return False
        seen = _seen or set()
        if name in seen:
            return False
        bases = self.class_bases.get(name)
        if bases is None:
            return None
        seen.add(name)
        verdicts = [self.roots_in_taxonomy(base, seen) for base in bases]
        if any(v is True for v in verdicts):
            return True
        if any(v is None for v in verdicts):
            return None
        return False


def _is_builtin_exception(name: str) -> bool:
    obj = getattr(builtins, name, None)
    return isinstance(obj, type) and issubclass(obj, BaseException)


def _is_call_to(node: ast.AST, owner: str, attr: str) -> bool:
    """Matches ``owner.attr(...)`` exactly (``time.time()`` etc.)."""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == attr
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == owner)


def _contains_call(tree: ast.AST, attr: str) -> bool:
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and ((isinstance(node.func, ast.Attribute)
                      and node.func.attr == attr)
                     or (isinstance(node.func, ast.Name)
                         and node.func.id == attr))):
            return True
    return False


# ----------------------------------------------------------------------
# DL101 / DL102 -- clock discipline
# ----------------------------------------------------------------------

def rule_wall_clock(ctx: ModuleContext,
                    project: ProjectContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if _is_call_to(node, "time", "time"):
            yield Finding(
                "DL101", node.lineno,
                "time.time() steps under NTP/DST; durations, TTLs and "
                "uptime must use time.monotonic() or "
                "time.perf_counter()")


def rule_naive_datetime(ctx: ModuleContext,
                        project: ProjectContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in ("now", "utcnow", "today")):
            receiver = func.value
            name = (receiver.id if isinstance(receiver, ast.Name)
                    else receiver.attr if isinstance(receiver, ast.Attribute)
                    else None)
            if name in ("datetime", "date"):
                yield Finding(
                    "DL102", node.lineno,
                    f"datetime.{func.attr}() is wall-clock and "
                    f"timezone-naive; library code must not read it")


# ----------------------------------------------------------------------
# DL103 -- tracer guard idiom
# ----------------------------------------------------------------------

def _test_mentions_enabled(expr: ast.AST, aliases: Set[str]) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == "enabled":
            return True
        if isinstance(node, ast.Name) and node.id in aliases:
            return True
    return False


def _receiver_is_tracer(func: ast.Attribute) -> bool:
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return "tracer" in receiver.id
    if isinstance(receiver, ast.Attribute):
        return "tracer" in receiver.attr
    return False


def _is_guarded(ctx: ModuleContext, node: ast.AST) -> bool:
    for ancestor, child in ctx.ancestors(node):
        if isinstance(ancestor, ast.If):
            if (child in ancestor.body
                    and _test_mentions_enabled(ancestor.test,
                                               ctx.enabled_aliases)):
                return True
        elif isinstance(ancestor, ast.IfExp):
            if (child is ancestor.body
                    and _test_mentions_enabled(ancestor.test,
                                               ctx.enabled_aliases)):
                return True
    return False


def rule_unguarded_tracer(ctx: ModuleContext,
                          project: ProjectContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in TRACER_EMIT_METHODS
                and _receiver_is_tracer(node.func)):
            continue
        if not _is_guarded(ctx, node):
            yield Finding(
                "DL103", node.lineno,
                f"tracer.{node.func.attr}(...) on a library path must "
                f"sit under `if tracer.enabled:` (the NullTracer keeps "
                f"it *correct* unguarded, but not free -- PR 3 pinned "
                f"disabled-mode overhead at zero)")


# ----------------------------------------------------------------------
# DL104 -- exception taxonomy
# ----------------------------------------------------------------------

def rule_exception_taxonomy(ctx: ModuleContext,
                            project: ProjectContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            verdict = project.roots_in_taxonomy(node.name)
            if verdict is False and _defines_exception(node, project):
                yield Finding(
                    "DL104", node.lineno,
                    f"exception class {node.name} roots in "
                    f"Exception/BaseException directly; derive from "
                    f"ConstraintGraphError or a declared passthrough "
                    f"(see DESIGN.md section 15)")
        elif isinstance(node, ast.Raise) and node.exc is not None:
            name = None
            if isinstance(node.exc, ast.Call) and isinstance(
                    node.exc.func, ast.Name):
                name = node.exc.func.id
            elif isinstance(node.exc, ast.Name):
                name = node.exc.id
            if name is None or not name[:1].isupper():
                continue  # re-raise of a variable / dynamic raise
            if project.roots_in_taxonomy(name) is False:
                yield Finding(
                    "DL104", node.lineno,
                    f"raise {name}: not rooted in ConstraintGraphError "
                    f"and not on the declared passthrough list")


def _defines_exception(node: ast.ClassDef, project: ProjectContext) -> bool:
    """Whether the class transitively subclasses BaseException at all
    (plain classes whose bases we cannot resolve are not exceptions)."""
    todo = [b.id if isinstance(b, ast.Name) else b.attr
            for b in node.bases if isinstance(b, (ast.Name, ast.Attribute))]
    seen: Set[str] = set()
    while todo:
        name = todo.pop()
        if name in seen:
            continue
        seen.add(name)
        if _is_builtin_exception(name) or name in DECLARED_ROOTS:
            return True
        todo.extend(project.class_bases.get(name, []))
    return False


# ----------------------------------------------------------------------
# DL105 -- fcntl append discipline
# ----------------------------------------------------------------------

def rule_append_discipline(ctx: ModuleContext,
                           project: ProjectContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        writes = [call for call in ast.walk(node)
                  if _is_call_to(call, "os", "write")]
        if not writes:
            continue
        has_flock = _contains_call(node, "flock")
        has_view = _contains_call(node, "memoryview")
        has_loop = any(isinstance(n, ast.While) for n in ast.walk(node))
        if has_flock and has_view and has_loop:
            continue
        missing = [label for ok, label in (
            (has_flock, "fcntl.flock guard"),
            (has_view, "memoryview"),
            (has_loop, "short-write while loop"),
        ) if not ok]
        for call in writes:
            yield Finding(
                "DL105", call.lineno,
                f"os.write append in {node.name}() lacks the atomic-"
                f"append discipline (missing: {', '.join(missing)}); "
                f"concurrent writers would interleave torn lines")


# ----------------------------------------------------------------------
# DL106 -- lock-copy hazard
# ----------------------------------------------------------------------

def _lock_attrs_of(cls: ast.ClassDef) -> Set[str]:
    attrs: Set[str] = set()
    for method in cls.body:
        if not (isinstance(method, ast.FunctionDef)
                and method.name == "__init__"):
            continue
        for node in ast.walk(method):
            if (isinstance(node, ast.Assign)
                    and _is_lock_constructor(node.value)):
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        attrs.add(target.attr)
    return attrs


def _is_lock_constructor(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = (func.attr if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None)
    return name in _LOCK_CONSTRUCTORS


def rule_lock_copy(ctx: ModuleContext,
                   project: ProjectContext) -> Iterator[Finding]:
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        lock_attrs = _lock_attrs_of(cls)
        if not lock_attrs:
            continue
        for method in cls.body:
            if not (isinstance(method, ast.FunctionDef)
                    and method.name in _COPY_METHODS):
                continue
            recreated = {
                node.targets[0].attr
                for node in ast.walk(method)
                if isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and _is_lock_constructor(node.value)}
            stale = sorted(lock_attrs - recreated)
            if stale:
                yield Finding(
                    "DL106", method.lineno,
                    f"{cls.name}.{method.name}() does not re-create "
                    f"lock attribute(s) {', '.join(stale)}; a copied "
                    f"lock shares (or pickles) the original's state")


# ----------------------------------------------------------------------
# DL107 / DL108 -- exception handling hygiene
# ----------------------------------------------------------------------

_LOOKUP_ERRORS = frozenset({"KeyError", "IndexError"})


def rule_bare_except(ctx: ModuleContext,
                     project: ProjectContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield Finding(
                "DL107", node.lineno,
                "bare `except:` also catches SystemExit and "
                "KeyboardInterrupt; name the exceptions")


def _swallows(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Return) and (
                stmt.value is None
                or (isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is None)):
            continue
        return False
    return True


def rule_swallowed_lookup(ctx: ModuleContext,
                          project: ProjectContext) -> Iterator[Finding]:
    if not ctx.is_kernel_path:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler) or node.type is None:
            continue
        caught = []
        types = (node.type.elts if isinstance(node.type, ast.Tuple)
                 else [node.type])
        for expr in types:
            if isinstance(expr, ast.Name):
                caught.append(expr.id)
        if (caught and all(c in _LOOKUP_ERRORS for c in caught)
                and _swallows(node.body)):
            yield Finding(
                "DL108", node.lineno,
                f"except {'/'.join(caught)} silently swallowed on a "
                f"kernel path; raise IndexedKernelUnsupported (or "
                f"re-raise) so the fallback gate sees the signal")


# ----------------------------------------------------------------------
# DL109 / DL110 -- lock usage hygiene
# ----------------------------------------------------------------------

def rule_manual_acquire(ctx: ModuleContext,
                        project: ProjectContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        # Only statement-position acquires (unconditional): trylock
        # results feeding an `if` are a different protocol.
        if not (isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr == "acquire"):
            continue
        if _released_in_finally(ctx, node):
            continue
        yield Finding(
            "DL109", node.lineno,
            "lock.acquire() without a try/finally release leaks the "
            "lock on any exception; use `with lock:` or pair with "
            "finally: lock.release()")


def _released_in_finally(ctx: ModuleContext, stmt: ast.Expr) -> bool:
    for ancestor, _child in ctx.ancestors(stmt):
        if isinstance(ancestor, ast.Try) and any(
                _contains_call(final, "release")
                for final in ancestor.finalbody):
            return True
        # `lock.acquire()` immediately followed by try/finally release.
        body = getattr(ancestor, "body", None)
        if isinstance(body, list) and stmt in body:
            index = body.index(stmt)
            if index + 1 < len(body):
                nxt = body[index + 1]
                if isinstance(nxt, ast.Try) and any(
                        _contains_call(final, "release")
                        for final in nxt.finalbody):
                    return True
            return False
    return False


_LOCKISH = ("lock", "cond", "mutex")


def _names_a_lock(expr: ast.AST) -> bool:
    name = (expr.id if isinstance(expr, ast.Name)
            else expr.attr if isinstance(expr, ast.Attribute) else "")
    lowered = name.lower()
    return any(token in lowered for token in _LOCKISH)


def rule_sleep_under_lock(ctx: ModuleContext,
                          project: ProjectContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not _is_call_to(node, "time", "sleep"):
            continue
        for ancestor, _child in ctx.ancestors(node):
            if isinstance(ancestor, ast.With) and any(
                    _names_a_lock(item.context_expr)
                    for item in ancestor.items):
                yield Finding(
                    "DL110", node.lineno,
                    "time.sleep while holding a lock stalls every "
                    "waiter for the full sleep; sleep outside the "
                    "critical section or use Condition.wait")
                break


ALL_RULES = (
    rule_wall_clock,
    rule_naive_datetime,
    rule_unguarded_tracer,
    rule_exception_taxonomy,
    rule_append_discipline,
    rule_lock_copy,
    rule_bare_except,
    rule_swallowed_lookup,
    rule_manual_acquire,
    rule_sleep_under_lock,
)
