"""SARIF 2.1.0 rendering of devlint reports.

Same trimmed-schema subset as :mod:`repro.lint.sarif` (the bundled
``sarif_schema.json`` validates both tools' output), but a separate
driver: the graph linter describes paper-theorem rules, this one
describes source-contract rules with incident citations.  Findings
from the runtime lock-order sanitizer are folded into the same run as
``SANLOCK`` / ``SANIO`` results so one SARIF artifact carries the
whole concurrency story.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.sarif import SARIF_SCHEMA_URI, SARIF_VERSION, load_trimmed_schema
from repro.devlint.rules import RULE_CATALOGUE

__all__ = ["TOOL_NAME", "SANITIZER_RULES", "to_sarif", "sarif_json",
           "load_trimmed_schema"]

TOOL_NAME = "repro-devlint"

#: The two runtime-sanitizer finding kinds, appended to the AST rule
#: catalogue so sanitizer results resolve to descriptors too.
SANITIZER_RULES = (
    ("SANLOCK", "lock-order-cycle",
     "a cycle in the global lock acquisition-order graph "
     "(potential deadlock)",
     "REPRO_SANITIZE lock-order sanitizer", "error"),
    ("SANIO", "blocking-io-under-lock",
     "blocking I/O (fsync/flock/socket/sleep) while holding an "
     "in-process lock not declared io_ok",
     "REPRO_SANITIZE lock-order sanitizer", "error"),
)

_FULL_CATALOGUE = tuple(RULE_CATALOGUE) + SANITIZER_RULES


def _rule_descriptors() -> List[Dict[str, Any]]:
    descriptors = []
    for code, name, summary, citation, severity in _FULL_CATALOGUE:
        level = "note" if severity == "info" else severity
        descriptors.append({
            "id": code,
            "name": name,
            "shortDescription": {"text": summary},
            "help": {"text": f"Enforces: {citation}. "
                             f"See DESIGN.md section 15."},
            "defaultConfiguration": {"level": level},
        })
    return descriptors


def _rule_index(code: str) -> int:
    for position, (rule_code, *_rest) in enumerate(_FULL_CATALOGUE):
        if rule_code == code:
            return position
    return -1


def _result(diagnostic: Diagnostic) -> Dict[str, Any]:
    span = diagnostic.span
    result: Dict[str, Any] = {
        "ruleId": diagnostic.code,
        "ruleIndex": _rule_index(diagnostic.code),
        "level": diagnostic.severity.sarif_level,
        "message": {"text": diagnostic.message},
        "properties": {"citation": diagnostic.citation},
    }
    if span.file is not None:
        physical: Dict[str, Any] = {
            "artifactLocation": {"uri": span.file}}
        if span.line is not None:
            physical["region"] = {"startLine": span.line}
        result["locations"] = [{"physicalLocation": physical}]
    return result


def to_sarif(report: LintReport, *,
             sanitizer: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The SARIF log for one devlint run.

    Args:
        report: the AST-rule findings.
        sanitizer: an optional :func:`repro.sanitize.report` dict whose
            cycles / io_findings are appended as SANLOCK / SANIO
            results (no physical location -- they are dynamic-order
            facts, the witness call chains ride in the message).
    """
    results = [_result(diagnostic) for diagnostic in report.diagnostics]
    if sanitizer and sanitizer.get("enabled"):
        for cycle in sanitizer.get("cycles", []):
            results.append({
                "ruleId": "SANLOCK",
                "ruleIndex": _rule_index("SANLOCK"),
                "level": "error",
                "message": {"text": f"lock acquisition-order cycle "
                                    f"{cycle['path']} (witnesses: "
                                    f"{'; '.join(cycle['witnesses'])})"},
            })
        for finding in sanitizer.get("io_findings", []):
            results.append({
                "ruleId": "SANIO",
                "ruleIndex": _rule_index("SANIO"),
                "level": "error",
                "message": {"text": f"blocking {finding['kind']} "
                                    f"({finding['detail']}) while "
                                    f"holding {finding['locks']} at "
                                    f"{finding['witness']}"},
            })
    invocation: Dict[str, Any] = {"executionSuccessful": not any(
        result["level"] == "error" for result in results)}
    if report.notes:
        invocation["toolExecutionNotifications"] = [
            {"level": "note", "message": {"text": note}}
            for note in report.notes]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": TOOL_NAME,
                "version": "1.0.0",
                "informationUri":
                    "https://github.com/example/repro-scheduling",
                "rules": _rule_descriptors(),
            }},
            "columnKind": "unicodeCodePoints",
            "invocations": [invocation],
            "results": results,
        }],
    }


def sarif_json(report: LintReport, *,
               sanitizer: Optional[Dict[str, Any]] = None,
               indent: Optional[int] = 2) -> str:
    return json.dumps(to_sarif(report, sanitizer=sanitizer),
                      indent=indent, sort_keys=False)
