"""The devlint driver: file walking, waivers, report assembly.

Reuses :mod:`repro.lint.diagnostics` wholesale -- a devlint finding is
an ordinary :class:`~repro.lint.diagnostics.Diagnostic` whose span is
a source ``file:line`` instead of graph coordinates, so the text/JSON
renderings and the severity-driven exit code come for free.

Waivers: a line carrying ``# devlint: disable=DL101`` (comma-separated
codes, on the flagged line) suppresses the named rule there.  Every
suppression is counted in the report's notes -- silent waivers must
never read as "clean" -- and the acceptance bar for this repo's own
tree is *zero* waivers on error-severity rules.
"""

from __future__ import annotations

import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.diagnostics import Diagnostic, LintReport, Severity, Span
from repro.devlint.rules import (
    ALL_RULES,
    ModuleContext,
    ProjectContext,
    RULE_CATALOGUE,
)

_WAIVER = re.compile(r"#\s*devlint:\s*disable=([A-Z0-9, ]+)")

_SEVERITY_OF: Dict[str, Severity] = {
    code: Severity(severity)
    for code, _name, _summary, _citation, severity in RULE_CATALOGUE}

_CITATION_OF: Dict[str, str] = {
    code: citation
    for code, _name, _summary, citation, _severity in RULE_CATALOGUE}


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Every ``.py`` file under *paths* (files pass through), sorted."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs
                             if d != "__pycache__" and not d.startswith("."))
            found.extend(os.path.join(root, name)
                         for name in sorted(files) if name.endswith(".py"))
    return sorted(set(found))


def _waived_codes(line: str) -> List[str]:
    match = _WAIVER.search(line)
    if not match:
        return []
    return [code.strip() for code in match.group(1).split(",")
            if code.strip()]


def _lint_module(ctx: ModuleContext, project: ProjectContext,
                 select: Optional[Sequence[str]] = None,
                 ) -> Tuple[List[Diagnostic], int]:
    diagnostics: List[Diagnostic] = []
    waived = 0
    for rule in ALL_RULES:
        for finding in rule(ctx, project):
            if select and finding.code not in select:
                continue
            line_text = ""
            if 0 < finding.line <= len(ctx.source_lines):
                line_text = ctx.source_lines[finding.line - 1]
            if finding.code in _waived_codes(line_text):
                waived += 1
                continue
            diagnostics.append(Diagnostic(
                code=finding.code,
                severity=_SEVERITY_OF[finding.code],
                message=finding.message,
                citation=_CITATION_OF[finding.code],
                span=Span(file=ctx.filename, line=finding.line)))
    diagnostics.sort(key=lambda d: (d.span.file or "", d.span.line or 0,
                                    d.code))
    return diagnostics, waived


def lint_source(source: str, filename: str = "<string>", *,
                select: Optional[Sequence[str]] = None,
                project: Optional[ProjectContext] = None) -> LintReport:
    """Lint one source string (the unit-test / fixture entry point)."""
    ctx = ModuleContext.parse(source, filename)
    if project is None:
        project = ProjectContext()
    project.add_module(ctx)
    diagnostics, waived = _lint_module(ctx, project, select)
    notes = ()
    if waived:
        notes = (f"{waived} finding(s) waived by devlint:disable "
                 f"comments",)
    return LintReport(tuple(diagnostics), notes)


def lint_paths(paths: Sequence[str], *,
               select: Optional[Sequence[str]] = None) -> LintReport:
    """Lint every Python file under *paths* with a shared class table.

    Two passes: the first builds the project-wide exception class
    hierarchy (so ``raise PoolSaturatedError`` in one file resolves
    through its definition in another), the second runs the rules.
    Unparseable files surface as a note, never a crash -- devlint must
    not take CI down on a syntax error some *other* gate owns.
    """
    project = ProjectContext()
    modules: List[ModuleContext] = []
    notes: List[str] = []
    for filename in iter_python_files(paths):
        try:
            with open(filename, encoding="utf-8") as handle:
                source = handle.read()
            ctx = ModuleContext.parse(source, filename)
        except (OSError, SyntaxError, UnicodeDecodeError) as error:
            notes.append(f"skipped {filename}: {error}")
            continue
        project.add_module(ctx)
        modules.append(ctx)

    diagnostics: List[Diagnostic] = []
    waived_total = 0
    for ctx in modules:
        found, waived = _lint_module(ctx, project, select)
        diagnostics.extend(found)
        waived_total += waived
    notes.append(f"{len(modules)} file(s) linted")
    if waived_total:
        notes.append(f"{waived_total} finding(s) waived by "
                     f"devlint:disable comments")
    return LintReport(tuple(diagnostics), tuple(notes))
