"""Resource design-space exploration over the Hebe flow.

Hebe's stated objective is "to explore design trade-offs in meeting the
timing and resource constraints" (Section VII).  This module sweeps
resource allocations, runs the full synthesize flow on each (bind,
resolve conflicts, relatively schedule, generate control), and reports
the area/latency points with their Pareto frontier.

Latency of an unbounded design is summarized by its *best-case*
completion -- the root sink's start with every anchor delay at 0 --
which relative scheduling makes profile-wise optimal, so the ordering
between allocations is profile-independent for the serializations the
allocation forces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.binding.conflict import ConflictResolutionError
from repro.binding.resources import ResourceLibrary, ResourceType
from repro.core.exceptions import ConstraintGraphError
from repro.seqgraph.model import Design


@dataclass(frozen=True)
class DesignPoint:
    """One synthesized allocation."""

    counts: Tuple[Tuple[str, int], ...]  # (class, instances), sorted
    datapath_area: float
    control_area: float
    best_case_latency: int
    feasible: bool

    @property
    def total_area(self) -> float:
        return self.datapath_area + self.control_area

    def __str__(self) -> str:
        alloc = ", ".join(f"{c}:{n}" for c, n in self.counts)
        if not self.feasible:
            return f"[{alloc}] infeasible"
        return (f"[{alloc}] area {self.total_area:.1f} "
                f"(datapath {self.datapath_area:.1f} + control "
                f"{self.control_area:.1f}), latency {self.best_case_latency}")


def explore_resource_space(design: Design,
                           class_counts: Mapping[str, Sequence[int]],
                           areas: Optional[Mapping[str, float]] = None,
                           exact_conflicts: bool = False,
                           control_style: str = "shift-register"
                           ) -> List[DesignPoint]:
    """Synthesize *design* under every allocation in the grid.

    Args:
        design: the input design.
        class_counts: per resource class, the instance counts to try
            (the grid is their cartesian product).
        areas: per-instance area by class (default 1.0 each).
        exact_conflicts: use branch-and-bound conflict resolution.
        control_style: control style for the cost column.

    Returns:
        One :class:`DesignPoint` per allocation; allocations whose
        conflicts cannot be serialized under the timing constraints are
        marked infeasible.
    """
    from repro.flows import synthesize

    areas = dict(areas or {})
    classes = sorted(class_counts)
    points: List[DesignPoint] = []
    for combo in itertools.product(*(class_counts[c] for c in classes)):
        counts = tuple(zip(classes, combo))
        library = ResourceLibrary([
            ResourceType(cls, count=n, area=areas.get(cls, 1.0))
            for cls, n in counts])
        try:
            result = synthesize(design, library,
                                exact_conflicts=exact_conflicts,
                                control_style=control_style)
        except (ConflictResolutionError, ConstraintGraphError):
            points.append(DesignPoint(counts, 0.0, 0.0, 0, feasible=False))
            continue
        root_schedule = result.schedule.schedules[design.root]
        latency = root_schedule.start_times({})[root_schedule.graph.sink]
        points.append(DesignPoint(
            counts=counts,
            datapath_area=result.total_area(),
            control_area=result.control_cost().total(),
            best_case_latency=latency,
            feasible=True))
    return points


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """The non-dominated feasible points (minimize area and latency)."""
    feasible = [p for p in points if p.feasible]
    front: List[DesignPoint] = []
    for candidate in feasible:
        dominated = any(
            (other.total_area <= candidate.total_area
             and other.best_case_latency <= candidate.best_case_latency
             and (other.total_area < candidate.total_area
                  or other.best_case_latency < candidate.best_case_latency))
            for other in feasible)
        if not dominated:
            front.append(candidate)
    return sorted(front, key=lambda p: (p.best_case_latency, p.total_area))


def format_exploration(points: Sequence[DesignPoint]) -> str:
    """Render the sweep with the Pareto points marked."""
    front = set(id(p) for p in pareto_front(points))
    lines = [f"{'allocation':>24}  {'area':>8}  {'latency':>8}  pareto"]
    for point in points:
        alloc = ",".join(f"{c}:{n}" for c, n in point.counts)
        if not point.feasible:
            lines.append(f"{alloc:>24}  {'-':>8}  {'-':>8}  infeasible")
            continue
        marker = "  *" if id(point) in front else ""
        lines.append(f"{alloc:>24}  {point.total_area:>8.1f}  "
                     f"{point.best_case_latency:>8}{marker}")
    return "\n".join(lines)
