"""Experiment drivers regenerating every table and figure of the paper.

* :mod:`repro.analysis.paper_data` -- the published Table III / Table IV
  numbers, kept as data for side-by-side comparison;
* :mod:`repro.analysis.paper_figures` -- constructors for the paper's
  example graphs (Figs. 1-3, the Fig. 10 scheduling example --
  reconstructed exactly from its published offset trace -- and the
  Fig. 12 control example);
* :mod:`repro.analysis.tables` -- Table II / III / IV row computation
  and ASCII rendering;
* :mod:`repro.analysis.figures` -- the Fig. 10 iteration trace and the
  Fig. 14 gcd simulation drivers.
"""

from repro.analysis.paper_data import PAPER_TABLE3, PAPER_TABLE4
from repro.analysis.paper_figures import (
    fig1_graph,
    fig2_graph,
    fig3a_graph,
    fig3b_graph,
    fig10_graph,
    fig12_graph,
)
from repro.analysis.tables import (
    format_table2,
    format_table3,
    format_table4,
    table2_rows,
    table3_rows,
    table4_rows,
)
from repro.analysis.figures import (
    fig10_trace,
    fig14_simulation,
    format_fig10,
)
from repro.analysis.montecarlo import (
    LatencyStats,
    MonteCarloResult,
    compare_with_budget,
    monte_carlo,
)
from repro.analysis.sensitivity import (
    CriticalityReport,
    criticality,
    latency_sensitivity,
)
from repro.analysis.diff import ScheduleDiff, diff_schedules

__all__ = [
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "fig1_graph",
    "fig2_graph",
    "fig3a_graph",
    "fig3b_graph",
    "fig10_graph",
    "fig12_graph",
    "format_table2",
    "format_table3",
    "format_table4",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "fig10_trace",
    "fig14_simulation",
    "format_fig10",
    "LatencyStats",
    "MonteCarloResult",
    "compare_with_budget",
    "monte_carlo",
    "CriticalityReport",
    "criticality",
    "latency_sensitivity",
    "ScheduleDiff",
    "diff_schedules",
]
