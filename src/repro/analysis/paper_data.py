"""The paper's published evaluation numbers (Tables III and IV).

Kept as plain data so the benchmark harness can print paper-versus-
measured rows side by side.  Design keys follow our registry names;
"DAIO phase decoder" is ``daio_decoder`` and so on.
"""

from __future__ import annotations

from typing import Dict, NamedTuple


class Table3Row(NamedTuple):
    """One row of Table III."""

    anchors: int        # |A|
    vertices: int       # |V|
    full_total: int     # sum of |A(v)|
    full_average: float
    min_total: int      # sum of |IR(v)|
    min_average: float


class Table4Row(NamedTuple):
    """One row of Table IV."""

    full_max: int       # max sigma^max, full anchor sets
    full_sum_max: int   # sum of sigma^max, full anchor sets
    min_max: int        # max sigma^max, minimum anchor sets
    min_sum_max: int    # sum of sigma^max, minimum anchor sets


#: Table III: comparison between full and minimum anchor sets.
PAPER_TABLE3: Dict[str, Table3Row] = {
    "traffic": Table3Row(3, 8, 8, 1.00, 6, 0.75),
    "length": Table3Row(5, 12, 15, 1.25, 9, 0.75),
    "gcd": Table3Row(16, 41, 51, 1.24, 32, 0.78),
    "frisc": Table3Row(34, 188, 177, 0.94, 161, 0.86),
    "daio_decoder": Table3Row(14, 44, 45, 1.02, 38, 0.86),
    "daio_receiver": Table3Row(30, 67, 76, 1.13, 49, 0.73),
    "dct_a": Table3Row(41, 98, 105, 1.07, 87, 0.89),
    "dct_b": Table3Row(49, 114, 137, 1.20, 108, 0.95),
}

#: Table IV: maximum offsets and their sums.
PAPER_TABLE4: Dict[str, Table4Row] = {
    "traffic": Table4Row(1, 1, 1, 1),
    "length": Table4Row(2, 5, 1, 2),
    "gcd": Table4Row(4, 15, 2, 7),
    "frisc": Table4Row(12, 112, 12, 107),
    "daio_decoder": Table4Row(2, 10, 2, 9),
    "daio_receiver": Table4Row(3, 16, 1, 8),
    "dct_a": Table4Row(2, 24, 1, 16),
    "dct_b": Table4Row(2, 19, 1, 16),
}

#: Human-readable design titles, in the paper's row order.
DESIGN_TITLES: Dict[str, str] = {
    "traffic": "traffic",
    "length": "length",
    "gcd": "gcd",
    "frisc": "frisc",
    "daio_decoder": "DAIO phase decoder",
    "daio_receiver": "DAIO receiver",
    "dct_a": "DCT phase A",
    "dct_b": "DCT phase B",
}
