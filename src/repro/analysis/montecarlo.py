"""Monte Carlo latency analysis of relative schedules.

A relative schedule is one static artifact valid for every run-time
delay profile.  This module samples profiles from per-anchor delay
distributions and reports the induced distribution of start times and
latency -- the "what will this interface actually feel like" question a
designer asks once the schedule exists.  Because the minimum relative
schedule is per-profile ASAP (Theorem 3), these numbers are lower
bounds for *any* correct implementation, which the worst-case-budget
comparison bench exploits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.schedule import RelativeSchedule

#: A per-anchor delay sampler: an int (constant), an inclusive (lo, hi)
#: range, an explicit list of outcomes, or a callable of the RNG.
DelaySpec = Union[int, Sequence[int], Callable[[random.Random], int]]


@dataclass
class LatencyStats:
    """Summary statistics of a sampled distribution (integer cycles)."""

    samples: List[int]

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def minimum(self) -> int:
        return min(self.samples)

    @property
    def maximum(self) -> int:
        return max(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    def percentile(self, q: float) -> int:
        """The q-th percentile (0 <= q <= 100), nearest-rank."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1))))
        return ordered[index]

    def __repr__(self) -> str:
        return (f"LatencyStats(n={self.count}, min={self.minimum}, "
                f"mean={self.mean:.1f}, p95={self.percentile(95)}, "
                f"max={self.maximum})")


@dataclass
class MonteCarloResult:
    """Outcome of a Monte Carlo run over one schedule."""

    latency: LatencyStats
    start_times: Dict[str, LatencyStats]
    profiles_sampled: int

    def format_report(self, vertices: Optional[Sequence[str]] = None) -> str:
        """Tabular latency/start-time summary."""
        lines = [f"latency over {self.profiles_sampled} profiles: "
                 f"{self.latency!r}",
                 f"{'vertex':>12}  {'min':>5}  {'mean':>7}  {'p95':>5}  "
                 f"{'max':>5}"]
        names = vertices if vertices is not None else sorted(self.start_times)
        for name in names:
            stats = self.start_times[name]
            lines.append(f"{name:>12}  {stats.minimum:>5}  "
                         f"{stats.mean:>7.1f}  {stats.percentile(95):>5}  "
                         f"{stats.maximum:>5}")
        return "\n".join(lines)


def _sample(spec: DelaySpec, rng: random.Random) -> int:
    if callable(spec):
        value = spec(rng)
    elif isinstance(spec, int):
        value = spec
    else:
        choices = list(spec)
        if len(choices) == 2 and all(isinstance(c, int) for c in choices) \
                and choices[0] <= choices[1]:
            value = rng.randint(choices[0], choices[1])
        else:
            value = rng.choice(choices)
    if value < 0:
        raise ValueError(f"sampled a negative delay {value}")
    return value


def monte_carlo(schedule: RelativeSchedule,
                delay_specs: Mapping[str, DelaySpec],
                samples: int = 1000,
                seed: int = 0) -> MonteCarloResult:
    """Sample start-time distributions under random delay profiles.

    Args:
        schedule: a (minimum) relative schedule.
        delay_specs: per-anchor delay distribution; anchors missing from
            the map run in 0 cycles.  A two-int sequence ``(lo, hi)`` is
            a uniform inclusive range; longer sequences are choice sets.
        samples: number of profiles to draw.
        seed: RNG seed (deterministic by default).
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    rng = random.Random(seed)
    anchors = [a for a in schedule.graph.anchors]
    latencies: List[int] = []
    per_vertex: Dict[str, List[int]] = {v: [] for v in schedule.graph.vertex_names()}
    sink = schedule.graph.sink
    for _ in range(samples):
        profile = {a: _sample(delay_specs[a], rng)
                   for a in anchors if a in delay_specs}
        start = schedule.start_times(profile)
        latencies.append(start[sink])
        for vertex, time in start.items():
            per_vertex[vertex].append(time)
    return MonteCarloResult(
        latency=LatencyStats(latencies),
        start_times={v: LatencyStats(times) for v, times in per_vertex.items()},
        profiles_sampled=samples,
    )


def compare_with_budget(schedule: RelativeSchedule,
                        delay_specs: Mapping[str, DelaySpec],
                        budget: int,
                        samples: int = 1000,
                        seed: int = 0) -> Dict[str, float]:
    """Monte Carlo comparison against a static worst-case budget.

    Returns a summary dict: the budget's miss rate (profiles where an
    actual delay exceeds it -- the static schedule would be *unsafe*),
    the mean relative latency, the static latency, and the mean wasted
    cycles when the budget is safe.
    """
    from repro.baselines.worst_case import worst_case_schedule

    rng = random.Random(seed)
    anchors = [a for a in schedule.graph.anchors]
    sink = schedule.graph.sink
    misses = 0
    total_relative = 0
    wasted: List[int] = []
    static_latency: Optional[int] = None
    for _ in range(samples):
        profile = {a: _sample(delay_specs[a], rng)
                   for a in anchors if a in delay_specs}
        relative_latency = schedule.start_times(profile)[sink]
        total_relative += relative_latency
        outcome = worst_case_schedule(schedule.graph, budget, profile)
        static_latency = outcome.latency
        if not outcome.safe:
            misses += 1
        else:
            wasted.append(outcome.latency - relative_latency)
    return {
        "budget": float(budget),
        "miss_rate": misses / samples,
        "mean_relative_latency": total_relative / samples,
        "static_latency": float(static_latency if static_latency is not None else 0),
        "mean_wasted_when_safe": (sum(wasted) / len(wasted)) if wasted else 0.0,
    }
