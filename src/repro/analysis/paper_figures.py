"""Constructors for the paper's example constraint graphs.

Each function rebuilds one published figure.  Fig. 2's offsets are
printed as Table II; Fig. 10's graph is *reconstructed exactly* from the
published iteration trace -- scheduling it reproduces every compute and
readjust value in the figure's table (the regression tests pin all of
them).
"""

from __future__ import annotations

from repro.core.delay import UNBOUNDED
from repro.core.graph import ConstraintGraph


def fig1_graph() -> ConstraintGraph:
    """Fig. 1: a small constraint graph with one minimum and one maximum
    timing constraint (all delays bounded)."""
    g = ConstraintGraph(source="v0", sink="v5")
    g.add_operation("v1", 2)
    g.add_operation("v2", 1)
    g.add_operation("v3", 3)
    g.add_operation("v4", 1)
    g.add_sequencing_edges([("v0", "v1"), ("v0", "v2"), ("v1", "v3"),
                            ("v2", "v3"), ("v3", "v4"), ("v4", "v5")])
    g.add_min_constraint("v0", "v3", 2)
    g.add_max_constraint("v1", "v4", 5)
    return g


def fig2_graph() -> ConstraintGraph:
    """Fig. 2: the running example whose anchor sets and minimum offsets
    are listed in Table II (anchors ``v0`` and ``a``)."""
    g = ConstraintGraph(source="v0", sink="v4")
    g.add_operation("a", UNBOUNDED)
    g.add_operation("v1", 2)
    g.add_operation("v2", 1)
    g.add_operation("v3", 5)
    g.add_sequencing_edges([("v0", "a"), ("v0", "v1"), ("v1", "v2"),
                            ("a", "v3"), ("v2", "v3"), ("v3", "v4")])
    g.add_min_constraint("v0", "v3", l=3)
    g.add_max_constraint("v1", "v2", u=4)
    return g


def fig3a_graph() -> ConstraintGraph:
    """Fig. 3(a): an ill-posed maximum constraint spanning an anchor on
    the path between its endpoints -- not serializable."""
    g = ConstraintGraph(source="v0", sink="vN")
    g.add_operation("vi", 1)
    g.add_operation("anchor", UNBOUNDED)
    g.add_operation("vj", 1)
    g.add_sequencing_edges([("v0", "vi"), ("vi", "anchor"),
                            ("anchor", "vj"), ("vj", "vN")])
    g.add_max_constraint("vi", "vj", u=5)
    return g


def fig3b_graph() -> ConstraintGraph:
    """Fig. 3(b): endpoints hanging off different anchors -- ill-posed,
    but fixable by the Fig. 3(c) serialization edge ``a2 -> vi``."""
    g = ConstraintGraph(source="v0", sink="vN")
    g.add_operation("a1", UNBOUNDED)
    g.add_operation("a2", UNBOUNDED)
    g.add_operation("vi", 1)
    g.add_operation("vj", 1)
    g.add_sequencing_edges([("v0", "a1"), ("v0", "a2"), ("a1", "vi"),
                            ("a2", "vj"), ("vi", "vN"), ("vj", "vN")])
    g.add_max_constraint("vi", "vj", u=5)
    return g


def fig10_graph() -> ConstraintGraph:
    """Fig. 10: the iterative-incremental-scheduling example.

    The figure itself shows only the offset trace; the graph below was
    reconstructed so that scheduling reproduces the published table
    *exactly* -- all three iterations, including which offsets each
    readjustment moves:

    * anchors ``v0`` and ``a``;
    * forward structure: ``v0 -> a`` (with a parallel minimum constraint
      of 1 cycle), ``a -> v1`` (delta(a)), ``v1 -> v2`` (delta(v1)=1),
      minimum constraints ``v1 -> v3`` (4) and ``v1 -> v4`` (2), plus
      ``v0 -> v4`` (4) and ``v0 -> v6`` (8); sequencing ``v4 -> v5``
      (delta(v4)=1) and ``{v2, v3, v5, v6} -> v7`` with delays 3, 1, 2,
      and 4;
    * three maximum timing constraints (the dashed backward edges):
      ``v2..v3 <= 1``, ``a..v6 <= 6``, and ``v5..v6 <= 2``.
    """
    g = ConstraintGraph(source="v0", sink="v7")
    g.add_operation("a", UNBOUNDED)
    g.add_operation("v1", 1)
    g.add_operation("v2", 3)
    g.add_operation("v3", 1)
    g.add_operation("v4", 1)
    g.add_operation("v5", 2)
    g.add_operation("v6", 4)
    g.add_sequencing_edges([
        ("v0", "a"), ("v0", "v6"),
        ("a", "v1"), ("v1", "v2"), ("v4", "v5"),
        ("v2", "v7"), ("v3", "v7"), ("v5", "v7"), ("v6", "v7"),
    ])
    g.add_min_constraint("v0", "a", 1)
    g.add_min_constraint("v1", "v3", 4)
    g.add_min_constraint("v1", "v4", 2)
    g.add_min_constraint("v0", "v4", 4)
    g.add_min_constraint("v0", "v6", 8)
    g.add_max_constraint("v2", "v3", 1)   # backward edge (v3, v2), -1
    g.add_max_constraint("a", "v6", 6)    # backward edge (v6, a), -6
    g.add_max_constraint("v5", "v6", 2)   # backward edge (v6, v5), -2
    return g


def fig12_graph() -> ConstraintGraph:
    """Fig. 12: operation ``v`` enabled 2 cycles after anchor ``a`` and
    3 cycles after anchor ``b`` -- the control-generation example."""
    g = ConstraintGraph(source="s", sink="t")
    g.add_operation("a", UNBOUNDED)
    g.add_operation("b", UNBOUNDED)
    g.add_operation("pad_a", 2)
    g.add_operation("pad_b", 3)
    g.add_operation("v", 1)
    g.add_sequencing_edges([("s", "a"), ("s", "b"), ("a", "pad_a"),
                            ("b", "pad_b"), ("pad_a", "v"), ("pad_b", "v"),
                            ("v", "t")])
    return g
