"""Markdown synthesis reports for whole designs.

Collects everything a designer wants after a synthesis run -- hierarchy
summary, per-graph schedules with anchor sets, constraint slack,
mobility, control costs across all four styles, and the serialization
log -- into one markdown document (string or file).  The CLI's
``report`` command prints the terse version; this module is the full
artifact for design reviews.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.constraints import constraint_slack
from repro.core.delay import is_unbounded
from repro.seqgraph.hierarchy import HierarchicalSchedule


def design_report(result: HierarchicalSchedule,
                  title: Optional[str] = None) -> str:
    """Render a markdown report for a scheduled design."""
    design = result.design
    lines: List[str] = [f"# Synthesis report: {title or design.name}", ""]

    lines.append("## Hierarchy")
    lines.append("")
    lines.append("| graph | vertices | anchors | latency |")
    lines.append("|---|---|---|---|")
    for name in design.hierarchy_order():
        graph = result.constraint_graphs[name]
        latency = result.latencies[name]
        latency_text = "unbounded" if is_unbounded(latency) else str(latency)
        lines.append(f"| {name} | {len(graph)} | "
                     f"{len(graph.anchors)} | {latency_text} |")
    lines.append("")

    lines.append("## Control cost")
    lines.append("")
    lines.append(_control_table(result))
    lines.append("")

    for name in design.hierarchy_order():
        schedule = result.schedules[name]
        graph = result.constraint_graphs[name]
        lines.append(f"## Graph `{name}`")
        lines.append("")
        lines.append("```")
        lines.append(schedule.format_table())
        lines.append("```")
        rows = [row for row in constraint_slack(graph, schedule)
                if row["kind"] in ("min_time", "max_time")]
        if rows:
            lines.append("")
            lines.append("Timing constraints:")
            lines.append("")
            lines.append("| constraint | bound | slack | active |")
            lines.append("|---|---|---|---|")
            for row in rows:
                kind = "min" if row["kind"] == "min_time" else "max"
                bound = abs(row["weight"])
                lines.append(f"| {kind} {row['tail']} -> {row['head']} | "
                             f"{bound} | {row['slack']} | "
                             f"{'yes' if row['active'] else 'no'} |")
        serials = [e for e in graph.edges()
                   if e.kind.value == "serialization"]
        if serials:
            lines.append("")
            lines.append("Serializations added for well-posedness:")
            for edge in serials:
                lines.append(f"- `{edge.tail}` before `{edge.head}`")
        lines.append("")
    return "\n".join(lines)


def _control_table(result: HierarchicalSchedule) -> str:
    from repro.control.counter import synthesize_counter_control
    from repro.control.microcode import (UnboundedScheduleError,
                                         synthesize_microcode)
    from repro.control.optimize import synthesize_optimal_control
    from repro.control.shiftreg import synthesize_shift_register_control

    lines = ["| graph | counter (regs/cmp) | shift-reg (regs) | "
             "mixed (area) | microcode (ROM bits) |",
             "|---|---|---|---|---|"]
    for name in result.design.hierarchy_order():
        schedule = result.schedules[name]
        counter = synthesize_counter_control(schedule).cost()
        shift = synthesize_shift_register_control(schedule).cost()
        mixed = synthesize_optimal_control(schedule).cost()
        try:
            rom = str(synthesize_microcode(schedule).rom_bits())
        except UnboundedScheduleError:
            rom = "n/a (unbounded)"
        lines.append(f"| {name} | {counter.registers}/"
                     f"{counter.comparator_bits} | {shift.registers} | "
                     f"{mixed.total():.1f} | {rom} |")
    return "\n".join(lines)


def write_report(result: HierarchicalSchedule, path: str,
                 title: Optional[str] = None) -> None:
    """Write the markdown report to *path*."""
    with open(path, "w") as handle:
        handle.write(design_report(result, title))
        handle.write("\n")
