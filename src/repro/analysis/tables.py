"""Computation and rendering of the paper's evaluation tables.

* Table II -- anchor sets and minimum offsets of the Fig. 2 example;
* Table III -- full versus minimum anchor sets over the eight designs;
* Table IV -- maximum offsets and their sums over the eight designs.

Every driver returns structured rows (for tests and benches) and has a
``format_*`` companion that renders the paper-versus-measured comparison
as an ASCII table.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.paper_data import (
    DESIGN_TITLES,
    PAPER_TABLE3,
    PAPER_TABLE4,
)
from repro.analysis.paper_figures import fig2_graph
from repro.core.anchors import AnchorMode
from repro.core.scheduler import schedule_graph
from repro.designs import DESIGN_NAMES, build_design
from repro.seqgraph import design_statistics
from repro.seqgraph.hierarchy import DesignStatistics


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------


def table2_rows() -> List[dict]:
    """Anchor sets and minimum offsets of the Fig. 2 graph (Table II)."""
    graph = fig2_graph()
    schedule = schedule_graph(graph, anchor_mode=AnchorMode.FULL)
    rows = []
    for vertex in graph.forward_topological_order():
        offsets = schedule.offsets.get(vertex, {})
        rows.append({
            "vertex": vertex,
            "anchor_set": sorted(offsets),
            "sigma_v0": offsets.get("v0"),
            "sigma_a": offsets.get("a"),
        })
    return rows


def format_table2() -> str:
    """Render Table II."""
    lines = [
        "Table II: anchor sets and minimum offsets (Fig. 2 example)",
        f"{'vertex':>8}  {'A(v)':>12}  {'sigma_v0':>9}  {'sigma_a':>8}",
    ]
    for row in table2_rows():
        anchor_set = "{" + ",".join(row["anchor_set"]) + "}"
        sigma_v0 = "-" if row["sigma_v0"] is None else str(row["sigma_v0"])
        sigma_a = "-" if row["sigma_a"] is None else str(row["sigma_a"])
        lines.append(f"{row['vertex']:>8}  {anchor_set:>12}  "
                     f"{sigma_v0:>9}  {sigma_a:>8}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Tables III and IV
# ----------------------------------------------------------------------


def _all_statistics(stats: Optional[Dict[str, DesignStatistics]] = None
                    ) -> Dict[str, DesignStatistics]:
    if stats is not None:
        return stats
    return {name: design_statistics(build_design(name))
            for name in DESIGN_NAMES}


def table3_rows(stats: Optional[Dict[str, DesignStatistics]] = None) -> List[dict]:
    """Measured Table III rows with the paper's numbers attached."""
    stats = _all_statistics(stats)
    rows = []
    for name in DESIGN_NAMES:
        measured = stats[name]
        paper = PAPER_TABLE3[name]
        rows.append({
            "design": name,
            "title": DESIGN_TITLES[name],
            "anchors": measured.n_anchors,
            "vertices": measured.n_vertices,
            "full_total": measured.full_total,
            "full_average": measured.full_average,
            "min_total": measured.min_total,
            "min_average": measured.min_average,
            "paper": paper._asdict(),
        })
    return rows


def format_table3(stats: Optional[Dict[str, DesignStatistics]] = None) -> str:
    """Render Table III, paper versus measured."""
    lines = [
        "Table III: full vs minimum anchor sets (paper -> measured)",
        f"{'design':>20}  {'|A|/|V|':>12}  {'A(v) tot':>14}  "
        f"{'A(v) avg':>14}  {'IR(v) tot':>14}  {'IR(v) avg':>14}",
    ]
    for row in table3_rows(stats):
        paper = row["paper"]
        lines.append(
            f"{row['title']:>20}  "
            f"{paper['anchors']}/{paper['vertices']} -> "
            f"{row['anchors']}/{row['vertices']:>3}  "
            f"{paper['full_total']:>5} -> {row['full_total']:<5}  "
            f"{paper['full_average']:>5.2f} -> {row['full_average']:<5.2f}  "
            f"{paper['min_total']:>5} -> {row['min_total']:<5}  "
            f"{paper['min_average']:>5.2f} -> {row['min_average']:<5.2f}")
    return "\n".join(lines)


def table4_rows(stats: Optional[Dict[str, DesignStatistics]] = None) -> List[dict]:
    """Measured Table IV rows with the paper's numbers attached."""
    stats = _all_statistics(stats)
    rows = []
    for name in DESIGN_NAMES:
        measured = stats[name]
        paper = PAPER_TABLE4[name]
        rows.append({
            "design": name,
            "title": DESIGN_TITLES[name],
            "full_max": measured.full_max,
            "full_sum_max": measured.full_sum_max,
            "min_max": measured.min_max,
            "min_sum_max": measured.min_sum_max,
            "paper": paper._asdict(),
        })
    return rows


def format_table4(stats: Optional[Dict[str, DesignStatistics]] = None) -> str:
    """Render Table IV, paper versus measured."""
    lines = [
        "Table IV: maximum offsets, full vs minimum anchors "
        "(paper -> measured)",
        f"{'design':>20}  {'full max':>12}  {'full sum':>12}  "
        f"{'min max':>12}  {'min sum':>12}",
    ]
    for row in table4_rows(stats):
        paper = row["paper"]
        lines.append(
            f"{row['title']:>20}  "
            f"{paper['full_max']:>4} -> {row['full_max']:<4}  "
            f"{paper['full_sum_max']:>4} -> {row['full_sum_max']:<4}  "
            f"{paper['min_max']:>4} -> {row['min_max']:<4}  "
            f"{paper['min_sum_max']:>4} -> {row['min_sum_max']:<4}")
    return "\n".join(lines)
