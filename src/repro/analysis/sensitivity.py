"""Anchor sensitivity: which synchronizations dominate the latency.

For a concrete delay profile the completion time is
``T(sink) = max over a of (T(a) + delta(a) + sigma_a(sink))`` unrolled
through the anchor DAG; an anchor is *latency-critical* when stretching
its delay by one cycle delays the sink.  Sampling criticality over a
delay distribution ranks the synchronizations a designer should attack
first (faster bus arbitration? a wider port?) -- the quantitative
counterpart of the relative critical frames in :mod:`repro.core.alap`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.analysis.montecarlo import DelaySpec, _sample
from repro.core.schedule import RelativeSchedule


def latency_sensitivity(schedule: RelativeSchedule,
                        profile: Optional[Mapping[str, int]] = None,
                        vertex: Optional[str] = None) -> Dict[str, int]:
    """The discrete derivative of a vertex's start time per anchor.

    Returns, for each anchor, how many cycles the *vertex* (default:
    the sink) moves when that anchor's delay grows by one cycle under
    *profile* -- 1 when the anchor lies on every dynamic critical path,
    0 when it has slack (ties count as critical: delaying the anchor
    delays the vertex).
    """
    graph = schedule.graph
    target = vertex or graph.sink
    base_profile = dict(profile or {})
    base = schedule.start_times(base_profile)[target]
    sensitivity: Dict[str, int] = {}
    for anchor in graph.anchors:
        bumped = dict(base_profile)
        bumped[anchor] = bumped.get(anchor, 0) + 1
        sensitivity[anchor] = schedule.start_times(bumped)[target] - base
    return sensitivity


@dataclass
class CriticalityReport:
    """Sampled criticality of each anchor over a delay distribution."""

    rates: Dict[str, float]
    samples: int

    def ranked(self) -> List[str]:
        """Anchors most-critical first."""
        return sorted(self.rates, key=lambda a: (-self.rates[a], a))

    def format(self) -> str:
        """Human-readable criticality ranking."""
        lines = [f"anchor criticality over {self.samples} profiles:"]
        for anchor in self.ranked():
            lines.append(f"  {anchor:>14}: critical in "
                         f"{self.rates[anchor]:6.1%} of profiles")
        return "\n".join(lines)


def criticality(schedule: RelativeSchedule,
                delay_specs: Mapping[str, DelaySpec],
                samples: int = 500, seed: int = 0,
                vertex: Optional[str] = None) -> CriticalityReport:
    """How often each anchor is latency-critical under the distribution.

    Anchors missing from *delay_specs* run in 0 cycles (they can still
    be critical through their offsets).
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    rng = random.Random(seed)
    anchors = list(schedule.graph.anchors)
    hits = {anchor: 0 for anchor in anchors}
    for _ in range(samples):
        profile = {a: _sample(delay_specs[a], rng)
                   for a in anchors if a in delay_specs}
        for anchor, delta in latency_sensitivity(schedule, profile,
                                                 vertex).items():
            if delta > 0:
                hits[anchor] += 1
    return CriticalityReport(
        rates={anchor: count / samples for anchor, count in hits.items()},
        samples=samples)
