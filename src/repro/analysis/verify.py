"""Exhaustive bounded verification of relative schedules.

Well-posedness (Definition 7) quantifies over *all* unbounded delay
values; Theorem 2 decides it structurally.  This module provides the
brute-force counterpart: enumerate every delay profile up to a bound
and check every timing constraint against the evaluated start times.
Two uses:

* an independent oracle for the structural analysis -- on a well-posed
  graph the check must pass for every profile (the test suite runs both
  and cross-validates);
* a *witness generator*: scheduling an ill-posed graph anyway (the raw
  scheduler will happily converge on the static case) and running the
  exhaustive check produces a concrete delay profile under which a
  maximum constraint breaks -- exactly the input sequence the paper
  argues must exist.

The enumeration is exponential in the number of anchors
(``(bound+1)^|A|`` profiles), so it targets example- and unit-sized
graphs; ``max_profiles`` guards accidental blowups.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.graph import ConstraintGraph
from repro.core.schedule import RelativeSchedule


@dataclass(frozen=True)
class ConstraintViolation:
    """One constraint broken under one delay profile."""

    profile: Tuple[Tuple[str, int], ...]
    edge_tail: str
    edge_head: str
    edge_kind: str
    required: int
    observed: int

    def __str__(self) -> str:
        profile = ", ".join(f"{a}={d}" for a, d in self.profile)
        return (f"under {{{profile}}}: {self.edge_kind} edge "
                f"{self.edge_tail} -> {self.edge_head} needs separation "
                f">= {self.required}, observed {self.observed}")


@dataclass
class VerificationResult:
    """Outcome of an exhaustive check."""

    profiles_checked: int
    violations: List[ConstraintViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def witness(self) -> Optional[Dict[str, int]]:
        """A delay profile demonstrating a violation, if any."""
        if not self.violations:
            return None
        return dict(self.violations[0].profile)

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violations"
        return (f"VerificationResult({self.profiles_checked} profiles, "
                f"{status})")


def exhaustive_check(schedule: RelativeSchedule, delay_bound: int = 3,
                     max_profiles: int = 200000,
                     stop_at_first: bool = False) -> VerificationResult:
    """Check every timing constraint under every profile up to a bound.

    Args:
        schedule: a relative schedule of the graph to verify.
        delay_bound: each unbounded anchor's delay ranges over
            ``0..delay_bound`` inclusive (the source included: its delay
            models activation skew).
        max_profiles: hard cap on the enumeration size.
        stop_at_first: return at the first violating profile.

    Raises:
        ValueError: when the enumeration would exceed *max_profiles*.
    """
    graph = schedule.graph
    anchors = list(graph.anchors)
    total = (delay_bound + 1) ** len(anchors)
    if total > max_profiles:
        raise ValueError(
            f"{total} profiles exceed the cap {max_profiles}; lower "
            f"delay_bound or raise max_profiles")

    result = VerificationResult(profiles_checked=0)
    for values in itertools.product(range(delay_bound + 1),
                                    repeat=len(anchors)):
        profile = dict(zip(anchors, values))
        result.profiles_checked += 1
        start = schedule.start_times(profile)
        for edge in graph.edges():
            required = (profile[edge.tail] if edge.is_unbounded
                        else edge.weight)
            observed = start[edge.head] - start[edge.tail]
            if observed < required:
                result.violations.append(ConstraintViolation(
                    profile=tuple(sorted(profile.items())),
                    edge_tail=edge.tail, edge_head=edge.head,
                    edge_kind=edge.kind.value,
                    required=required, observed=observed))
                if stop_at_first:
                    return result
    return result


def find_illposedness_witness(graph: ConstraintGraph, delay_bound: int = 3,
                              max_profiles: int = 200000
                              ) -> Optional[Dict[str, int]]:
    """A concrete delay profile under which no static schedule of the
    graph can satisfy the constraints.

    Runs the raw iterative scheduler (ignoring the well-posedness gate)
    and exhaustively checks the result.  For a well-posed graph this
    returns None (Theorem 2's sufficiency, checked dynamically); for an
    ill-posed graph it returns the offending profile -- the "input data
    sequence" of the paper's Section III-B discussion.
    """
    from repro.core.exceptions import InconsistentConstraintsError
    from repro.core.scheduler import IterativeIncrementalScheduler

    try:
        schedule = IterativeIncrementalScheduler(graph).run()
    except InconsistentConstraintsError:
        return {}  # no schedule even statically: every profile witnesses
    result = exhaustive_check(schedule, delay_bound=delay_bound,
                              max_profiles=max_profiles,
                              stop_at_first=True)
    return result.witness()
