"""Schedule diffing: what changed between two relative schedules.

Pairs naturally with incremental rescheduling and constraint editing:
after adding/removing a constraint or re-binding, the diff shows which
offsets moved, which anchors were gained or lost per vertex, and how
the control-relevant aggregates (sigma^max sums) shifted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.schedule import RelativeSchedule


@dataclass(frozen=True)
class OffsetChange:
    """One (vertex, anchor) offset difference."""

    vertex: str
    anchor: str
    before: Optional[int]  # None = not tracked before
    after: Optional[int]   # None = no longer tracked

    @property
    def kind(self) -> str:
        if self.before is None:
            return "added"
        if self.after is None:
            return "removed"
        return "moved"

    def __str__(self) -> str:
        if self.kind == "added":
            return f"{self.vertex}/{self.anchor}: (new) -> {self.after}"
        if self.kind == "removed":
            return f"{self.vertex}/{self.anchor}: {self.before} -> (dropped)"
        return f"{self.vertex}/{self.anchor}: {self.before} -> {self.after}"


@dataclass
class ScheduleDiff:
    """The difference between two schedules of comparable graphs."""

    changes: List[OffsetChange] = field(default_factory=list)
    sum_max_before: int = 0
    sum_max_after: int = 0

    @property
    def unchanged(self) -> bool:
        return not self.changes

    def moved(self) -> List[OffsetChange]:
        return [c for c in self.changes if c.kind == "moved"]

    def added(self) -> List[OffsetChange]:
        return [c for c in self.changes if c.kind == "added"]

    def removed(self) -> List[OffsetChange]:
        return [c for c in self.changes if c.kind == "removed"]

    def format(self) -> str:
        """Human-readable change log."""
        if self.unchanged:
            return "schedules identical"
        lines = [f"{len(self.changes)} offset change(s); sum of max "
                 f"offsets {self.sum_max_before} -> {self.sum_max_after}"]
        lines += [f"  {change}" for change in self.changes]
        return "\n".join(lines)


def diff_schedules(before: RelativeSchedule,
                   after: RelativeSchedule) -> ScheduleDiff:
    """Compare two schedules vertex by vertex, anchor by anchor.

    The graphs need not be identical objects (the incremental API copies
    them); vertices present in only one schedule appear as added/removed
    entries for all their offsets.
    """
    diff = ScheduleDiff(sum_max_before=before.sum_of_max_offsets(),
                        sum_max_after=after.sum_of_max_offsets())
    vertices = sorted(set(before.offsets) | set(after.offsets))
    for vertex in vertices:
        old = before.offsets.get(vertex, {})
        new = after.offsets.get(vertex, {})
        for anchor in sorted(set(old) | set(new)):
            left = old.get(anchor)
            right = new.get(anchor)
            if left != right:
                diff.changes.append(OffsetChange(vertex, anchor, left, right))
    return diff
