"""Drivers for the paper's figure-based experiments.

* **Fig. 10** -- the iterative-incremental-scheduling trace: schedule
  the reconstructed example with tracing on and render the per-iteration
  compute/readjust table.
* **Fig. 14** -- the gcd simulation: compile Fig. 13, schedule it,
  synthesize control, and run the cycle-accurate control simulation with
  a restart stimulus; the exact one-cycle separation between the two
  input samples (the constrained behaviour the figure demonstrates) is
  checked, and the functional interpreter confirms the design computes
  greatest common divisors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.paper_figures import fig10_graph
from repro.core.anchors import AnchorMode
from repro.core.scheduler import IterativeIncrementalScheduler


#: The paper's Fig. 10 offset table: vertex -> list of
#: (compute1, readjust1, compute2, readjust2, compute3) pairs
#: (sigma_v0, sigma_a), with None for untouched readjust cells and for
#: untracked anchors.
PAPER_FIG10_TRACE: Dict[str, List[Optional[Tuple[Optional[int], Optional[int]]]]] = {
    "v0": [None, None, None, None, None],
    "a":  [(1, None), (2, None), (2, None), None, (2, None)],
    "v1": [(1, 0), None, (2, 0), None, (2, 0)],
    "v2": [(2, 1), (4, 3), (4, 3), (5, 3), (5, 3)],
    "v3": [(5, 4), None, (6, 4), None, (6, 4)],
    "v4": [(4, 2), None, (4, 2), None, (4, 2)],
    "v5": [(5, 3), (6, 3), (6, 3), None, (6, 3)],
    "v6": [(8, None), None, (8, None), None, (8, None)],
    "v7": [(12, 5), None, (12, 6), None, (12, 6)],
}


def fig10_trace() -> Tuple["ScheduleTrace", "object"]:
    """Schedule the Fig. 10 graph with tracing; returns (trace, schedule)."""
    graph = fig10_graph()
    scheduler = IterativeIncrementalScheduler(
        graph, anchor_mode=AnchorMode.FULL, record_trace=True)
    schedule = scheduler.run()
    return scheduler.trace, schedule


def format_fig10() -> str:
    """Render the Fig. 10 iteration table for the reconstructed graph."""
    trace, schedule = fig10_trace()
    header = ["Fig. 10: trace of offsets in the scheduling algorithm",
              "(cells are sigma_v0,sigma_a; '-' = anchor not tracked)"]
    vertices = ["v0", "a", "v1", "v2", "v3", "v4", "v5", "v6", "v7"]
    return "\n".join(header) + "\n" + trace.format_fig10(vertices=vertices,
                                                         anchors=["v0", "a"])


def fig10_matches_paper() -> bool:
    """True when the reconstructed graph reproduces every cell of the
    published Fig. 10 trace (used by tests and the bench)."""
    trace, _ = fig10_trace()
    if trace.iterations != 3:
        return False
    for vertex, cells in PAPER_FIG10_TRACE.items():
        expected = [cells[0], cells[1], cells[2], cells[3], cells[4]]
        observed = []
        for index, record in enumerate(trace.records):
            observed.append(_cell(record.computed, vertex))
            readjusted = _cell(record.readjusted, vertex)
            if index < 2:
                observed.append(
                    readjusted if readjusted != observed[-1] else None)
        for cell_expected, cell_observed in zip(expected, observed):
            if cell_expected != cell_observed:
                return False
    return True


def _cell(state: Dict[str, Dict[str, int]], vertex: str
          ) -> Optional[Tuple[Optional[int], Optional[int]]]:
    offsets = state.get(vertex, {})
    if not offsets:
        return None
    return (offsets.get("v0"), offsets.get("a"))


# ----------------------------------------------------------------------
# Fig. 14: gcd simulation
# ----------------------------------------------------------------------


@dataclass
class Fig14Result:
    """Outcome of the gcd simulation experiment.

    Attributes:
        restart_cycles: how long restart stayed high.
        y_sampled_at: control cycle at which ``y = read(yin)`` started.
        x_sampled_at: control cycle at which ``x = read(xin)`` started.
        separation_ok: x sampled exactly one cycle after y (the
            constraint the figure demonstrates).
        control_matches_schedule: the synthesized control fired every
            enable exactly at the analytical start time.
        functional_ok: the design computes math.gcd on random inputs.
        waveform: ASCII waveform of the relevant signals.
    """

    restart_cycles: int
    y_sampled_at: int
    x_sampled_at: int
    separation_ok: bool
    control_matches_schedule: bool
    functional_ok: bool
    waveform: str


def fig14_simulation(restart_cycles: int = 4, style: str = "shift-register",
                     functional_trials: int = 10,
                     seed: int = 1990) -> Fig14Result:
    """Run the Fig. 14 experiment end to end.

    Compiles the Fig. 13 source, schedules it, synthesizes the requested
    control style for the root graph, and simulates the control with the
    restart wait taking *restart_cycles*; separately, the functional
    interpreter checks gcd correctness on random inputs.
    """
    import random

    from repro.control import (synthesize_counter_control,
                               synthesize_shift_register_control)
    from repro.designs.gcd import GCD_SOURCE, build_gcd
    from repro.hdl import parse
    from repro.seqgraph import OpKind, schedule_design
    from repro.sim import Interpreter, PortStream, simulate_control

    design = build_gcd()
    result = schedule_design(design)
    schedule = result.schedules["gcd"]
    root = design.graph("gcd")
    restart_loop = next(op.name for op in root.operations()
                        if op.kind is OpKind.LOOP)
    euclid_cond = next(op.name for op in root.operations()
                       if op.kind is OpKind.COND)

    synthesize = (synthesize_counter_control if style == "counter"
                  else synthesize_shift_register_control)
    unit = synthesize(schedule)
    profile = {restart_loop: restart_cycles, euclid_cond: 6}
    sim = simulate_control(unit, schedule, profile)

    y_at = sim.start_times["a"]
    x_at = sim.start_times["b"]

    trace = sim.trace
    trace.record(0, "restart", 1)
    trace.record(restart_cycles, "restart", 0)
    trace.record(y_at, "sample_y", 1)
    trace.record(y_at + 1, "sample_y", 0)
    trace.record(x_at, "sample_x", 1)
    trace.record(x_at + 1, "sample_x", 0)
    waveform = trace.render(
        signals=["restart", "sample_y", "sample_x"],
        until=max(x_at + 3, restart_cycles + 3))

    program = parse(GCD_SOURCE)
    rng = random.Random(seed)
    functional_ok = True
    for _ in range(functional_trials):
        a_value = rng.randint(1, 255)
        b_value = rng.randint(1, 255)
        outputs = Interpreter(program).run(
            {"restart": PortStream([1, 0]), "xin": a_value,
             "yin": b_value}).outputs
        if outputs["result"] != math.gcd(a_value, b_value):
            functional_ok = False
            break

    return Fig14Result(
        restart_cycles=restart_cycles,
        y_sampled_at=y_at,
        x_sampled_at=x_at,
        separation_ok=(x_at == y_at + 1 and y_at >= restart_cycles),
        control_matches_schedule=sim.matches_schedule(schedule, profile),
        functional_ok=functional_ok,
        waveform=waveform,
    )
