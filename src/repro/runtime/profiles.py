"""Bounded-delay profile families for runtime chaos campaigns.

The resilience chaos campaign samples anchor delays uniformly; the
online executor's interesting failure modes cluster elsewhere -- at the
watchdog boundary, in bursts that pile many completions onto one cycle,
and in long quiet runs where warm reschedules must stay cheap.  Each
*family* here is a deterministic per-anchor delay sampler parameterized
by the watchdog bound ``W``, so every sampled profile is meaningfully
positioned relative to the detection boundary:

* ``uniform`` -- delays in ``[0, W]``: always in time, the masked path;
* ``boundary`` -- delays pinned to ``{0, 1, W-1, W, W+1}``: every run
  straddles the fire/no-fire edge by at most one cycle;
* ``bursty`` -- mostly zero with occasional spikes up to ``2W``: many
  same-cycle completions plus sporadic late stragglers;
* ``quiet`` -- delays in ``[0, max(1, W//4)]``: fast completions that
  stress sustained event throughput rather than the watchdogs.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, Mapping

#: One family: ``(rng, bound) -> delay`` for a single anchor.
FamilyFn = Callable[[random.Random, int], int]

PROFILE_FAMILIES: Mapping[str, FamilyFn] = {
    "uniform": lambda rng, bound: rng.randint(0, max(0, bound)),
    "boundary": lambda rng, bound: max(
        0, rng.choice([0, 1, bound - 1, bound, bound + 1])),
    "bursty": lambda rng, bound: (
        rng.randint(bound, 2 * bound) if rng.random() < 0.15 else 0),
    "quiet": lambda rng, bound: rng.randint(0, max(1, bound // 4)),
}


def sample_profile(family: str, rng: random.Random,
                   anchors: Iterable[str], bound: int) -> Dict[str, int]:
    """A delay profile for *anchors* drawn from the named family.

    Raises:
        KeyError: unknown family name (the valid names are the keys of
            :data:`PROFILE_FAMILIES`).
    """
    sampler = PROFILE_FAMILIES[family]
    return {anchor: sampler(rng, bound) for anchor in anchors}


def choose_family(rng: random.Random) -> str:
    """A deterministic family pick (sorted names, so insertion order of
    the registry cannot reshuffle seeded campaigns)."""
    return rng.choice(sorted(PROFILE_FAMILIES))
