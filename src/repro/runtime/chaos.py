"""Seeded runtime chaos campaigns: the executor under hostile streams.

Every case reuses the resilience campaign's deterministic derivation --
same graph, watchdog, control style and fault plan for a given seed --
but swaps the uniform delay profile for one drawn from a bounded-delay
family (:mod:`repro.runtime.profiles`), sampled from an independent
seed stream so runtime campaigns and resilience campaigns cannot
reshuffle each other.  Each case then runs **both** implementations --
the cycle-accurate control simulation and the event-driven executor --
through :func:`repro.runtime.driver.replay_faults` and demands field-by-
field equivalence.  A mismatch is a *silent anomaly*: one of the two
runtimes issued an operation at a cycle the other would not have.

Run from the command line (the CI ``runtime-smoke`` job)::

    python -m repro.runtime.chaos --seed 0 --events 200

``--crash`` swaps the differential for crash injection: each case's
event stream is written through the write-ahead journal, the journal is
killed at every record boundary (the fsync points) and at seeded byte
offsets inside records, and every recovery is replayed and compared
bit-for-bit against the uninterrupted executor (see
:mod:`repro.resilience.recovery`).

Exit status 1 means at least one silent anomaly -- a runtime bug.
"""

from __future__ import annotations

import argparse
import random
import sys
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:
    from repro.resilience.recovery import CrashReport

from repro.core.exceptions import ConstraintGraphError
from repro.core.watchdog import WatchdogPolicy
from repro.qa.generators import generate_case
from repro.resilience.chaos import _CASE_BUDGET, _CASE_MAX_CYCLES, generate_chaos_case
from repro.resilience.guard import guarded_schedule
from repro.runtime.driver import RuntimeReplay, replay_faults
from repro.runtime.profiles import choose_family, sample_profile

#: Safety cap: no --events target may spin past this many cases.
MAX_CAMPAIGN_CASES = 2000


@dataclass
class RuntimeCampaignStats:
    """Aggregate outcome of a runtime chaos campaign."""

    cases: int = 0
    unschedulable: int = 0
    events: int = 0
    reschedules: int = 0
    aborted: int = 0
    degraded: int = 0
    completed: int = 0
    anomalies: List[str] = field(default_factory=list)
    by_family: dict = field(default_factory=dict)

    @property
    def silent(self) -> int:
        return len(self.anomalies)

    def summary(self) -> str:
        lines = [
            f"runtime chaos campaign: {self.cases} cases "
            f"({self.unschedulable} unschedulable), "
            f"{self.events} events, {self.reschedules} warm reschedules",
            f"  completed: {self.completed}",
            f"  aborted:   {self.aborted}",
            f"  degraded:  {self.degraded}",
            f"  silent anomalies: {self.silent}",
        ]
        if self.by_family:
            families = ", ".join(f"{k}={n}"
                                 for k, n in sorted(self.by_family.items()))
            lines.append(f"  profile families: {families}")
        for anomaly in self.anomalies[:10]:
            lines.append(f"  ANOMALY {anomaly}")
        if len(self.anomalies) > 10:
            lines.append(f"  ... and {len(self.anomalies) - 10} more")
        return "\n".join(lines)


def run_runtime_case(seed: int,
                     policy: Optional[WatchdogPolicy] = None
                     ) -> Optional[RuntimeReplay]:
    """Replay the deterministic runtime case for *seed*, or None when
    the seed's graph is unschedulable (rejected, ill-posed, or over the
    campaign budget)."""
    case = generate_chaos_case(seed, policy)
    rng = random.Random(seed ^ zlib.crc32(b"runtime"))
    family = choose_family(rng)
    try:
        graph = generate_case(seed).graph
        schedule = guarded_schedule(graph, _CASE_BUDGET)
    except ConstraintGraphError:
        return None
    if schedule is None:
        return None
    anchors = [a for a in graph.anchors if a != graph.source]
    bound = case.watchdog.budget()
    profile = sample_profile(family, rng, anchors, bound)
    replay = replay_faults(schedule, profile, case.plan,
                           watchdog=case.watchdog, style=case.style,
                           max_cycles=_CASE_MAX_CYCLES)
    replay.family = family  # type: ignore[attr-defined]
    return replay


def run_campaign(start_seed: int, cases: int = 0, events: int = 0,
                 policy: Optional[WatchdogPolicy] = None
                 ) -> RuntimeCampaignStats:
    """Run seeds ``start_seed, start_seed+1, ...`` until *cases* cases
    have run (when given) and at least *events* completion events have
    flowed through the executor (when given), whichever demands more --
    bounded by :data:`MAX_CAMPAIGN_CASES`."""
    stats = RuntimeCampaignStats()
    seed = start_seed
    ran = 0
    while ran < MAX_CAMPAIGN_CASES:
        if ran >= cases and stats.events >= events:
            break
        replay = run_runtime_case(seed, policy)
        seed += 1
        ran += 1
        stats.cases += 1
        if replay is None:
            stats.unschedulable += 1
            continue
        family = getattr(replay, "family", "?")
        stats.by_family[family] = stats.by_family.get(family, 0) + 1
        if replay.log is not None:
            stats.events += replay.log.events
            stats.reschedules += replay.log.reschedules
            if replay.log.degraded:
                stats.degraded += 1
            else:
                stats.completed += 1
        else:
            stats.aborted += 1
        if not replay.equivalent:
            stats.anomalies.append(
                f"seed {seed - 1} [{family}]: {'; '.join(replay.mismatches[:3])}")
    return stats


@dataclass
class CrashCampaignStats:
    """Aggregate outcome of a crash-injection campaign."""

    cases: int = 0
    unschedulable: int = 0
    events: int = 0
    boundary_kills: int = 0
    torn_kills: int = 0
    divergences: List[str] = field(default_factory=list)

    @property
    def silent(self) -> int:
        return len(self.divergences)

    def summary(self) -> str:
        lines = [
            f"crash-injection campaign: {self.cases} cases "
            f"({self.unschedulable} unschedulable), "
            f"{self.events} journaled events",
            f"  kill points: {self.boundary_kills} boundary, "
            f"{self.torn_kills} torn",
            f"  silent divergences: {self.silent}",
        ]
        for divergence in self.divergences[:10]:
            lines.append(f"  DIVERGENCE {divergence}")
        if len(self.divergences) > 10:
            lines.append(f"  ... and {len(self.divergences) - 10} more")
        return "\n".join(lines)


def run_crash_case(seed: int,
                   policy: Optional[WatchdogPolicy] = None,
                   ) -> Optional["CrashReport"]:
    """Journal the deterministic case for *seed*, kill it at every
    record boundary plus seeded torn offsets, and verify bit-identical
    recovery.  Returns the :class:`~repro.resilience.recovery.
    CrashReport`, or None when the seed's graph is unschedulable."""
    import os
    import tempfile

    from repro.qa.serialize import graph_to_dict
    from repro.resilience.recovery import journal_stream, verify_crash_points
    from repro.runtime.journal import watchdog_to_dict

    case = generate_chaos_case(seed, policy)
    rng = random.Random(seed ^ zlib.crc32(b"crash"))
    family = choose_family(rng)
    try:
        graph = generate_case(seed).graph
        schedule = guarded_schedule(graph, _CASE_BUDGET)
    except ConstraintGraphError:
        return None
    if schedule is None:
        return None
    base = schedule.graph
    anchors = [a for a in base.anchors if a != base.source]
    profile = sample_profile(family, rng, anchors, case.watchdog.budget())
    static = schedule.start_times(profile)
    order = {name: position for position, name
             in enumerate(base.forward_topological_order())}
    events = [(a, cycle) for cycle, _, a in sorted(
        (static[a] + profile[a], order[a], a) for a in anchors)]
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "case.journal")
        snapshots = journal_stream(
            path, graph_to_dict(base), events, mode="full",
            watchdog=watchdog_to_dict(case.watchdog))
        report = verify_crash_points(path, snapshots, rng=rng,
                                     torn_per_record=1)
    report.events = len(snapshots) - 1  # type: ignore[attr-defined]
    return report


def run_crash_campaign(start_seed: int, cases: int = 100,
                       policy: Optional[WatchdogPolicy] = None
                       ) -> CrashCampaignStats:
    """Crash-inject seeds ``start_seed .. start_seed + cases - 1``."""
    stats = CrashCampaignStats()
    for seed in range(start_seed, start_seed + min(cases,
                                                   MAX_CAMPAIGN_CASES)):
        report = run_crash_case(seed, policy)
        stats.cases += 1
        if report is None:
            stats.unschedulable += 1
            continue
        stats.events += getattr(report, "events", 0)
        stats.boundary_kills += report.boundary_checks
        stats.torn_kills += report.torn_checks
        for divergence in report.divergences:
            stats.divergences.append(f"seed {seed}: {divergence}")
    return stats


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.chaos",
        description="differential chaos campaign for the online executor")
    parser.add_argument("--seed", type=int, default=0,
                        help="first case seed (default 0)")
    parser.add_argument("--cases", type=int, default=0,
                        help="minimum number of cases to run")
    parser.add_argument("--events", type=int, default=0,
                        help="minimum completion events to stream")
    parser.add_argument("--policy", choices=[p.value for p in WatchdogPolicy],
                        default=None, help="pin every case's watchdog policy")
    parser.add_argument("--crash", action="store_true",
                        help="crash-injection mode: journal each case's "
                             "stream, kill it at every fsync boundary, "
                             "verify bit-identical recovery")
    args = parser.parse_args(argv)
    if args.cases <= 0 and args.events <= 0:
        args.cases = 100
    policy = WatchdogPolicy(args.policy) if args.policy else None
    if args.crash:
        crash_stats = run_crash_campaign(args.seed, cases=args.cases or 100,
                                         policy=policy)
        print(crash_stats.summary())
        return 1 if crash_stats.divergences else 0
    stats = run_campaign(args.seed, cases=args.cases, events=args.events,
                         policy=policy)
    print(stats.summary())
    return 1 if stats.anomalies else 0


if __name__ == "__main__":
    sys.exit(main())
