"""Per-session write-ahead event journals: durable executor streams.

The paper's runtime rule ``T(v) = max(done(a) + sigma_a(v))`` makes the
executor's entire state a pure function of the ordered completion
prefix -- the property the anomaly-freedom oracle (PR 8) proved and
this module exploits: an :class:`~repro.runtime.executor.OnlineExecutor`
is fully recoverable by replaying its event log through a fresh
executor.  A crash-killed process therefore only needs each session's
*acknowledged prefix* on disk to come back bit-identical.

The journal is append-only JSON Lines, one self-contained record per
line, reusing the :class:`~repro.core.resultcache.ScheduleCache` append
discipline: every record goes out as **one** ``os.write`` on an
``O_APPEND`` descriptor under an exclusive ``fcntl`` lock (where the
platform has one), so concurrent writers -- other threads, other server
processes sharing a journal directory -- append whole lines, never
spliced fragments.  Three record types:

* ``open`` -- the session's full genesis: serialized graph, anchor
  mode, watchdog config, ``source_done`` and well-posing flag.  Replay
  re-schedules the graph (deterministic) rather than persisting
  offsets, the same checkpoint-and-replay discipline feedback-guided
  iterative scheduling assumes for warm ``run_from`` restarts;
* ``events`` -- one acknowledged batch: the client-assigned sequence
  number (contiguous from 1) plus its ``[anchor, cycle]`` pairs.  The
  record is appended -- and, per the fsync policy, made durable --
  **before** the batch is applied and acknowledged, so the write-ahead
  invariant holds: everything acknowledged is on disk;
* ``seal`` -- the session closed cleanly; recovery scans skip it.

Reading follows the PR-4 untrusted-input rules with one twist: a
journal is a *prefix log*, not a key-value bag, so validation stops at
the first bad line rather than dropping it.  A torn tail (power loss
mid-append) degrades to "the last batch was never acknowledged" --
which is exactly true, because acknowledgement follows the append --
and never to corrupt state.  Mid-file garbage, sequence gaps and
duplicate sequence numbers all end the trusted prefix the same way.

The fsync policy is configurable per journal:

* ``"always"`` (default) -- ``os.fsync`` after every append: a crash
  loses nothing acknowledged, at ~one disk flush per batch;
* ``"never"`` -- leave durability to the OS page cache: an OS-level
  crash may lose recently acknowledged batches (a *process* crash
  loses nothing), at in-memory append cost.  :meth:`SessionJournal.sync`
  forces a flush regardless -- the graceful-drain path calls it on
  every live journal before exiting.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:
    from repro.runtime.executor import OnlineExecutor

from repro.sanitize import make_lock

try:  # pragma: no cover - platform-dependent
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Journal record schema version; bump to orphan all persisted journals.
JOURNAL_FORMAT = 1

#: File suffix for session journals inside a journal directory.
JOURNAL_SUFFIX = ".journal"

#: The fsync policies :class:`SessionJournal` accepts.
FSYNC_POLICIES = ("always", "never")

#: Hard caps mirroring the untrusted-input limits: a hostile journal
#: must not balloon memory by declaring huge batches.
_MAX_BATCH_EVENTS = 1 << 20
_MAX_CYCLE = 1 << 53  # matches qa.serialize.MAX_ABS_WEIGHT


class JournalWriteError(OSError):
    """The journal append could not be made durable (full disk,
    revoked permissions).  The batch must NOT be acknowledged."""


@dataclass
class JournalState:
    """Everything a recovery scan learned from one journal file.

    Attributes:
        open_record: the validated ``open`` record, or None when the
            file has no trusted genesis (unrecoverable).
        batches: the acknowledged prefix, in sequence order -- every
            ``(seq, events)`` pair whose record survived validation.
        sealed: True when a ``seal`` record closed the session cleanly.
        torn_tail: True when the final line was damaged (torn append);
            the line is treated as never acknowledged.
        rejected_lines: lines that ended the trusted prefix early
            (mid-file garbage, sequence gaps, duplicates).
        trusted_bytes: byte length of the trusted prefix -- resuming a
            journal truncates here first, so a torn fragment can never
            splice itself into the next acknowledged append.
    """

    open_record: Optional[Dict[str, Any]] = None
    batches: List[Tuple[int, List[Tuple[str, int]]]] = field(
        default_factory=list)
    sealed: bool = False
    torn_tail: bool = False
    rejected_lines: int = 0
    trusted_bytes: int = 0

    @property
    def last_seq(self) -> int:
        """The highest acknowledged sequence number (0 when none)."""
        return self.batches[-1][0] if self.batches else 0

    @property
    def recoverable(self) -> bool:
        """True when the journal can seed a live session again."""
        return self.open_record is not None and not self.sealed


class SessionJournal:
    """The write-ahead journal of one executor session.

    Args:
        path: the backing JSONL file.
        fsync: ``"always"`` or ``"never"`` (see module docs).

    A journal object is thread-safe; the session layer additionally
    serializes batches per session, so appends for one session are
    naturally ordered.
    """

    def __init__(self, path: Union[str, Path], *,
                 fsync: str = "always") -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r} "
                             f"(expected one of {FSYNC_POLICIES})")
        self.path = Path(path)
        self.fsync = fsync
        # io_ok: this lock IS the append-ordering discipline; the
        # flock/write/fsync under it is the durability contract (see
        # DESIGN.md section 15 on sanitizer false positives).
        self._lock = make_lock("journal.append", io_ok=True)
        self.appends = 0

    # -- the write path ------------------------------------------------

    def append_open(self, session_id: str, graph_dict: Dict[str, Any], *,
                    mode: str, watchdog: Optional[Dict[str, Any]],
                    source_done: int, auto_well_pose: bool) -> None:
        """Write the genesis record (must be the journal's first line)."""
        self._append({
            "type": "open",
            "format": JOURNAL_FORMAT,
            "session": session_id,
            "graph": graph_dict,
            "mode": mode,
            "watchdog": watchdog,
            "source_done": source_done,
            "auto_well_pose": auto_well_pose,
        })

    def append_events(self, seq: int,
                      events: List[Tuple[str, int]]) -> None:
        """Write one acknowledged batch record (before applying it)."""
        self._append({
            "type": "events",
            "seq": seq,
            "events": [[anchor, cycle] for anchor, cycle in events],
        })

    def append_seal(self, last_seq: int) -> None:
        """Mark the session cleanly closed; always fsynced."""
        self._append({"type": "seal", "last_seq": last_seq}, force_sync=True)

    def sync(self) -> None:
        """Force the journal to disk regardless of the fsync policy
        (the graceful-drain path)."""
        try:
            fd = os.open(self.path, os.O_WRONLY | os.O_APPEND)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - racy platform failures
            pass
        finally:
            os.close(fd)

    def _append(self, record: Dict[str, Any], *,
                force_sync: bool = False) -> None:
        """One whole-line durable append (the ScheduleCache discipline).

        A failed or short write raises :class:`JournalWriteError`: the
        caller must not acknowledge the batch.  Unlike the schedule
        cache -- where persistence is an optimization and failures
        degrade to memory -- the journal IS the durability contract.
        """
        payload = (json.dumps(record, separators=(",", ":"))
                   + "\n").encode("utf-8")
        with self._lock:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fd = os.open(self.path,
                             os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
                try:
                    if fcntl is not None:
                        fcntl.flock(fd, fcntl.LOCK_EX)
                    try:
                        view = memoryview(payload)
                        while view:  # a short write would tear a line
                            view = view[os.write(fd, view):]
                        if force_sync or self.fsync == "always":
                            os.fsync(fd)
                    finally:
                        if fcntl is not None:
                            fcntl.flock(fd, fcntl.LOCK_UN)
                finally:
                    os.close(fd)
            except OSError as error:
                raise JournalWriteError(
                    f"journal append to {self.path} failed: {error}"
                ) from error
            self.appends += 1


# ----------------------------------------------------------------------
# the read / recovery path
# ----------------------------------------------------------------------


def read_journal(path: Union[str, Path]) -> JournalState:
    """Scan one journal file into its trusted prefix.

    Never raises on file content: every failure mode -- torn tail,
    binary garbage, sequence gaps, duplicate sequence numbers, a
    missing genesis -- degrades to a shorter (possibly empty) trusted
    prefix, exactly the "not yet acknowledged" semantics the
    write-ahead ordering guarantees is safe.
    """
    state = JournalState()
    try:
        raw = Path(path).read_bytes()
    except OSError:
        return state
    if not raw:
        return state
    lines = raw.split(b"\n")
    # A file ending exactly at a record boundary splits into lines plus
    # one empty tail.  Anything else in the final slot is a torn append
    # -- even when it happens to parse (the newline is part of the
    # single acknowledged write, so its absence means the write never
    # completed and the record was never acknowledged).
    tail = lines.pop()
    ended_early = False
    for index, line in enumerate(lines):
        record = _validated_record(line)
        if record is None or not _apply_record(state, record):
            # A prefix log: nothing after the first bad line is trusted.
            state.rejected_lines += (len(lines) - index
                                     + (1 if tail else 0))
            ended_early = True
            break
        state.trusted_bytes += len(line) + 1
        if state.sealed:
            # Records after a seal are not ours to trust.
            state.rejected_lines += (len(lines) - index - 1
                                     + (1 if tail else 0))
            ended_early = True
            break
    if tail and not ended_early:
        state.torn_tail = True
    return state


def truncate_to_trusted(path: Union[str, Path],
                        state: JournalState) -> None:
    """Cut a journal back to its trusted prefix before resuming it.

    Required before any post-recovery append: a torn fragment left at
    the tail would otherwise splice itself onto the next record,
    turning one unacknowledged line into a mid-file garbage line that
    ends the trusted prefix *before* later acknowledged batches.
    Dropping the tail is safe by the write-ahead ordering -- nothing
    past ``trusted_bytes`` was ever acknowledged.
    """
    if not (state.torn_tail or state.rejected_lines):
        return
    try:
        fd = os.open(path, os.O_RDWR)
    except OSError:
        return
    try:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            os.ftruncate(fd, state.trusted_bytes)
            os.fsync(fd)
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
    except OSError:  # pragma: no cover - racy platform failures
        pass
    finally:
        os.close(fd)


def _validated_record(line: bytes) -> Optional[Dict[str, Any]]:
    """Parse and shape-check one journal line; None to distrust it."""
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if not isinstance(record, dict):
        return None
    kind = record.get("type")
    if kind == "open":
        if record.get("format") != JOURNAL_FORMAT:
            return None
        if not isinstance(record.get("session"), str):
            return None
        if not isinstance(record.get("graph"), dict):
            return None
        if not isinstance(record.get("mode"), str):
            return None
        watchdog = record.get("watchdog")
        if watchdog is not None and not isinstance(watchdog, dict):
            return None
        source_done = record.get("source_done")
        if isinstance(source_done, bool) or not isinstance(source_done, int) \
                or source_done < 0:
            return None
        if not isinstance(record.get("auto_well_pose"), bool):
            return None
        return record
    if kind == "events":
        seq = record.get("seq")
        if isinstance(seq, bool) or not isinstance(seq, int) or seq < 1:
            return None
        events = record.get("events")
        if not isinstance(events, list) or len(events) > _MAX_BATCH_EVENTS:
            return None
        for item in events:
            if not isinstance(item, list) or len(item) != 2:
                return None
            anchor, cycle = item
            if not isinstance(anchor, str):
                return None
            if isinstance(cycle, bool) or not isinstance(cycle, int) \
                    or not 0 <= cycle <= _MAX_CYCLE:
                return None
        return record
    if kind == "seal":
        last_seq = record.get("last_seq")
        if isinstance(last_seq, bool) or not isinstance(last_seq, int) \
                or last_seq < 0:
            return None
        return record
    return None


def _apply_record(state: JournalState, record: Dict[str, Any]) -> bool:
    """Fold one validated record into *state*; False ends the prefix."""
    kind = record["type"]
    if kind == "open":
        if state.open_record is not None:
            return False  # a second genesis is garbage
        state.open_record = record
        return True
    if state.open_record is None:
        return False  # events before the genesis are untrusted
    if kind == "events":
        seq = record["seq"]
        if seq != state.last_seq + 1:
            # Gaps and duplicates both end the trusted prefix: a
            # duplicate means two writers raced, a gap means a record
            # was lost; neither prefix extension is safe to replay.
            return False
        state.batches.append(
            (seq, [(anchor, cycle) for anchor, cycle in record["events"]]))
        return True
    if kind == "seal":
        if record["last_seq"] != state.last_seq:
            return False
        state.sealed = True
        return True
    return False  # pragma: no cover - _validated_record gates kinds


def scan_journal_dir(journal_dir: Union[str, Path]
                     ) -> Dict[str, JournalState]:
    """Read every ``*.journal`` in *journal_dir*, keyed by session id.

    Only file stems that are plausible session ids (alphanumeric with
    dashes) are considered, so a hostile directory entry cannot smuggle
    path tricks into the session table.  Sealed and unrecoverable
    journals are returned too -- the caller decides (the session table
    resumes recoverable ones and answers 410 for sealed ones).
    """
    states: Dict[str, JournalState] = {}
    root = Path(journal_dir)
    try:
        paths = sorted(root.glob(f"*{JOURNAL_SUFFIX}"))
    except OSError:
        return states
    for path in paths:
        stem = path.name[:-len(JOURNAL_SUFFIX)]
        if not stem or not all(c.isalnum() or c == "-" for c in stem):
            continue
        states[stem] = read_journal(path)
    return states


def journal_path(journal_dir: Union[str, Path], session_id: str) -> Path:
    return Path(journal_dir) / f"{session_id}{JOURNAL_SUFFIX}"


# ----------------------------------------------------------------------
# deterministic replay
# ----------------------------------------------------------------------


@dataclass
class BatchOutcome:
    """What applying one acknowledged batch did to the executor.

    This is the *response* the service acknowledged the batch with
    (minus transport dressing), kept per sequence number so a re-POSTed
    batch -- an at-least-once client retrying a lost acknowledgement --
    receives the original answer.  Replay recomputes these outcomes
    deterministically, so the idempotency table survives a crash.

    Attributes:
        seq: the batch's sequence number.
        issues: operation starts committed *by this batch* (on a
            FALLBACK degradation, the full static start map).
        done: completion cycles recorded by this batch.
        timeouts: watchdog firings recorded by this batch (wire shape).
        degraded: executor state after the batch.
        complete: True once every operation has issued.
        cycles: the executor's high-water cycle after the batch.
        error: taxonomy error type when the batch aborted the session
            (WatchdogTimeoutError under ABORT / exhausted RETRY).
        error_message: the abort's human-readable message.
    """

    seq: int
    issues: Dict[str, int] = field(default_factory=dict)
    done: Dict[str, int] = field(default_factory=dict)
    timeouts: List[Dict[str, int]] = field(default_factory=list)
    degraded: bool = False
    complete: bool = False
    cycles: int = 0
    error: Optional[str] = None
    error_message: str = ""

    def to_dict(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "seq": self.seq,
            "issues": dict(self.issues),
            "done": dict(self.done),
            "timeouts": [dict(t) for t in self.timeouts],
            "degraded": self.degraded,
            "complete": self.complete,
            "cycles": self.cycles,
        }
        if self.error is not None:
            body["error"] = self.error_message
            body["error_type"] = self.error
        return body


def validate_batch(executor: "OnlineExecutor",
                   events: List[Tuple[str, int]]) -> None:
    """Pre-flight one batch against *executor*'s current stream state.

    Raises :class:`~repro.core.exceptions.MalformedInputError` exactly
    when :meth:`~repro.runtime.executor.OnlineExecutor.feed` would --
    unknown anchor, bad cycle, out-of-order stream -- but *before*
    anything is journaled or applied, so a rejected batch leaves both
    the journal and the executor untouched (no partial application).
    """
    from repro.core.exceptions import MalformedInputError

    clock = executor._stream_clock
    anchors = executor._anchors
    source = executor._source
    for anchor, cycle in events:
        if not isinstance(anchor, str) or anchor not in anchors \
                or anchor == source:
            raise MalformedInputError(
                f"completion event names {anchor!r}, which is not a "
                f"non-source anchor of the scheduled graph")
        if isinstance(cycle, bool) or not isinstance(cycle, int) or cycle < 0:
            raise MalformedInputError(
                f"completion cycle for {anchor!r} must be a non-negative "
                f"int, got {cycle!r}")
        if cycle < clock:
            raise MalformedInputError(
                f"event stream is not cycle-ordered: {anchor!r} at cycle "
                f"{cycle} after cycle {clock}")
        clock = cycle


def apply_batch(executor: "OnlineExecutor", seq: int,
                events: List[Tuple[str, int]]) -> BatchOutcome:
    """Feed one validated batch; return the issue-cycle delta.

    The delta is computed by diffing the execution log around the
    feeds, so the live acknowledgement path and the recovery replay
    path produce byte-identical outcomes for the same prefix (the
    anomaly-freedom invariant makes the underlying state identical).

    A watchdog ABORT inside the batch is caught and recorded as the
    batch's outcome -- deterministically, so replaying the same journal
    reproduces the same abort at the same event.
    """
    from repro.core.exceptions import WatchdogTimeoutError
    from repro.runtime.events import CompletionEvent

    log = executor.log
    issues_before = dict(log.issues)
    done_before = dict(log.done)
    timeouts_before = len(log.timeouts)
    outcome = BatchOutcome(seq=seq)
    try:
        for anchor, cycle in events:
            executor.feed(CompletionEvent(anchor, cycle))
    except WatchdogTimeoutError as error:
        outcome.error = type(error).__name__
        outcome.error_message = str(error)
    outcome.issues = {op: cycle for op, cycle in log.issues.items()
                      if issues_before.get(op) != cycle}
    outcome.done = {op: cycle for op, cycle in log.done.items()
                    if done_before.get(op) != cycle}
    outcome.timeouts = [
        {"anchor": t.anchor, "cycle": t.cycle, "bound": t.bound,
         "rearm": t.rearm}
        for t in log.timeouts[timeouts_before:]]
    outcome.degraded = log.degraded
    outcome.complete = not executor._pending
    outcome.cycles = log.cycles
    return outcome


def watchdog_to_dict(config: Any) -> Optional[Dict[str, Any]]:
    """Serialize a :class:`~repro.core.watchdog.WatchdogConfig` into the
    journal's (and the service wire's) plain-dict shape."""
    if config is None:
        return None
    return {
        "bounds": dict(config.bounds),
        "default": config.default,
        "policy": config.policy.value,
        "max_rearms": config.max_rearms,
        "backoff": config.backoff,
        "fallback_budget": config.fallback_budget,
    }


def executor_from_open_record(record: Dict[str, Any],
                              budget: Any = None) -> "OnlineExecutor":
    """Rebuild the genesis executor an ``open`` record describes.

    Re-schedules the serialized graph through the same hardened
    pipeline the create path used -- deterministic, so the recovered
    static schedule (and hence every replayed issue cycle) is
    bit-identical to the original.
    """
    from repro.core.anchors import AnchorMode
    from repro.core.watchdog import WatchdogConfig, WatchdogPolicy
    from repro.resilience.guard import guarded_schedule, untrusted_graph_from_dict
    from repro.runtime.executor import OnlineExecutor

    graph = untrusted_graph_from_dict(record["graph"], budget)
    watchdog = None
    if record.get("watchdog") is not None:
        kwargs = dict(record["watchdog"])
        if kwargs.get("policy") is not None:
            kwargs["policy"] = WatchdogPolicy(kwargs["policy"])
        watchdog = WatchdogConfig(**kwargs)
    schedule = guarded_schedule(
        graph, budget, anchor_mode=AnchorMode(record["mode"]),
        auto_well_pose=record["auto_well_pose"])
    return OnlineExecutor(schedule, watchdog=watchdog,
                          source_done=record["source_done"])


def replay_journal(state: JournalState, budget: Any = None,
                   ) -> Tuple["OnlineExecutor", Dict[int, BatchOutcome]]:
    """Recover a live executor from one journal's trusted prefix.

    Returns ``(executor, outcomes)`` where *outcomes* maps every
    acknowledged sequence number to its recomputed
    :class:`BatchOutcome` -- the idempotency table, rebuilt.  The
    executor resumes accepting events exactly where the acknowledged
    prefix ended (PR-8 anomaly freedom makes the replayed state
    bit-identical to the uninterrupted run's).

    Raises ``ValueError`` when the journal has no trusted genesis.
    """
    if state.open_record is None:
        raise ValueError("journal has no trusted open record")
    executor = executor_from_open_record(state.open_record, budget)
    outcomes: Dict[int, BatchOutcome] = {}
    for seq, events in state.batches:
        outcomes[seq] = apply_batch(executor, seq, events)
    return executor, outcomes
