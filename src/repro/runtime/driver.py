"""Drive the online executor from delay profiles and fault plans.

The executor consumes completion events; something has to put them on
the wire.  This module closes the loop two ways:

* :func:`events_from_result` -- lift a finished control simulation's
  done times into the event stream a live environment would have
  emitted (the replay path for recorded runs);
* :func:`drive` -- synthesize the wire *causally*: each anchor's
  completion pulse is scheduled the moment the executor commits its
  start, at ``start + delay`` perturbed by an optional
  :class:`~repro.resilience.faults.FaultPlan` (late / early / dropped /
  stalled completions, spurious pulses).  This is the honest runtime
  harness -- it needs no oracle simulation to know the pulse times, so
  it also covers runs the simulator would abort or degrade.

:func:`replay_faults` runs both sides -- the cycle-accurate
:func:`~repro.resilience.faults.run_with_faults` simulation and the
event-driven executor -- on the same environment and diffs them field
by field.  The two implementations share nothing but the watchdog
window arithmetic, so agreement is strong evidence both got the
boundary semantics right; the runtime chaos campaign fails on any
mismatch.

Tie-breaking matters: a spurious pulse landing on the same cycle as a
genuine completion is processed *first*, because the simulator injects
pulses at the top of the cycle, before the start fixpoint runs.  The
heap ordering below encodes exactly that.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Set, Tuple

if TYPE_CHECKING:
    from repro.sim.control_sim import ControlSimResult

from repro.core.delay import is_stalled
from repro.core.exceptions import WatchdogTimeoutError
from repro.core.schedule import RelativeSchedule
from repro.core.watchdog import WatchdogConfig
from repro.resilience.faults import FaultPlan, FaultRun, run_with_faults
from repro.runtime.events import CompletionEvent, ExecutionLog
from repro.runtime.executor import OnlineExecutor

#: Heap priority of injected spurious pulses vs genuine completions on
#: the same cycle (the simulator processes injections first).
_SPURIOUS, _GENUINE = 0, 1


def events_from_result(schedule: RelativeSchedule,
                       result: "ControlSimResult") -> List[CompletionEvent]:
    """The completion stream a finished simulation's environment emitted.

    One event per non-source anchor that completed, at its recorded done
    cycle, in cycle order.  Same-cycle ties are broken by forward
    topological position: when an anchor and an operation it gates both
    finish on one cycle, the gating anchor's event must arrive first or
    the dependent's completion would precede its own (not yet committed)
    start and be rejected as spurious.  Only meaningful for non-degraded
    results -- a degraded simulation's done times are the static
    fallback, not observations.
    """
    source = schedule.graph.source
    order = {name: position for position, name
             in enumerate(schedule.graph.forward_topological_order())}
    pairs = sorted((result.done_times[a], order[a], a)
                   for a in schedule.graph.anchors
                   if a != source and a in result.done_times)
    return [CompletionEvent(anchor, cycle) for cycle, _, anchor in pairs]


def drive(schedule: RelativeSchedule,
          profile: Optional[Mapping[str, int]] = None,
          plan: Optional[FaultPlan] = None, *,
          watchdog: Optional[WatchdogConfig] = None,
          source_done: int = 0) -> ExecutionLog:
    """Execute *schedule* online against a synthesized environment.

    Every anchor's completion pulse is scheduled causally from its
    committed start (``start + profile delay``, perturbed by *plan*),
    so no oracle run is needed.  Raises
    :class:`~repro.core.exceptions.WatchdogTimeoutError` exactly when
    the simulators would (ABORT firings, exhausted RETRY windows).
    """
    profile = dict(profile or {})
    plan = plan or FaultPlan()
    override = plan.completion_override()
    executor = OnlineExecutor(schedule, watchdog=watchdog,
                              source_done=source_done)
    source = schedule.graph.source

    heap: List[Tuple[int, int, int, str]] = []
    seq = 0
    for anchor, cycle in sorted(plan.spurious_pulses().items()):
        heapq.heappush(heap, (cycle, _SPURIOUS, seq, anchor))
        seq += 1

    scheduled: Set[str] = set()

    def schedule_completions() -> None:
        """Put pulses on the wire for freshly issued anchors."""
        nonlocal seq
        for anchor in executor.log.issues:
            if (anchor in scheduled or anchor == source
                    or anchor not in executor._anchors):
                continue
            scheduled.add(anchor)
            start = executor.log.issues[anchor]
            delay = profile.get(anchor, 0)
            nominal = None if is_stalled(delay) else start + delay
            actual = override(anchor, start, nominal) if override else nominal
            if actual is not None:
                heapq.heappush(heap,
                               (max(start, actual), _GENUINE, seq, anchor))
                seq += 1

    schedule_completions()
    while heap and executor.active:
        cycle, kind, _, anchor = heapq.heappop(heap)
        executor.feed(CompletionEvent(anchor, cycle), pulse=kind == _SPURIOUS)
        schedule_completions()
    return executor.close()


@dataclass
class RuntimeReplay:
    """One environment executed by both implementations, diffed.

    Attributes:
        sim: the cycle-accurate simulation's classified outcome.
        log: the executor's log (None only when it aborted).
        error: the taxonomy error that aborted the executor, if any.
        mismatches: field-by-field divergences between the two; an
            equivalent replay has none.
    """

    sim: FaultRun
    log: Optional[ExecutionLog] = None
    error: Optional[WatchdogTimeoutError] = None
    mismatches: List[str] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches


def replay_faults(schedule: RelativeSchedule,
                  profile: Optional[Mapping[str, int]] = None,
                  plan: Optional[FaultPlan] = None, *,
                  watchdog: Optional[WatchdogConfig] = None,
                  style: str = "counter",
                  max_cycles: int = 100000) -> RuntimeReplay:
    """Run simulator and executor on one environment and diff them.

    The comparison is exact where the semantics promise it:

    * both abort -> same anchor, fire cycle and spent re-arms;
    * both degrade -> same static start/done times and timeout records;
    * both complete -> identical start times, done times, timeout
      records, re-arm counts and spurious-rejection counts.

    The only tolerated asymmetry is a simulator *hang* (a stall with no
    watchdog): the event-driven executor cannot hang -- it closes with
    the stall recorded -- so a hung simulation only requires the
    executor's log to be incomplete.
    """
    sim = run_with_faults(schedule, profile, plan, watchdog=watchdog,
                          style=style, max_cycles=max_cycles)
    replay = RuntimeReplay(sim=sim)
    try:
        replay.log = drive(schedule, profile, plan, watchdog=watchdog)
    except WatchdogTimeoutError as error:
        replay.error = error
    _diff(replay)
    return replay


def _diff(replay: RuntimeReplay) -> None:
    sim, log, error = replay.sim, replay.log, replay.error
    out = replay.mismatches

    if sim.error is not None:
        if error is None:
            out.append(f"simulator aborted ({sim.error.anchor!r} at cycle "
                       f"{sim.error.cycle}) but the executor did not")
        else:
            for attr in ("anchor", "cycle", "rearms"):
                lhs, rhs = getattr(sim.error, attr), getattr(error, attr)
                if lhs != rhs:
                    out.append(f"abort {attr}: sim {lhs!r} != runtime {rhs!r}")
        return
    if error is not None:
        out.append(f"executor aborted ({error.anchor!r} at cycle "
                   f"{error.cycle}) but the simulator did not")
        return
    if sim.result is None:
        # The simulator hung (stall, no watchdog); the executor closed.
        if log.complete and not log.stalled:
            out.append("simulator hung but the executor log is complete")
        return

    result = sim.result
    if result.degraded != log.degraded:
        out.append(f"degraded: sim {result.degraded} != runtime {log.degraded}")
        return
    _diff_times("start", result.start_times, log.issues, out)
    _diff_times("done", result.done_times, log.done, out)
    if result.timeouts != log.timeouts:
        out.append(f"timeouts: sim {result.timeouts} != "
                   f"runtime {log.timeouts}")
    if dict(result.rearms) != dict(log.rearms):
        out.append(f"rearms: sim {result.rearms} != runtime {log.rearms}")
    if result.spurious_rejections != log.spurious_rejections:
        out.append(f"spurious rejections: sim {result.spurious_rejections} "
                   f"!= runtime {log.spurious_rejections}")
    if not result.degraded and sorted(result.stalled) != sorted(log.stalled):
        out.append(f"stalled: sim {sorted(result.stalled)} != "
                   f"runtime {sorted(log.stalled)}")


def _diff_times(what: str, sim_times: Dict[str, int],
                run_times: Dict[str, int], out: List[str]) -> None:
    for vertex in sorted(set(sim_times) | set(run_times)):
        lhs, rhs = sim_times.get(vertex), run_times.get(vertex)
        if lhs != rhs:
            out.append(f"{what}[{vertex!r}]: sim {lhs} != runtime {rhs}")
