"""Online dynamic execution of relative schedules.

The paper proves a minimum relative schedule is valid for *every*
anchor-delay profile; this package cashes that in at run time.  An
:class:`~repro.runtime.executor.OnlineExecutor` consumes an ordered
stream of anchor-completion events, folds each observed delay into the
constraint graph (:meth:`~repro.core.graph.ConstraintGraph.
bind_anchor_delay`) and warm-starts the incremental scheduler from the
previous offsets -- never re-solving from scratch -- so every
operation's start is committed the moment its anchors have completed,
at exactly the cycle the static schedule's ``start_times`` would give
for the observed profile (the *anomaly-freedom* invariant, pinned by
the qa oracle's 13th check).

Late or missing completions route through the PR-4 watchdog machinery
with cycle-accurate simulator semantics; :mod:`repro.runtime.driver`
replays fault plans as event streams and diffs the executor against
the control-unit simulation, and :mod:`repro.runtime.chaos` runs that
differential at campaign scale.
"""

from repro.runtime.driver import (
    RuntimeReplay,
    drive,
    events_from_result,
    replay_faults,
)
from repro.runtime.events import CompletionEvent, ExecutionLog, IssueRecord
from repro.runtime.executor import OnlineExecutor, execute_stream
from repro.runtime.journal import (
    BatchOutcome,
    JournalState,
    SessionJournal,
    apply_batch,
    read_journal,
    replay_journal,
    scan_journal_dir,
    validate_batch,
)
from repro.runtime.profiles import PROFILE_FAMILIES, sample_profile

__all__ = [
    "BatchOutcome",
    "CompletionEvent",
    "ExecutionLog",
    "IssueRecord",
    "JournalState",
    "OnlineExecutor",
    "PROFILE_FAMILIES",
    "RuntimeReplay",
    "SessionJournal",
    "apply_batch",
    "drive",
    "events_from_result",
    "execute_stream",
    "read_journal",
    "replay_faults",
    "replay_journal",
    "sample_profile",
    "scan_journal_dir",
    "validate_batch",
]
