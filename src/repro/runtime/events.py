"""Event and log types for the online executor.

A *completion event* is the runtime's unit of input: anchor ``a``'s
``done`` signal observed at an absolute cycle.  The executor consumes an
ordered stream of them and produces an *issue log*: the cycle at which
every operation's start was committed.  Both types are plain data so
they serialize trivially over the service wire (``/execute``) and into
the chaos campaign's reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.watchdog import WatchdogTimeout


@dataclass(frozen=True)
class CompletionEvent:
    """Anchor *anchor*'s ``done`` observed at absolute cycle *cycle*."""

    anchor: str
    cycle: int


@dataclass(frozen=True)
class IssueRecord:
    """One committed operation start.

    Attributes:
        op: the operation issued.
        cycle: the absolute start cycle committed for it.
        event_index: index of the completion event whose processing made
            the operation ready (-1 for operations issuable before any
            event, i.e. gated only by the source).
    """

    op: str
    cycle: int
    event_index: int = -1


@dataclass
class ExecutionLog:
    """Outcome of one executor run (mirrors ``ControlSimResult``).

    Attributes:
        issues: committed start cycle of every issued operation.
        done: completion cycle of every completed operation (anchors
            from their events, bounded operations at start + delay).
        issue_order: every issue in commit order, with the event that
            triggered it -- the per-prefix record the anomaly-freedom
            oracle replays.
        events: completion events consumed (spurious ones included).
        reschedules: warm incremental reschedules performed (one per
            accepted completion; never a from-scratch run).
        timeouts: watchdog firings, in cycle order.
        degraded: True when a FALLBACK watchdog replaced the relative
            execution with the static worst-case schedule.
        stalled: anchors issued but never completed by stream end.
        unissued: operations never issued (gated by a stalled anchor).
        spurious_rejections: events rejected because their anchor had
            not started (the done latch arms at start).
        duplicates: events for already-completed anchors (absorbed
            silently, like a pulse after ``done`` in the simulators).
        rearms: per-anchor RETRY re-arm windows spent.
        cycles: the largest cycle the run committed (issue, done or
            watchdog firing).
    """

    issues: Dict[str, int] = field(default_factory=dict)
    done: Dict[str, int] = field(default_factory=dict)
    issue_order: List[IssueRecord] = field(default_factory=list)
    events: int = 0
    reschedules: int = 0
    timeouts: List[WatchdogTimeout] = field(default_factory=list)
    degraded: bool = False
    stalled: List[str] = field(default_factory=list)
    unissued: List[str] = field(default_factory=list)
    spurious_rejections: int = 0
    duplicates: int = 0
    rearms: Dict[str, int] = field(default_factory=dict)
    cycles: int = 0

    @property
    def complete(self) -> bool:
        """True when every operation was issued (no stalled gate)."""
        return not self.unissued

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready document (the ``/execute`` response body)."""
        return {
            "issues": dict(self.issues),
            "done": dict(self.done),
            "issue_order": [
                {"op": r.op, "cycle": r.cycle, "event": r.event_index}
                for r in self.issue_order],
            "events": self.events,
            "reschedules": self.reschedules,
            "timeouts": [
                {"anchor": t.anchor, "cycle": t.cycle,
                 "bound": t.bound, "rearm": t.rearm}
                for t in self.timeouts],
            "degraded": self.degraded,
            "stalled": list(self.stalled),
            "unissued": list(self.unissued),
            "spurious_rejections": self.spurious_rejections,
            "duplicates": self.duplicates,
            "rearms": dict(self.rearms),
            "complete": self.complete,
            "cycles": self.cycles,
        }
