"""The online dynamic executor: live completion streams, warm reschedules.

The paper's central result is that a relative schedule stays valid for
*every* anchor-delay profile -- which means a static schedule can be
executed against live completion events without re-solving from
scratch.  :class:`OnlineExecutor` does exactly that:

* it holds the current *rebound* schedule -- the minimum relative
  schedule of the graph with every observed anchor delay folded in as a
  bound (:func:`repro.core.incremental.reschedule_with_observed`
  semantics, run in place on the executor's own graph copy);
* each accepted completion performs **one warm incremental reschedule**
  (:meth:`~repro.core.scheduler.IterativeIncrementalScheduler.run_from`
  from the previous offsets -- sound because observed delays only
  lengthen paths, Lemma 8) and never a from-scratch run;
* an operation *issues* the moment every anchor in its remaining anchor
  set has completed, at ``max(done(a) + sigma_a(v))`` -- by the minimum
  schedule's any-profile optimality this equals the static schedule's
  ``start_times(observed)[v]``, the **anomaly-freedom** invariant the
  qa oracle pins (no completion may delay another op's start relative
  to the static relative schedule);
* late and missing completions route through the PR-4 watchdog
  machinery with the same cycle-accurate boundary semantics as
  :func:`repro.sim.control_sim.simulate_control` and the WAIT handling
  of :func:`repro.sim.engine.execute_design`: a completion landing at
  ``start + W(a)`` is in time, the watchdog fires one cycle later,
  RETRY re-arms over :meth:`~repro.core.watchdog.WatchdogConfig.
  rearm_window` windows, FALLBACK degrades to the static worst-case
  schedule, ABORT raises the taxonomy error.

The executor is deliberately event-driven, not cycle-driven: between
events no work happens, so sustained throughput is bounded by the warm
reschedule, which ``benchmarks/bench_runtime.py`` pins.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple, Union

if TYPE_CHECKING:
    from repro.core.graph import ConstraintGraph
    from repro.core.resultcache import ScheduleCache

from repro.core.anchors import AnchorMode, anchor_sets_for_mode
from repro.core.delay import is_unbounded
from repro.core.exceptions import MalformedInputError, WatchdogTimeoutError
from repro.core.schedule import RelativeSchedule
from repro.core.scheduler import IterativeIncrementalScheduler
from repro.core.watchdog import WatchdogConfig, WatchdogPolicy, WatchdogTimeout
from repro.observability.tracer import STATE as _OBS
from repro.runtime.events import CompletionEvent, ExecutionLog, IssueRecord


class OnlineExecutor:
    """Consume an ordered anchor-completion stream; commit issue cycles.

    Args:
        schedule: the static minimum relative schedule to execute (any
            anchor mode; readiness and issue cycles are mode-invariant
            by Theorem 6).
        watchdog: timeout bounds and degradation policy for late or
            missing completions; defaults to the bounds attached to the
            schedule by ``schedule_graph(..., watchdog=...)`` (ABORT
            policy), like the simulators.
        source_done: the cycle the source's activation handshake
            completed (0 unless the environment says otherwise).

    Raises:
        MalformedInputError: from :meth:`feed`, for events that are not
            well-formed (unknown anchor, negative cycle, out-of-order
            stream).
        WatchdogTimeoutError: from :meth:`feed`/:meth:`close`, when a
            monitored anchor exceeds its allowance under ABORT (or
            RETRY exhausts its re-arm windows).
    """

    def __init__(self, schedule: RelativeSchedule, *,
                 watchdog: Optional[WatchdogConfig] = None,
                 source_done: int = 0) -> None:
        if watchdog is None and schedule.watchdog:
            watchdog = WatchdogConfig(bounds=schedule.watchdog)
        self.static = schedule
        self.watchdog = watchdog
        self.schedule = schedule  # the current rebound schedule
        self.log = ExecutionLog()
        self._graph = schedule.graph.copy()
        self._mode = schedule.anchor_mode
        # FULL-mode anchor sets update in O(V) per completion: binding
        # an anchor makes it bounded without touching any path, so the
        # new sets are exactly the old ones minus that anchor.  Other
        # modes recompute (redundancy can change when weights move).
        self._anchor_sets = (dict(schedule.anchor_sets)
                             if self._mode is AnchorMode.FULL else None)
        self._source = schedule.graph.source
        self._anchors = set(schedule.graph.anchors)
        self._static_delta = {v.name: v.delay
                              for v in schedule.graph.vertices()}
        self._done: Dict[str, int] = {self._source: source_done}
        self._pending: List[str] = [
            v for v in schedule.graph.forward_topological_order()
            if v != self._source]
        self._deadlines: Dict[str, int] = {}
        self._arm_seq: Dict[str, int] = {}
        self._armed = 0
        self._max_start = max(0, source_done)
        self._stream_clock = 0
        self._closed = False
        self._feed_seconds = 0.0
        self.log.issues[self._source] = 0
        self.log.done[self._source] = source_done
        self.log.cycles = max(0, source_done)
        self._issue_ready(-1)

    # -- state ---------------------------------------------------------

    @property
    def active(self) -> bool:
        """False once the run degraded, aborted or was closed."""
        return not (self._closed or self.log.degraded)

    @property
    def observed(self) -> Dict[str, int]:
        """Anchor -> observed delay (``done - start``) accepted so far."""
        return {a: self.log.done[a] - self.log.issues[a]
                for a in self.log.done
                if a != self._source and a in self._anchors}

    def state_snapshot(self) -> Dict[str, object]:
        """The executor's complete observable state, as plain data.

        Two executors that consumed the same event prefix must produce
        equal snapshots -- the bit-identity contract the crash-recovery
        oracle check and the chaos ``--crash`` mode compare on.  Covers
        the execution log, the issue frontier, every armed watchdog
        (deadline *and* arming order, so re-arm tie-breaks survive a
        restart), and the stream clock.
        """
        return {
            "issues": dict(self.log.issues),
            "done": dict(self.log.done),
            "issue_order": [(r.op, r.cycle) for r in self.log.issue_order],
            "events": self.log.events,
            "reschedules": self.log.reschedules,
            "timeouts": [(t.anchor, t.cycle, t.bound, t.rearm)
                         for t in self.log.timeouts],
            "rearms": dict(self.log.rearms),
            "duplicates": self.log.duplicates,
            "spurious_rejections": self.log.spurious_rejections,
            "degraded": self.log.degraded,
            "cycles": self.log.cycles,
            "pending": list(self._pending),
            "deadlines": dict(self._deadlines),
            "arm_order": sorted(self._deadlines,
                                key=lambda a: self._arm_seq[a]),
            "max_start": self._max_start,
            "stream_clock": self._stream_clock,
            "observed": self.observed,
            "closed": self._closed,
        }

    # -- the event loop ------------------------------------------------

    def feed(self, event: CompletionEvent, *, pulse: bool = False) -> None:
        """Process one completion event (stream must be cycle-ordered).

        A degraded run absorbs further events without effect (the
        static fallback already committed every start); a closed run
        rejects them.

        *pulse* marks a bare edge-detected ``done`` pulse with no
        handshake context (e.g. an injected spurious signal): the done
        latch only arms at the *end* of the start cycle, so a pulse
        landing on the start cycle itself is rejected, exactly as the
        simulator's top-of-cycle injection path does.  A normal
        completion event on the start cycle is a genuine zero-delay
        finish and is accepted.
        """
        if self._closed:
            raise RuntimeError("feed() on a closed executor")
        if self.log.degraded:
            return
        anchor, cycle = event.anchor, event.cycle
        if anchor not in self._anchors or anchor == self._source:
            raise MalformedInputError(
                f"completion event names {anchor!r}, which is not a "
                f"non-source anchor of the scheduled graph")
        if isinstance(cycle, bool) or not isinstance(cycle, int) or cycle < 0:
            raise MalformedInputError(
                f"completion cycle for {anchor!r} must be a non-negative "
                f"int, got {cycle!r}")
        if cycle < self._stream_clock:
            raise MalformedInputError(
                f"event stream is not cycle-ordered: {anchor!r} at cycle "
                f"{cycle} after cycle {self._stream_clock}")
        t0 = time.perf_counter()
        self._stream_clock = cycle
        # Fire every watchdog whose (possibly re-armed) deadline passed
        # strictly before this event; a deadline equal to the event's
        # cycle stays armed -- completions landing on the deadline cycle
        # are in time, matching both simulators.
        self._advance(cycle)
        if self.log.degraded:
            self._feed_seconds += time.perf_counter() - t0
            return
        index = self.log.events
        self.log.events += 1
        tracer = _OBS.tracer
        if tracer.enabled:
            tracer.count("runtime.events")
            tracer.event("runtime.event", anchor=anchor, cycle=cycle)
        if anchor in self.log.done:
            # A pulse after done is electrically invisible (the latch is
            # already set); mirror the simulators and absorb it.
            self.log.duplicates += 1
            self._feed_seconds += time.perf_counter() - t0
            return
        issued = self.log.issues.get(anchor)
        if issued is None or cycle < issued or (pulse and cycle == issued):
            # The done latch is only armed after start: a pulse for an
            # idle anchor is detectably bogus and dropped.
            self.log.spurious_rejections += 1
            self._feed_seconds += time.perf_counter() - t0
            return
        self._complete(anchor, cycle, index)
        self._feed_seconds += time.perf_counter() - t0

    def run(self, events: Iterable[CompletionEvent]) -> ExecutionLog:
        """Feed a whole stream, then :meth:`close`."""
        for event in events:
            if not self.active:
                break
            self.feed(event)
        return self.close()

    def close(self) -> ExecutionLog:
        """End of stream: route missing completions through the
        watchdogs, then seal and return the log.

        Idempotent.  With operations still unissued, every armed
        watchdog fires (re-arming per policy until recovery is
        impossible), so a missing completion ends in an abort, a
        degradation, or -- unmonitored -- a ``stalled`` entry in the log.
        """
        if self._closed:
            return self.log
        if not self.log.degraded and self._pending:
            self._advance(None)
        if not self.log.degraded:
            self.log.stalled = [
                a for a in self.log.issues
                if a in self._anchors and a != self._source
                and a not in self.log.done]
            self.log.unissued = list(self._pending)
        self._closed = True
        tracer = _OBS.tracer
        if tracer.enabled and self.log.events:
            seconds = max(self._feed_seconds, 1e-9)
            tracer.add_time("runtime.feed", self._feed_seconds)
            tracer.event("runtime.throughput", events=self.log.events,
                         reschedules=self.log.reschedules,
                         events_per_sec=round(self.log.events / seconds, 1))
        return self.log

    # -- internals -----------------------------------------------------

    def _complete(self, anchor: str, cycle: int, index: int) -> None:
        """Accept a completion: rebind, warm-reschedule, issue."""
        self._deadlines.pop(anchor, None)
        self.log.done[anchor] = cycle
        self.log.cycles = max(self.log.cycles, cycle)
        self._done[anchor] = cycle
        observed = cycle - self.log.issues[anchor]

        tracer = _OBS.tracer
        if tracer.enabled:
            tracer.begin_span("runtime.reschedule")
        try:
            self._graph.bind_anchor_delay(anchor, observed)
            if self._anchor_sets is not None:
                self._anchor_sets = {
                    v: (tags - {anchor} if anchor in tags else tags)
                    for v, tags in self._anchor_sets.items()}
                anchor_sets = self._anchor_sets
            else:
                anchor_sets = anchor_sets_for_mode(self._graph, self._mode)
            # The reference dict loops beat the indexed kernel 2x+ here
            # at every graph size: a warm restart converges in a sweep
            # or two, while the indexed path would recompile its arrays
            # at every event (the rebind bumps the graph version).
            scheduler = IterativeIncrementalScheduler(
                self._graph, anchor_mode=self._mode, anchor_sets=anchor_sets,
                use_indexed=False)
            self.schedule = scheduler.run_from(self.schedule.offsets)
        finally:
            if tracer.enabled:
                tracer.end_span()
        self.log.reschedules += 1
        if tracer.enabled:
            tracer.count("runtime.reschedules")
        self._issue_ready(index)

    def _issue_ready(self, event_index: int) -> None:
        """Issue every operation whose anchors have all completed.

        Readiness and issue cycles come from the *static* offsets --
        the paper's runtime rule ``T(v) = max(done(a) + sigma_a(v))``
        over the original anchor sets, exact for every profile.  The
        rebound schedule cannot serve here: binding the last anchor of
        a vertex that has no forward path from the source (legal in a
        well-posed but non-polar graph) leaves it an empty offsets row,
        and the relative representation has no anchor left to carry
        its now-absolute start.
        """
        offsets = self.static.offsets
        done = self._done
        still: List[str] = []
        for vertex in self._pending:
            terms = offsets.get(vertex, {})
            if all(a in done for a in terms):
                start = max((done[a] + sigma for a, sigma in terms.items()),
                            default=0)
                self._commit(vertex, start, event_index)
            else:
                still.append(vertex)
        self._pending = still
        if not self._pending and self._deadlines:
            # Every start is committed.  The per-cycle simulator keeps
            # checking watchdogs up to and including the cycle the last
            # operation starts, then returns -- so deadlines at or
            # before the last start still fire (an ABORT here matches
            # the simulator raising on its final cycle), while deadlines
            # beyond it are disarmed: a late completion cannot
            # retro-fire a watchdog the simulator never checked.
            self._advance(self._max_start + 1)
            if not self.log.degraded:
                self._deadlines.clear()

    def _commit(self, vertex: str, start: int, event_index: int) -> None:
        self.log.issues[vertex] = start
        self.log.issue_order.append(IssueRecord(vertex, start, event_index))
        self.log.cycles = max(self.log.cycles, start)
        self._max_start = max(self._max_start, start)
        delta = self._static_delta[vertex]
        if not is_unbounded(delta):
            self.log.done[vertex] = start + delta
            self.log.cycles = max(self.log.cycles, start + delta)
        elif self.watchdog is not None:
            bound = self.watchdog.bound_for(vertex)
            if bound is not None:
                self._deadlines[vertex] = start + bound
                self._arm_seq[vertex] = self._armed
                self._armed += 1
        tracer = _OBS.tracer
        if tracer.enabled:
            tracer.count("runtime.issues")

    def _advance(self, limit: Optional[int]) -> None:
        """Fire armed watchdogs with deadlines before *limit* (all of
        them when None), earliest deadline first, arming order on ties
        -- the same order the per-cycle simulator check visits them."""
        watchdog = self.watchdog
        while self._deadlines:
            anchor, deadline = min(
                self._deadlines.items(),
                key=lambda item: (item[1], self._arm_seq[item[0]]))
            if limit is not None and deadline >= limit:
                return
            spent = self.log.rearms.get(anchor, 0)
            base = watchdog.bound_for(anchor)
            window = watchdog.rearm_window(base, spent)
            self.log.timeouts.append(
                WatchdogTimeout(anchor, deadline, window, spent))
            self.log.cycles = max(self.log.cycles, deadline)
            tracer = _OBS.tracer
            if tracer.enabled:
                tracer.count("runtime.timeouts")
                tracer.event("runtime.timeout", anchor=anchor,
                             cycle=deadline, rearm=spent)
            if (watchdog.policy is WatchdogPolicy.RETRY
                    and spent < watchdog.max_rearms):
                self.log.rearms[anchor] = spent + 1
                next_window = watchdog.rearm_window(base, spent + 1)
                self._deadlines[anchor] = deadline + max(1, next_window)
                continue
            if watchdog.policy is WatchdogPolicy.FALLBACK:
                self._degrade(deadline)
                return
            self._closed = True
            raise WatchdogTimeoutError(
                f"watchdog timeout: anchor {anchor!r} still running "
                f"{deadline - self.log.issues[anchor]} cycles after start "
                f"(bound W={base}, re-arms spent {spent})",
                anchor=anchor, bound=base, cycle=deadline, rearms=spent)

    def _degrade(self, cycle: int) -> None:
        """FALLBACK: the static worst-case schedule, budgeted at W."""
        from repro.baselines.worst_case import worst_case_schedule

        graph = self.static.graph
        budget = self.watchdog.budget()
        outcome = worst_case_schedule(graph, budget)
        # The simulator's degrade keeps the dynamic stall set (started
        # by the fire cycle, done never seen); completions the executor
        # has not received yet necessarily count as stalled here.
        stalled_pre = [v for v, s in self.log.issues.items()
                       if s <= cycle and v not in self.log.done]
        self.log.issues = dict(outcome.start_times)
        static_done = {}
        for vertex in graph.vertex_names():
            delta = graph.delta(vertex)
            static_delay = budget if is_unbounded(delta) else delta
            static_done[vertex] = outcome.start_times[vertex] + static_delay
        self.log.done = static_done
        self.log.degraded = True
        self.log.stalled = stalled_pre
        self.log.unissued = []
        self.log.cycles = max(self.log.cycles, cycle)
        self._pending = []
        self._deadlines.clear()
        tracer = _OBS.tracer
        if tracer.enabled:
            tracer.event("runtime.degraded", cycle=cycle)

    # -- construction helpers ------------------------------------------

    @classmethod
    def from_graph(cls, graph: "ConstraintGraph", *,
                   cache: "Optional[Union[ScheduleCache, str]]" = None,
                   budget: Any = None,
                   watchdog: Optional[WatchdogConfig] = None,
                   source_done: int = 0) -> "OnlineExecutor":
        """Schedule *graph* and execute it, sharing a result cache.

        With *cache* (a :class:`~repro.core.resultcache.ScheduleCache`
        or a path), the static schedule comes through
        :func:`~repro.core.batch.schedule_many` -- a warm cache skips
        the solve entirely, and the executor flushes the cache's staged
        entries at :meth:`close_cache` time so a crash mid-stream never
        tears the shared file.
        """
        if cache is not None:
            from repro.core.batch import schedule_many

            run = schedule_many([graph], cache=cache, budget=budget)
            schedule = run[0].unpack()
        else:
            from repro.resilience.guard import guarded_schedule

            schedule = guarded_schedule(graph, budget)
        executor = cls(schedule, watchdog=watchdog, source_done=source_done)
        executor._cache = cache
        return executor

    _cache = None

    def close_cache(self) -> ExecutionLog:
        """:meth:`close`, then flush the shared schedule cache (if any)."""
        log = self.close()
        cache = self._cache
        if cache is not None and hasattr(cache, "flush"):
            cache.flush()
        return log


def execute_stream(schedule: RelativeSchedule,
                   events: Iterable[Tuple[str, int]], *,
                   watchdog: Optional[WatchdogConfig] = None,
                   source_done: int = 0) -> ExecutionLog:
    """One-shot convenience: run ``(anchor, cycle)`` pairs to a log."""
    executor = OnlineExecutor(schedule, watchdog=watchdog,
                              source_done=source_done)
    return executor.run(CompletionEvent(anchor, cycle)
                        for anchor, cycle in events)
