"""Constrained conflict resolution (Section VII, reference [26]).

Two operations bound to the same functional unit may not execute
concurrently.  Hebe resolves such conflicts by *serializing* them --
adding sequencing dependencies -- while keeping the timing constraints
satisfiable.  Both strategies the paper mentions are implemented:

* a **heuristic** that orders each conflict group by ASAP start time
  (consistent with the existing partial order) and chains it;
* an **exact branch-and-bound** that searches linear orders of the
  conflict groups, pruning infeasible partial serializations, and
  returns the serialization minimising the source-to-sink longest path.

Both operate on the lowered constraint graph, so serializations are
checked against minimum *and* maximum timing constraints (feasibility =
no positive cycle, Theorem 1).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

from repro.binding.resources import Binding
from repro.core.exceptions import ConstraintGraphError
from repro.core.graph import ConstraintGraph
from repro.core.paths import has_positive_cycle, longest_paths_from


class ConflictResolutionError(ConstraintGraphError):
    """No serialization of the conflict groups satisfies the timing
    constraints."""


def serialize_group(graph: ConstraintGraph, ordered_ops: Sequence[str]) -> int:
    """Add sequencing edges chaining *ordered_ops* in the given order.

    Consecutive operations get an edge weighted by the predecessor's
    execution delay, so each starts only after the previous one released
    the shared unit.  Edges already implied by reachability are still
    added (harmless for correctness; the scheduler treats them as
    ordinary forward edges).  Returns the number of edges added.
    """
    added = 0
    for tail, head in zip(ordered_ops, ordered_ops[1:]):
        graph.add_sequencing_edge(tail, head)
        added += 1
    return added


def _asap_order(graph: ConstraintGraph, ops: Sequence[str]) -> List[str]:
    """Order *ops* by ASAP start (longest forward path from the source),
    tie-broken by topological position -- always consistent with the
    existing partial order."""
    asap = longest_paths_from(graph, graph.source, forward_only=True)
    position = {name: i for i, name in enumerate(graph.forward_topological_order())}
    return sorted(ops, key=lambda name: (asap[name] or 0, position[name]))


def _order_respects_dependencies(graph: ConstraintGraph,
                                 order: Sequence[str]) -> bool:
    """A linear order is admissible iff it never contradicts existing
    forward reachability (which would create a cycle)."""
    for i, later in enumerate(order):
        for earlier in order[i + 1:]:
            if graph.is_forward_reachable(earlier, later):
                return False
    return True


def resolve_conflicts(graph: ConstraintGraph,
                      binding_or_groups,
                      exact: bool = False) -> ConstraintGraph:
    """Serialize every conflict group of a binding on *graph*.

    Args:
        graph: the lowered constraint graph (timing constraints applied).
        binding_or_groups: a :class:`Binding`, or a mapping from any key
            to lists of operation names sharing a unit.
        exact: use exhaustive branch-and-bound instead of the ASAP
            heuristic.

    Returns:
        A serialized *copy* of the graph, feasible under the timing
        constraints.

    Raises:
        ConflictResolutionError: when no admissible serialization is
            feasible (heuristic mode reports failure of the heuristic
            order only; exact mode proves no order works).
    """
    if isinstance(binding_or_groups, Binding):
        groups = binding_or_groups.conflict_groups()
    else:
        groups = {key: list(ops) for key, ops in binding_or_groups.items()
                  if len(ops) > 1}
    group_list = [sorted(ops) for _, ops in sorted(groups.items(), key=lambda kv: str(kv[0]))]
    if not group_list:
        return graph.copy()
    if exact:
        return _resolve_exact(graph, group_list)
    return _resolve_heuristic(graph, group_list)


def _resolve_heuristic(graph: ConstraintGraph,
                       groups: List[List[str]]) -> ConstraintGraph:
    result = graph.copy()
    for ops in groups:
        order = _asap_order(result, ops)
        serialize_group(result, order)
        result.forward_topological_order()  # cycle check, raises if broken
    if has_positive_cycle(result):
        raise ConflictResolutionError(
            "heuristic (ASAP-order) serialization violates the timing "
            "constraints; retry with exact=True")
    return result


def _resolve_exact(graph: ConstraintGraph,
                   groups: List[List[str]]) -> ConstraintGraph:
    """Branch-and-bound over linear orders of every conflict group.

    The search enumerates admissible permutations group by group,
    pruning any partial serialization that already has a positive cycle,
    and keeps the feasible complete serialization with the shortest
    source-to-sink longest path (the best-case latency).
    """
    best: Optional[ConstraintGraph] = None
    best_latency: Optional[int] = None

    def recurse(current: ConstraintGraph, remaining: List[List[str]]) -> None:
        nonlocal best, best_latency
        if has_positive_cycle(current):
            return
        if not remaining:
            latency = longest_paths_from(current, current.source,
                                         forward_only=True)[current.sink]
            latency = latency or 0
            if best_latency is None or latency < best_latency:
                best, best_latency = current, latency
            return
        group, rest = remaining[0], remaining[1:]
        for order in itertools.permutations(group):
            if not _order_respects_dependencies(current, order):
                continue
            candidate = current.copy()
            serialize_group(candidate, order)
            recurse(candidate, rest)

    recurse(graph.copy(), groups)
    if best is None:
        raise ConflictResolutionError(
            "no admissible serialization of the conflict groups satisfies "
            "the timing constraints")
    return best


def bind_and_resolve(graph: ConstraintGraph, binding: Binding,
                     exact: bool = False) -> ConstraintGraph:
    """Convenience wrapper: apply a binding's conflicts to *graph*."""
    return resolve_conflicts(graph, binding, exact=exact)
