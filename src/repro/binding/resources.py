"""Resource types, libraries, and binding results.

A *resource type* describes a class of functional units ("alu", "mul",
"port", ...) characterized a priori in terms of area and execution time,
as the paper notes most systems assume (Section I).  A *library* is the
pool available to one design; a *binding* maps operations to concrete
instances of those types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class ResourceType:
    """A class of functional units.

    Attributes:
        name: the resource class served (matches operations'
            ``resource_class``).
        count: available instances; operations of this class beyond the
            count must share and therefore serialize.
        delay: execution delay of an operation bound to this unit; None
            keeps the operation's own delay.
        area: relative area cost of one instance.
    """

    name: str
    count: int = 1
    delay: Optional[int] = None
    area: float = 1.0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"resource count must be >= 1, got {self.count}")
        if self.delay is not None and self.delay < 0:
            raise ValueError(f"resource delay must be >= 0, got {self.delay}")


class ResourceLibrary:
    """The pool of resource types available to a design."""

    def __init__(self, types: Optional[List[ResourceType]] = None) -> None:
        self._types: Dict[str, ResourceType] = {}
        for resource_type in types or []:
            self.add(resource_type)

    def add(self, resource_type: ResourceType) -> ResourceType:
        """Register a resource type (class names must be unique)."""
        if resource_type.name in self._types:
            raise ValueError(f"duplicate resource type {resource_type.name!r}")
        self._types[resource_type.name] = resource_type
        return resource_type

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def get(self, name: str) -> Optional[ResourceType]:
        return self._types.get(name)

    def types(self) -> List[ResourceType]:
        return list(self._types.values())

    @classmethod
    def default(cls) -> "ResourceLibrary":
        """A generous single-instance library for the standard classes."""
        return cls([
            ResourceType("alu", count=1),
            ResourceType("logic", count=1),
            ResourceType("shift", count=1),
            ResourceType("mul", count=1),
            ResourceType("div", count=1),
            ResourceType("port", count=4),
        ])


@dataclass(frozen=True)
class Instance:
    """One concrete functional unit: (resource class, index)."""

    rclass: str
    index: int

    def __str__(self) -> str:
        return f"{self.rclass}[{self.index}]"


@dataclass
class Binding:
    """The result of module binding for one sequencing graph.

    Attributes:
        assignment: operation name -> bound instance.
        library: the library the instances come from.
    """

    assignment: Dict[str, Instance] = field(default_factory=dict)
    library: Optional[ResourceLibrary] = None

    def instance_of(self, op_name: str) -> Optional[Instance]:
        return self.assignment.get(op_name)

    def groups(self) -> Dict[Instance, List[str]]:
        """Operations sharing each instance, in assignment order."""
        result: Dict[Instance, List[str]] = {}
        for op_name, instance in self.assignment.items():
            result.setdefault(instance, []).append(op_name)
        return result

    def conflict_groups(self) -> Dict[Instance, List[str]]:
        """Only the instances shared by two or more operations."""
        return {instance: ops for instance, ops in self.groups().items()
                if len(ops) > 1}

    def instances_used(self) -> List[Instance]:
        return sorted(set(self.assignment.values()),
                      key=lambda i: (i.rclass, i.index))

    def area(self) -> float:
        """Total area of the distinct instances used."""
        if self.library is None:
            return float(len(self.instances_used()))
        total = 0.0
        for instance in self.instances_used():
            resource_type = self.library.get(instance.rclass)
            total += resource_type.area if resource_type else 1.0
        return total

    def delay_overrides(self) -> Dict[str, int]:
        """Per-operation delay overrides implied by the bound units."""
        overrides: Dict[str, int] = {}
        if self.library is None:
            return overrides
        for op_name, instance in self.assignment.items():
            resource_type = self.library.get(instance.rclass)
            if resource_type is not None and resource_type.delay is not None:
                overrides[op_name] = resource_type.delay
        return overrides
