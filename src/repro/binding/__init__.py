"""Module binding and constrained conflict resolution.

Relative scheduling assumes binding happens *before* scheduling
(Section II): operations are assigned to functional-unit instances, and
any conflict created by two operations sharing an instance is resolved
by adding sequencing dependencies between them -- Hebe's *constrained
conflict resolution* (Section VII), available in both a heuristic and an
exact branch-and-bound form [26].

* :mod:`repro.binding.resources` -- resource types, libraries, and
  binding results;
* :mod:`repro.binding.binder` -- least-loaded module binding over a
  sequencing graph;
* :mod:`repro.binding.conflict` -- serialization of shared-resource
  operations under timing constraints.
"""

from repro.binding.resources import Binding, Instance, ResourceLibrary, ResourceType
from repro.binding.binder import bind_graph
from repro.binding.conflict import (
    ConflictResolutionError,
    resolve_conflicts,
    serialize_group,
)

__all__ = [
    "Binding",
    "Instance",
    "ResourceLibrary",
    "ResourceType",
    "bind_graph",
    "ConflictResolutionError",
    "resolve_conflicts",
    "serialize_group",
]
