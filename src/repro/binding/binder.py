"""Least-loaded module binding over one sequencing graph.

Binding walks the graph in topological order (an ASAP-flavoured
priority) and assigns each resource-classed operation to the instance of
its class with the least accumulated busy time -- a standard greedy
binder in the style the paper's Section I survey assumes.  The binder is
deliberately simple: the *interesting* downstream step for this paper is
conflict resolution and relative scheduling, which consume its output.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.binding.resources import Binding, Instance, ResourceLibrary
from repro.seqgraph.model import OpKind, SequencingGraph


def bind_graph(graph: SequencingGraph,
               library: Optional[ResourceLibrary] = None) -> Binding:
    """Bind every resource-classed operation of *graph* to an instance.

    Operations whose ``resource_class`` is None (moves, compound
    operations, waits) are unbound: they consume no shared unit.
    Classes missing from the library are treated as unconstrained --
    each such operation gets a private instance.

    Returns:
        A :class:`Binding` with the full assignment.
    """
    library = library or ResourceLibrary.default()
    binding = Binding(library=library)
    busy_until: Dict[Instance, int] = {}
    private_counter: Dict[str, int] = {}

    for name in graph.topological_order():
        op = graph.operation(name)
        if op.kind is not OpKind.OPERATION or op.resource_class is None:
            continue
        resource_type = library.get(op.resource_class)
        if resource_type is None:
            index = private_counter.get(op.resource_class, 0)
            private_counter[op.resource_class] = index + 1
            binding.assignment[name] = Instance(op.resource_class, index)
            continue
        candidates = [Instance(op.resource_class, i)
                      for i in range(resource_type.count)]
        chosen = min(candidates, key=lambda inst: (busy_until.get(inst, 0), inst.index))
        delay = resource_type.delay if resource_type.delay is not None else op.delay
        busy_until[chosen] = busy_until.get(chosen, 0) + delay
        binding.assignment[name] = chosen
    return binding
