"""Canonical graph forms: an isomorphism-stable key for result caching.

Two constraint graphs that differ only in vertex *naming* (or in vertex
and edge insertion order) describe the same scheduling problem, and the
minimum relative schedule of one is the relabelling of the other's
(offsets are the unique least fixpoint of a purely structural relaxation
system).  The batch kernel's persistent result cache therefore keys
entries on a *canonical form* of the graph rather than on its names.

The canonicalization is a hashed Weisfeiler-Leman refinement:

1. every vertex starts from a name-free 64-bit color mixing its delay
   (``UNBOUNDED`` gets a reserved token), and whether it is the source
   or the sink;
2. for :data:`REFINEMENT_ROUNDS` rounds, each vertex's color is
   re-mixed with two *commutative* digests of its neighborhood -- the
   wrapping uint64 sums of ``mix(neighbor color, weight, kind)`` over
   its in-edges and over its out-edges.  Commutative combination keeps
   the colors independent of edge order; mixing keeps them sensitive to
   weights, kinds, delays, and anchor placement.

When the final colors are all distinct the color order is a *canonical
vertex order*: any renaming (or reordering) of the graph refines to the
same colors and therefore the same order.  The certificate is then the
exact structure -- delays, source/sink positions, and the sorted edge
list -- rewritten in canonical coordinates; its SHA-256 is the cache
key.  Because the certificate encodes the full structure (colors only
pick the order), equal keys mean isomorphic graphs up to SHA-256
collision -- a WL color collision can only cost discreteness (a cache
miss), never a wrong hit.

Graphs whose colors do *not* become discrete (automorphic or
WL-ambiguous vertices) return ``None``: they are simply not cacheable,
which is always safe.  Vertex ``tag`` annotations are ignored -- they
are carried through analysis untouched and do not affect schedules.

:mod:`repro.core.batch` re-implements the same refinement as vectorized
numpy sweeps over a whole batch arena; the two paths must produce
byte-identical keys (differentially tested in
``tests/core/test_canonical.py``), so every constant lives here.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.delay import is_unbounded
# KIND_IDS and UNBOUNDED_TOKEN live next to the graph's incremental
# primitive pack (graph.packed()) and are re-exported here: certificate,
# pack, and batch arena must agree on both encodings.
from repro.core.graph import (
    KIND_IDS,
    UNBOUNDED_TOKEN,
    ConstraintGraph,
    EdgeKind,
)

#: WL refinement rounds.  Colors see the r-hop neighborhood in both
#: directions after r rounds; small constraint graphs refine to discrete
#: colors within a few rounds, and extra rounds only cost time.
REFINEMENT_ROUNDS = 4

#: Certificate stream version, mixed into every key so a change to the
#: canonicalization invalidates every persisted cache entry at once.
CERTIFICATE_VERSION = 1

_MASK = (1 << 64) - 1
_M1 = 0x9E3779B97F4A7C15
_M2 = 0xC2B2AE3D27D4EB4F
_M3 = 0x165667B19E3779F9
_M4 = 0x27D4EB2F165667C5
_M5 = 0xBF58476D1CE4E5B9

#: The multipliers above, exported for the vectorized twin in
#: :mod:`repro.core.batch`; both paths must mix identically.
MIX_CONSTANTS = (_M1, _M2, _M3, _M4, _M5)


def mix3(a: int, b: int, c: int) -> int:
    """The shared 64-bit mixing function (splitmix-style finalizer).

    All three operands are taken mod 2**64; the vectorized twin in
    :mod:`repro.core.batch` runs the same arithmetic on uint64 arrays.
    """
    x = (a * _M1 + b * _M2 + c * _M3 + _M4) & _MASK
    x ^= x >> 29
    x = (x * _M5) & _MASK
    x ^= x >> 32
    return x


def delay_token(delay) -> int:
    """The 64-bit token of a vertex delay (or edge weight)."""
    if is_unbounded(delay):
        return UNBOUNDED_TOKEN
    return int(delay) & _MASK


@dataclass(frozen=True)
class CanonicalForm:
    """A discrete canonical labelling of a constraint graph.

    Attributes:
        key: SHA-256 hex digest of the certificate -- the cache key.
        order: vertex names by canonical rank (``order[r]`` has rank r).
        anchors: anchor names in canonical-rank order; cache entries
            store offset columns in exactly this order.
    """

    key: str
    order: List[str]
    anchors: List[str]

    @property
    def rank(self) -> Dict[str, int]:
        return {name: r for r, name in enumerate(self.order)}


def refined_colors(graph: ConstraintGraph,
                   rounds: int = REFINEMENT_ROUNDS) -> Dict[str, int]:
    """The hashed-WL colors after *rounds* refinement rounds."""
    colors: Dict[str, int] = {}
    for vertex in graph.vertices():
        flags = 1 if vertex.name == graph.source else (
            2 if vertex.name == graph.sink else 0)
        colors[vertex.name] = mix3(delay_token(vertex.delay), flags, 0)
    edges = [(edge.tail, edge.head, delay_token(edge.weight),
              KIND_IDS[edge.kind]) for edge in graph.edges()]
    for _ in range(rounds):
        in_sum = dict.fromkeys(colors, 0)
        out_sum = dict.fromkeys(colors, 0)
        for tail, head, wtok, kid in edges:
            in_sum[head] = (in_sum[head]
                            + mix3(colors[tail], wtok, kid + 1)) & _MASK
            out_sum[tail] = (out_sum[tail]
                             + mix3(colors[head], wtok, kid + 101)) & _MASK
        colors = {name: mix3(color, in_sum[name], out_sum[name])
                  for name, color in colors.items()}
    return colors


def canonical_form(graph: ConstraintGraph) -> Optional[CanonicalForm]:
    """The canonical form of *graph*, or None when not canonicalizable.

    Returns None when the refined colors are not discrete (two vertices
    share a color), in which case no stable canonical order exists under
    renaming and the graph must not be cached.
    """
    colors = refined_colors(graph)
    order = sorted(colors, key=colors.__getitem__)
    for a, b in zip(order, order[1:]):
        if colors[a] == colors[b]:
            return None
    rank = {name: r for r, name in enumerate(order)}
    stream: List[int] = [
        CERTIFICATE_VERSION,
        len(order),
        len(graph.edges()),
        rank[graph.source],
        rank[graph.sink],
    ]
    for name in order:
        stream.append(delay_token(graph._vertices[name].delay))
    stream.extend(_edge_stream(graph, rank))
    digest = hashlib.sha256(
        b"".join(value.to_bytes(8, "little") for value in stream))
    anchors = sorted(graph.anchors, key=rank.__getitem__)
    return CanonicalForm(key=digest.hexdigest(), order=order, anchors=anchors)


def _edge_stream(graph: ConstraintGraph, rank: Dict[str, int]) -> List[int]:
    """Edges in canonical coordinates, sorted -- order-independent."""
    records = sorted(
        (rank[edge.tail], rank[edge.head], KIND_IDS[edge.kind],
         delay_token(edge.weight))
        for edge in graph.edges())
    flat: List[int] = []
    for record in records:
        flat.extend(record)
    return flat


def canonical_key(graph: ConstraintGraph) -> Optional[str]:
    """Just the cache key of *graph* (None when not canonicalizable)."""
    form = canonical_form(graph)
    return None if form is None else form.key
