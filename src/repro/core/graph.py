"""The polar weighted constraint graph ``G(V, E)`` (Section III).

Vertices represent operations; each carries an execution delay that is
either a non-negative integer or :data:`~repro.core.delay.UNBOUNDED`.
Edges carry weights and fall into two classes:

* **forward** edges (positive weights) -- sequencing dependencies
  (weight equal to the execution delay of the tail) and minimum timing
  constraints (weight ``l_ij >= 0``);
* **backward** edges (non-positive weights) -- maximum timing
  constraints ``u_ij``, added as an edge ``(v_j, v_i)`` with weight
  ``-u_ij``.

The graph is *polar*: it has a designated source ``v0`` and sink
``v_n``.  The source is treated as an anchor (its activation is
analogous to the completion of an unbounded-delay operation), so every
outgoing sequencing edge of the source has unbounded weight.

Edge weights that are unbounded always equal the delay of the edge's
*tail* vertex, written ``delta(tail)`` in the paper.  This invariant
holds for sequencing edges out of anchors and for the serialization
edges introduced by ``make_well_posed``; the graph enforces it.
"""

from __future__ import annotations

import enum
from array import array
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.delay import UNBOUNDED, Delay, is_unbounded, validate_delay
from repro.core.exceptions import GraphStructureError
from repro.sanitize import make_rlock
from repro.observability.tracer import STATE as _OBS

#: An edge weight: a (possibly negative) integer, or UNBOUNDED meaning
#: "the execution delay of the tail vertex".
Weight = Union[int, "UNBOUNDED.__class__"]


class EdgeKind(enum.Enum):
    """Provenance of a constraint-graph edge (Table I)."""

    #: Operation dependency; forward, weight = delta(tail).
    SEQUENCING = "sequencing"
    #: Minimum timing constraint l_ij; forward, weight = l_ij >= 0.
    MIN_TIME = "min_time"
    #: Maximum timing constraint u_ij; backward edge (v_j, v_i), weight -u_ij.
    MAX_TIME = "max_time"
    #: Synchronization edge added by make_well_posed; forward, weight = delta(tail).
    SERIALIZATION = "serialization"

    @property
    def is_forward(self) -> bool:
        return self is not EdgeKind.MAX_TIME

    @property
    def is_backward(self) -> bool:
        return self is EdgeKind.MAX_TIME


#: Stable small integers per edge kind (enum definition order), shared
#: by the canonical certificate (:mod:`repro.core.canonical`) and the
#: packed arena representation (:mod:`repro.core.batch`).
KIND_IDS: Dict[EdgeKind, int] = {kind: i for i, kind in enumerate(EdgeKind)}

#: Reserved 64-bit token for UNBOUNDED delays and edge weights in packed
#: integer representations (legal magnitudes are capped at 2**53 by the
#: wire format, so it cannot collide with a real value).
UNBOUNDED_TOKEN = 1 << 60


def _pack_extend(pack, values):
    """Append ints to an int64 pack, demoting it to a list on overflow.

    Packs are ``array('q')`` so batch assembly can concatenate raw
    bytes; a graph with values beyond int64 (legal programmatically,
    though outside the wire format's 2**53 cap) falls back to a plain
    Python list, which the batch kernel routes per graph instead.
    """
    try:
        pack.extend(values)
        return pack
    except OverflowError:
        demoted = list(pack)
        demoted.extend(values)
        return demoted


@dataclass(frozen=True)
class Vertex:
    """An operation in the constraint graph.

    Attributes:
        name: unique identifier within the graph.
        delay: execution delay in cycles (int >= 0) or UNBOUNDED.
        tag: optional user annotation (e.g. the HDL tag or the bound
            resource instance) carried through analysis untouched.
    """

    name: str
    delay: Delay
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        validate_delay(self.delay)
        if not isinstance(self.name, str) or not self.name:
            raise GraphStructureError(f"vertex name must be a non-empty str, got {self.name!r}")

    @property
    def is_unbounded(self) -> bool:
        """True when this operation's delay is unknown at compile time."""
        return is_unbounded(self.delay)

    def __repr__(self) -> str:
        return f"Vertex({self.name!r}, delay={self.delay!r})"


@dataclass(frozen=True)
class Edge:
    """A weighted constraint-graph edge from *tail* to *head*.

    The weight is an integer, or UNBOUNDED meaning ``delta(tail)`` -- the
    execution delay of the tail vertex, unknown at compile time.
    """

    tail: str
    head: str
    weight: Weight
    kind: EdgeKind

    @property
    def is_forward(self) -> bool:
        return self.kind.is_forward

    @property
    def is_backward(self) -> bool:
        return self.kind.is_backward

    @property
    def is_unbounded(self) -> bool:
        """True when the weight is the unknown delay of the tail."""
        return is_unbounded(self.weight)

    @property
    def static_weight(self) -> int:
        """The weight with unbounded delays at their minimum value 0.

        This is the evaluation used by feasibility checking, offset
        computation, and ``length(a, b)`` throughout the paper.
        """
        return 0 if self.is_unbounded else self.weight

    def __repr__(self) -> str:
        return f"Edge({self.tail!r} -> {self.head!r}, w={self.weight!r}, {self.kind.value})"


class ConstraintGraph:
    """A polar weighted constraint graph (Section III).

    Construction example, modelling Fig. 2 of the paper::

        g = ConstraintGraph(source="v0", sink="v4")
        g.add_operation("a", UNBOUNDED)
        g.add_operation("v1", 2)
        g.add_operation("v2", 1)
        g.add_operation("v3", 3)
        g.add_sequencing_edges([("v0", "a"), ("v0", "v1"), ("v1", "v2"),
                                ("a", "v3"), ("v2", "v3"), ("v3", "v4")])
        g.add_max_constraint("v1", "v2", u=4)
        g.add_min_constraint("v0", "v3", l=3)

    Parallel edges are allowed (a sequencing dependency and a minimum
    constraint may connect the same pair); all analyses treat them as
    independent inequality constraints.
    """

    def __init__(self, source: str = "v0", sink: str = "vN",
                 sink_delay: Delay = 0) -> None:
        self._vertices: Dict[str, Vertex] = {}
        self._edges: List[Edge] = []
        self._out: Dict[str, List[Edge]] = {}
        self._in: Dict[str, List[Edge]] = {}
        self._version = 0
        self._analysis_cache: Dict[str, Any] = {}
        self._cache_version = -1
        # Guards the analysis cache's check-then-build and the pack
        # rebuild against concurrent readers sharing this graph (the
        # service schedules shared design graphs from worker threads).
        # Reentrant because builders call cached() for other keys.
        self._cache_lock = make_rlock("graph.cache")
        # Incrementally maintained primitive pack (see packed()): vertex
        # insertion indices, delay tokens, and flat (tail, head, weight,
        # kind-id) edge records with UNBOUNDED encoded as +/-UNBOUNDED_TOKEN.
        # int64 arrays so batch assembly concatenates raw bytes; values
        # beyond int64 demote the pack to a plain list (see _pack_append).
        # Code that rewrites _vertices/_edges directly must set
        # _pack_dirty so packed() rebuilds the whole pack.
        self._vindex: Dict[str, int] = {}
        self._vdelay_tok: Union[array, List[int]] = array("q")
        self._epack: Union[array, List[int]] = array("q")
        self._pack_dirty = False
        self.source = source
        self.sink = sink
        # The source behaves as an unbounded-delay anchor (Definition 2).
        self._add_vertex(Vertex(source, UNBOUNDED))
        self._add_vertex(Vertex(sink, validate_delay(sink_delay)))

    # ------------------------------------------------------------------
    # versioned analysis cache
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Mutation counter: bumped on every vertex or edge change.

        Derived analyses (topological order, edge partitions, anchor
        sets, the indexed compilation) are memoised against this value
        and recomputed lazily after any mutation.
        """
        return self._version

    def cached(self, key: str, builder: Callable[[], Any]) -> Any:
        """Memoise ``builder()`` under *key* until the graph next mutates.

        The cache is shared by every analysis over this graph: the
        well-posedness check, ``make_well_posed`` and the scheduler all
        reuse one topological order, one anchor-set table and one
        indexed compilation per graph version instead of recomputing
        them stage by stage.  Cached values must be treated as
        immutable by callers.

        Thread safety: the whole check-then-build runs under the
        graph's reentrant cache lock, so concurrent readers of a shared
        graph can neither double-build an entry nor observe a
        half-cleared cache after a version bump.  Builders may call
        ``cached`` recursively for other keys (same thread, reentrant);
        a builder that *mutates* the graph is a caller bug, as before.
        """
        tracer = _OBS.tracer
        with self._cache_lock:
            if self._cache_version != self._version:
                if tracer.enabled and self._analysis_cache:
                    tracer.count("cache.invalidation")
                    tracer.event("cache.invalidation", version=self._version,
                                 dropped=len(self._analysis_cache))
                self._analysis_cache.clear()
                self._cache_version = self._version
            try:
                value = self._analysis_cache[key]
            except KeyError:
                if tracer.enabled:
                    tracer.count("cache.miss")
                    tracer.count(f"cache.miss.{key}")
                value = self._analysis_cache[key] = builder()
                return value
            if tracer.enabled:
                tracer.count("cache.hit")
                tracer.count(f"cache.hit.{key}")
            return value

    def packed(self) -> Tuple[Sequence[int], Sequence[int]]:
        """The primitive integer pack: ``(delay_tokens, edge_records)``.

        ``delay_tokens[i]`` is the delay of the i-th inserted vertex
        (``UNBOUNDED_TOKEN`` for anchors); ``edge_records`` is a flat
        sequence of ``(tail_index, head_index, weight, kind_id)``
        quadruples in edge insertion order, with unbounded weights
        encoded as ``-UNBOUNDED_TOKEN``.  Both are ``array('q')`` unless
        a value overflowed int64 (then plain lists).  Maintained
        incrementally during construction so batch assembly
        (:mod:`repro.core.batch`) can concatenate graphs without
        re-walking Python edge objects; the returned sequences are live
        internals -- callers must not mutate.

        The rebuild shares the analysis-cache lock so concurrent batch
        assemblies over a shared graph cannot observe a half-built pack.
        """
        if self._pack_dirty:
            with self._cache_lock:
                if not self._pack_dirty:
                    return self._vdelay_tok, self._epack
                self._vindex = {name: i
                                for i, name in enumerate(self._vertices)}
                self._vdelay_tok = _pack_extend(array("q"), [
                    UNBOUNDED_TOKEN if is_unbounded(v.delay) else v.delay
                    for v in self._vertices.values()])
                vindex = self._vindex
                pack: List[int] = []
                for edge in self._edges:
                    pack.extend((
                        vindex[edge.tail], vindex[edge.head],
                        -UNBOUNDED_TOKEN if is_unbounded(edge.weight)
                        else edge.weight,
                        KIND_IDS[edge.kind]))
                self._epack = _pack_extend(array("q"), pack)
                self._pack_dirty = False
        return self._vdelay_tok, self._epack

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _add_vertex(self, vertex: Vertex) -> Vertex:
        if vertex.name in self._vertices:
            raise GraphStructureError(f"duplicate vertex {vertex.name!r}")
        self._vertices[vertex.name] = vertex
        self._out[vertex.name] = []
        self._in[vertex.name] = []
        self._vindex[vertex.name] = len(self._vdelay_tok)
        self._vdelay_tok = _pack_extend(
            self._vdelay_tok,
            (UNBOUNDED_TOKEN if is_unbounded(vertex.delay)
             else vertex.delay,))
        self._version += 1
        return vertex

    def add_operation(self, name: str, delay: Delay, tag: Optional[str] = None) -> Vertex:
        """Add an operation vertex with the given execution delay."""
        return self._add_vertex(Vertex(name, delay, tag))

    def _require(self, name: str) -> Vertex:
        try:
            return self._vertices[name]
        except KeyError:
            raise GraphStructureError(f"unknown vertex {name!r}") from None

    def _add_edge(self, edge: Edge) -> Edge:
        self._require(edge.tail)
        self._require(edge.head)
        if edge.is_unbounded and not self._vertices[edge.tail].is_unbounded:
            raise GraphStructureError(
                f"unbounded edge weight requires an unbounded-delay tail, "
                f"but {edge.tail!r} has delay {self._vertices[edge.tail].delay!r}")
        self._edges.append(edge)
        self._out[edge.tail].append(edge)
        self._in[edge.head].append(edge)
        self._epack = _pack_extend(self._epack, (
            self._vindex[edge.tail], self._vindex[edge.head],
            -UNBOUNDED_TOKEN if is_unbounded(edge.weight) else edge.weight,
            KIND_IDS[edge.kind]))
        self._version += 1
        return edge

    def add_sequencing_edge(self, tail: str, head: str) -> Edge:
        """Add a sequencing dependency; its weight is ``delta(tail)``."""
        tail_vertex = self._require(tail)
        weight: Weight = UNBOUNDED if tail_vertex.is_unbounded else tail_vertex.delay
        return self._add_edge(Edge(tail, head, weight, EdgeKind.SEQUENCING))

    def add_sequencing_edges(self, pairs: Iterable[Tuple[str, str]]) -> List[Edge]:
        """Add several sequencing dependencies at once."""
        return [self.add_sequencing_edge(t, h) for t, h in pairs]

    def add_min_constraint(self, from_vertex: str, to_vertex: str, l: int) -> Edge:
        """Add a minimum timing constraint ``sigma(to) >= sigma(from) + l``.

        Translated to a forward edge ``(from, to)`` with weight ``l``
        (Table I).
        """
        if l < 0:
            raise ValueError(f"minimum timing constraint must be >= 0, got {l}")
        return self._add_edge(Edge(from_vertex, to_vertex, l, EdgeKind.MIN_TIME))

    def add_max_constraint(self, from_vertex: str, to_vertex: str, u: int) -> Edge:
        """Add a maximum timing constraint ``sigma(to) <= sigma(from) + u``.

        Translated to a *backward* edge ``(to, from)`` with weight ``-u``
        (Table I).
        """
        if u < 0:
            raise ValueError(f"maximum timing constraint must be >= 0, got {u}")
        return self._add_edge(Edge(to_vertex, from_vertex, -u, EdgeKind.MAX_TIME))

    def add_serialization_edge(self, anchor: str, vertex: str) -> Edge:
        """Add a synchronization edge ``(anchor, vertex)`` with weight
        ``delta(anchor)`` as done by ``make_well_posed`` (Section IV-C)."""
        anchor_vertex = self._require(anchor)
        if not anchor_vertex.is_unbounded:
            raise GraphStructureError(
                f"serialization edges originate at anchors; {anchor!r} is bounded")
        return self._add_edge(Edge(anchor, vertex, UNBOUNDED, EdgeKind.SERIALIZATION))

    def remove_edge(self, edge: Edge) -> None:
        """Remove one edge instance (identity or first equal match).

        Raises:
            GraphStructureError: if the edge is not in the graph.
        """
        try:
            self._edges.remove(edge)
        except ValueError:
            raise GraphStructureError(f"edge not in graph: {edge!r}") from None
        self._out[edge.tail].remove(edge)
        self._in[edge.head].remove(edge)
        self._pack_dirty = True
        self._version += 1

    def bind_anchor_delay(self, name: str, delay: int) -> None:
        """Replace an anchor's unbounded delay with an observed value.

        The online executor calls this when anchor *name*'s completion
        is observed *delay* cycles after its start.  The vertex becomes
        a bounded operation, and every *forward* out-edge is rewritten
        to ``delay + static_weight``: an anchor's forward out-edges are
        measured from its *completion* (Definition 3 normalizes the
        anchor's own offset to 0 -- this covers unbounded sequencing
        edges, whose weight meant ``delta(name)``, *and* bounded minimum
        constraints leaving the anchor), while a bounded vertex's
        out-edges are measured from its start, so preserving the
        done-relative meaning requires folding the observed delay into
        each weight.  Backward (maximum-constraint) out-edges keep their
        weight: a late completion that breaks a maximum constraint is an
        *observed violation* for the fault classifiers to report, not a
        reason to declare the rebound graph unfeasible mid-run.  The
        unknown delay was previously evaluated at its minimum (0), so
        longest paths can only grow -- existing offsets under-approximate
        the rebound graph's fixpoint and warm starts stay sound
        (Lemma 8).  Binding cannot break well-posedness: the constraint
        topology is unchanged and anchor sets only shrink.

        Raises:
            GraphStructureError: *name* is the source (its activation is
                the schedule's time origin), is not an anchor, or
                *delay* is not a non-negative int.
        """
        vertex = self._require(name)
        if name == self.source:
            raise GraphStructureError(
                f"cannot bind the source anchor {name!r}: its activation "
                f"is the schedule's time origin")
        if not vertex.is_unbounded:
            raise GraphStructureError(
                f"vertex {name!r} is not an anchor (delay {vertex.delay!r})")
        if isinstance(delay, bool) or not isinstance(delay, int) or delay < 0:
            raise GraphStructureError(
                f"observed delay for {name!r} must be a non-negative int, "
                f"got {delay!r}")
        self._vertices[name] = Vertex(name, delay, vertex.tag)
        for position, edge in enumerate(self._edges):
            if edge.tail != name or edge.kind is EdgeKind.MAX_TIME:
                continue
            bound = Edge(edge.tail, edge.head, delay + edge.static_weight,
                         edge.kind)
            self._edges[position] = bound
            out = self._out[name]
            out[out.index(edge)] = bound
            incoming = self._in[edge.head]
            incoming[incoming.index(edge)] = bound
        self._pack_dirty = True
        self._version += 1

    def make_polar(self) -> None:
        """Connect orphan vertices so the graph is polar.

        Adds a sequencing edge from the source to every vertex with no
        incoming forward edge, and from every vertex with no outgoing
        forward edge to the sink.
        """
        for name in list(self._vertices):
            if name == self.source:
                continue
            if not any(e.is_forward for e in self._in[name]):
                self.add_sequencing_edge(self.source, name)
        for name in list(self._vertices):
            if name == self.sink:
                continue
            if not any(e.is_forward for e in self._out[name]):
                self.add_sequencing_edge(name, self.sink)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def vertex(self, name: str) -> Vertex:
        """The vertex object registered under *name*."""
        return self._require(name)

    def delta(self, name: str) -> Delay:
        """The execution delay of vertex *name*."""
        return self._require(name).delay

    def vertex_names(self) -> List[str]:
        """All vertex names, in insertion order (deterministic)."""
        return list(self._vertices)

    def vertices(self) -> List[Vertex]:
        """All vertex objects, in insertion order."""
        return list(self._vertices.values())

    def edges(self) -> List[Edge]:
        """All edges, in insertion order."""
        return list(self._edges)

    def forward_edges(self) -> List[Edge]:
        """The forward edge set ``E_f`` (sequencing, min-time, serialization)."""
        return list(self.cached(
            "forward_edges",
            lambda: tuple(e for e in self._edges if e.kind is not EdgeKind.MAX_TIME)))

    def backward_edges(self) -> List[Edge]:
        """The backward edge set ``E_b`` (maximum timing constraints)."""
        return list(self.cached(
            "backward_edges",
            lambda: tuple(e for e in self._edges if e.kind is EdgeKind.MAX_TIME)))

    def out_edges(self, name: str, forward_only: bool = False) -> Sequence[Edge]:
        """Edges leaving *name*, as an immutable (cached) tuple.

        The tuples are memoised per graph version, so hot loops calling
        this per vertex per sweep do not re-filter or re-copy the
        adjacency lists.  A snapshot taken before a mutation stays
        valid for iteration; the next call re-reads the graph.
        """
        self._require(name)
        key = "out_fwd" if forward_only else "out_all"
        cache: Dict[str, Tuple[Edge, ...]] = self.cached(key, dict)
        edges = cache.get(name)
        if edges is None:
            if forward_only:
                edges = tuple(e for e in self._out[name]
                              if e.kind is not EdgeKind.MAX_TIME)
            else:
                edges = tuple(self._out[name])
            cache[name] = edges
        return edges

    def in_edges(self, name: str, forward_only: bool = False) -> Sequence[Edge]:
        """Edges entering *name*, as an immutable (cached) tuple."""
        self._require(name)
        key = "in_fwd" if forward_only else "in_all"
        cache: Dict[str, Tuple[Edge, ...]] = self.cached(key, dict)
        edges = cache.get(name)
        if edges is None:
            if forward_only:
                edges = tuple(e for e in self._in[name]
                              if e.kind is not EdgeKind.MAX_TIME)
            else:
                edges = tuple(self._in[name])
            cache[name] = edges
        return edges

    def immediate_successors(self, name: str, forward_only: bool = True) -> List[str]:
        """Heads of edges leaving *name* (deduplicated, order-preserving)."""
        seen: Dict[str, None] = {}
        for edge in self.out_edges(name, forward_only=forward_only):
            seen.setdefault(edge.head)
        return list(seen)

    def immediate_predecessors(self, name: str, forward_only: bool = True) -> List[str]:
        """Tails of edges entering *name* (deduplicated, order-preserving)."""
        seen: Dict[str, None] = {}
        for edge in self.in_edges(name, forward_only=forward_only):
            seen.setdefault(edge.tail)
        return list(seen)

    @property
    def anchors(self) -> List[str]:
        """The anchors ``A``: the source plus every unbounded-delay vertex
        (Definition 2), in insertion order."""
        return list(self.cached(
            "anchors",
            lambda: tuple(v.name for v in self._vertices.values() if v.is_unbounded)))

    def is_anchor(self, name: str) -> bool:
        """True when *name* is the source or has unbounded delay."""
        return self._require(name).is_unbounded

    # ------------------------------------------------------------------
    # structure checks and transforms
    # ------------------------------------------------------------------

    def forward_topological_order(self) -> List[str]:
        """Topological order of the forward constraint graph ``G_f``.

        The order is memoised per graph version; callers receive a
        fresh list copy.

        Raises:
            CyclicForwardGraphError: if ``G_f`` has a cycle (the paper
                assumes it acyclic without loss of generality).
        """
        return list(self.cached("topo_order", self._compute_topological_order))

    def _compute_topological_order(self) -> Tuple[str, ...]:
        from repro.core.exceptions import CyclicForwardGraphError

        backward = EdgeKind.MAX_TIME
        indegree = {name: 0 for name in self._vertices}
        for edge in self._edges:
            if edge.kind is not backward:
                indegree[edge.head] += 1
        ready = [name for name, d in indegree.items() if d == 0]
        order: List[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for edge in self._out[name]:
                if edge.kind is backward:
                    continue
                head = edge.head
                remaining = indegree[head] - 1
                indegree[head] = remaining
                if remaining == 0:
                    ready.append(head)
        if len(order) != len(self._vertices):
            cyclic = sorted(name for name, d in indegree.items() if d > 0)
            raise CyclicForwardGraphError(
                f"forward constraint graph has a cycle through {cyclic}")
        return tuple(order)

    def is_forward_reachable(self, tail: str, head: str) -> bool:
        """True when a directed path of *forward* edges runs tail -> head.

        This is the paper's predecessor relation: ``tail in pred(head)``.
        A vertex does not reach itself unless on a (forbidden) cycle.
        """
        self._require(tail)
        self._require(head)
        stack = [tail]
        seen = {tail}
        while stack:
            current = stack.pop()
            for edge in self._out[current]:
                if not edge.is_forward or edge.head in seen:
                    continue
                if edge.head == head:
                    return True
                seen.add(edge.head)
                stack.append(edge.head)
        return False

    def validate(self) -> None:
        """Check the structural invariants the algorithms rely on.

        * the forward graph is acyclic;
        * the graph is polar: every vertex lies on a forward source-to-
          sink path;
        * every unbounded-weight edge leaves an anchor.

        Raises:
            GraphStructureError / CyclicForwardGraphError on violation.
        """
        order = self.forward_topological_order()
        position = {name: i for i, name in enumerate(order)}
        if position.get(self.source) != 0 and any(
                e.is_forward for e in self._in[self.source]):
            raise GraphStructureError("source vertex has incoming forward edges")

        reachable_from_source = {self.source}
        for name in order:
            if name not in reachable_from_source:
                continue
            for edge in self._out[name]:
                if edge.is_forward:
                    reachable_from_source.add(edge.head)
        reaches_sink = {self.sink}
        for name in reversed(order):
            for edge in self._out[name]:
                if edge.is_forward and edge.head in reaches_sink:
                    reaches_sink.add(name)
                    break
        for name in self._vertices:
            if name not in reachable_from_source:
                raise GraphStructureError(f"vertex {name!r} unreachable from source")
            if name not in reaches_sink:
                raise GraphStructureError(f"vertex {name!r} cannot reach the sink")
        for edge in self._edges:
            if edge.is_unbounded and not self._vertices[edge.tail].is_unbounded:
                raise GraphStructureError(
                    f"unbounded weight on edge from bounded vertex {edge.tail!r}")

    def copy(self) -> "ConstraintGraph":
        """An independent deep copy (vertices and edges are immutable)."""
        clone = ConstraintGraph.__new__(ConstraintGraph)
        clone._vertices = dict(self._vertices)
        clone._edges = list(self._edges)
        clone._out = {name: list(edges) for name, edges in self._out.items()}
        clone._in = {name: list(edges) for name, edges in self._in.items()}
        clone._version = 0
        clone._analysis_cache = {}
        clone._cache_version = -1
        clone._cache_lock = make_rlock("graph.cache")
        clone._vindex = dict(self._vindex)
        clone._vdelay_tok = self._vdelay_tok[:]
        clone._epack = self._epack[:]
        clone._pack_dirty = self._pack_dirty
        clone.source = self.source
        clone.sink = self.sink
        return clone

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------

    def to_networkx(self):
        """Export as a ``networkx.MultiDiGraph``.

        Vertex attributes: ``delay`` (int or the UNBOUNDED sentinel).
        Edge attributes: ``weight`` (static weight, unbounded as 0),
        ``unbounded`` (bool) and ``kind`` (EdgeKind value string).
        """
        import networkx as nx

        graph = nx.MultiDiGraph(source=self.source, sink=self.sink)
        for vertex in self._vertices.values():
            graph.add_node(vertex.name, delay=vertex.delay)
        for edge in self._edges:
            graph.add_edge(edge.tail, edge.head, weight=edge.static_weight,
                           unbounded=edge.is_unbounded, kind=edge.kind.value)
        return graph

    def to_dot(self) -> str:
        """A Graphviz dot rendering; backward edges are dashed, anchors
        double-circled, unbounded weights printed as ``d(tail)``."""
        lines = ["digraph constraint_graph {", "  rankdir=TB;"]
        for vertex in self._vertices.values():
            shape = "doublecircle" if vertex.is_unbounded else "circle"
            delay = "?" if vertex.is_unbounded else str(vertex.delay)
            lines.append(f'  "{vertex.name}" [shape={shape} label="{vertex.name}\\n{delay}"];')
        for edge in self._edges:
            style = "dashed" if edge.is_backward else "solid"
            label = f"d({edge.tail})" if edge.is_unbounded else str(edge.weight)
            lines.append(
                f'  "{edge.tail}" -> "{edge.head}" [style={style} label="{label}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"ConstraintGraph(|V|={len(self._vertices)}, |Ef|="
                f"{len(self.forward_edges())}, |Eb|={len(self.backward_edges())}, "
                f"|A|={len(self.anchors)})")
