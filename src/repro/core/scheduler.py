"""Iterative incremental scheduling (Section IV-E).

The algorithm alternates two phases for at most ``|Eb| + 1`` rounds:

1. **IncrementalOffset** -- relax every forward edge in topological
   order, monotonically raising each per-anchor offset to the longest
   known path length from the anchor (unbounded weights at 0);
2. **ReadjustOffsets** -- for every backward edge ``(t, h)`` with weight
   ``w <= 0`` and every anchor tracked for both endpoints, if
   ``sigma_a(h) < sigma_a(t) + w`` raise ``sigma_a(h)`` by the minimum
   amount to meet the maximum timing constraint.

If a round completes with no violated backward edge the offsets are the
*minimum relative schedule* (Theorem 8 via Lemma 8 and Theorem 3).  If
``|Eb| + 1`` rounds are exhausted the constraints are inconsistent
(Corollary 2) and :class:`InconsistentConstraintsError` is raised.

The scheduler can run with full, relevant, or irredundant anchor sets
(Theorems 4 and 6 make the three equivalent on well-posed graphs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import time

from repro.core.anchors import AnchorMode, AnchorSets, anchor_sets_for_mode
from repro.core.exceptions import (
    BudgetExceededError,
    InconsistentConstraintsError,
    IndexedKernelUnsupported,
    UnfeasibleConstraintsError,
)
from repro.core.graph import ConstraintGraph, Edge
from repro.core.schedule import RelativeSchedule
from repro.core.wellposed import WellPosedness, check_well_posed, make_well_posed
from repro.observability.tracer import STATE as _OBS

#: Offset state: offsets[vertex][anchor] = sigma_a(vertex).
OffsetState = Dict[str, Dict[str, int]]


@dataclass
class IterationRecord:
    """One scheduler round: the offsets after IncrementalOffset, the
    violated backward edges found, and the offsets after readjustment
    (equal to *computed* when nothing was violated).  This is exactly
    the structure of the paper's Fig. 10 trace."""

    iteration: int
    computed: OffsetState
    violations: List[Tuple[Edge, str]]
    readjusted: OffsetState


@dataclass
class ScheduleTrace:
    """Full per-iteration history of a scheduling run (Fig. 10)."""

    records: List[IterationRecord] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return len(self.records)

    def format_fig10(self, vertices: Optional[List[str]] = None,
                     anchors: Optional[List[str]] = None) -> str:
        """Render the trace as the offset table of Fig. 10.

        One row per vertex; per iteration, a "Compute" column with the
        offsets after IncrementalOffset and a "Readjust" column filled
        only for vertices whose offsets were moved.
        """
        if not self.records:
            return "(empty trace)"
        if vertices is None:
            vertices = sorted(self.records[0].computed)
        if anchors is None:
            seen: Dict[str, None] = {}
            for record in self.records:
                for offsets in record.computed.values():
                    for anchor in offsets:
                        seen.setdefault(anchor)
            anchors = list(seen)

        def cell(state: OffsetState, vertex: str) -> str:
            offsets = state.get(vertex, {})
            if not offsets:
                return "-"
            return ",".join(str(offsets[a]) if a in offsets else "-" for a in anchors)

        header = ["vertex"]
        for record in self.records:
            header.append(f"compute{record.iteration}")
            header.append(f"readjust{record.iteration}")
        lines = ["  ".join(f"{h:>12}" for h in header)]
        for vertex in vertices:
            row = [vertex]
            for record in self.records:
                row.append(cell(record.computed, vertex))
                if record.readjusted == record.computed:
                    row.append("")
                else:
                    before = record.computed.get(vertex, {})
                    after = record.readjusted.get(vertex, {})
                    row.append(cell(record.readjusted, vertex) if before != after else "")
            lines.append("  ".join(f"{c:>12}" for c in row))
        return "\n".join(lines)


class IterativeIncrementalScheduler:
    """The paper's ``IncrementalScheduling`` procedure.

    Args:
        graph: a constraint graph with an acyclic forward subgraph.
        anchor_mode: which anchor sets to compute offsets against.
        anchor_sets: pre-computed anchor sets (overrides *anchor_mode*'s
            recomputation; callers doing the full pipeline pass the
            irredundant sets here).
        record_trace: keep per-iteration snapshots (Fig. 10).  Trace
            recording runs on the reference dict loops (the snapshots
            *are* the dict states).
        use_indexed: run on the indexed array kernel
            (:func:`repro.core.indexed.schedule_offsets`); False selects
            the original dict-of-dict loops, retained as the reference
            implementation for differential testing.
        deadline: absolute ``time.perf_counter()`` value after which the
            run aborts with :class:`BudgetExceededError`; checked once
            per round (the granularity of one relaxation sweep), so the
            None fast path costs a single comparison.
    """

    def __init__(self, graph: ConstraintGraph,
                 anchor_mode: AnchorMode = AnchorMode.FULL,
                 anchor_sets: Optional[AnchorSets] = None,
                 record_trace: bool = False,
                 use_indexed: bool = True,
                 deadline: Optional[float] = None) -> None:
        self.graph = graph
        self.anchor_mode = anchor_mode
        self.anchor_sets = anchor_sets or anchor_sets_for_mode(graph, anchor_mode)
        self.record_trace = record_trace
        self.use_indexed = use_indexed
        self.deadline = deadline
        self.trace: Optional[ScheduleTrace] = ScheduleTrace() if record_trace else None
        self._order = graph.forward_topological_order()

    # ------------------------------------------------------------------

    def run(self) -> RelativeSchedule:
        """Compute the minimum relative schedule.

        Raises:
            InconsistentConstraintsError: after ``|Eb| + 1`` rounds with
                violations remaining (Corollary 2).
        """
        return self._run(None)

    def run_from(self, previous: OffsetState) -> RelativeSchedule:
        """Warm-start: resume relaxation from *previous* offsets.

        The public entry point for incremental rescheduling after a
        constraint *addition*: any under-approximation of the new
        fixpoint is a sound starting state (offsets only ever increase,
        Lemma 8), so the previous schedule's offsets restart the
        relaxation with unaffected regions converging immediately.
        *previous* is reshaped to this scheduler's anchor sets --
        entries the sets do not track are dropped, newly tracked
        entries start at 0, negatives are clamped to 0.

        Runs on the indexed array kernel under exactly the same
        eligibility rule as :meth:`run` (falling back to the reference
        dict loops only for anchor sets the compilation cannot
        represent), so warm-start rescheduling is as fast as a cold run.

        Raises:
            InconsistentConstraintsError: after ``|Eb| + 1`` rounds with
                violations remaining (Corollary 2).
        """
        warm: OffsetState = {}
        for vertex in self.graph.vertex_names():
            old = previous.get(vertex, {})
            warm[vertex] = {anchor: max(0, old.get(anchor, 0))
                            for anchor in self.anchor_sets[vertex]}
        return self._run(warm)

    def _run(self, warm: Optional[OffsetState]) -> RelativeSchedule:
        """The shared cold/warm driver behind :meth:`run` / :meth:`run_from`."""
        tracer = _OBS.tracer
        rec = tracer.enabled
        if (self.deadline is not None
                and time.perf_counter() > self.deadline):
            raise BudgetExceededError(
                "wall-clock deadline exceeded before scheduling started")
        if self.use_indexed and not self.record_trace:
            try:
                schedule = self._run_indexed(warm)
            except IndexedKernelUnsupported as reason:
                # reference loops accept arbitrary anchor tags
                if rec:
                    tracer.count("kernel.fallbacks")
                    tracer.event("kernel.fallback", reason=str(reason))
            else:
                if rec:
                    tracer.count("kernel.indexed_runs")
                    tracer.event("kernel.gate", use_indexed=True,
                                 record_trace=False, decision="indexed")
                    self._record_run(tracer, schedule.iterations,
                                     warm is not None, "indexed")
                return schedule
        elif rec:
            tracer.event("kernel.gate", use_indexed=self.use_indexed,
                         record_trace=self.record_trace, decision="reference")
        offsets: OffsetState = warm if warm is not None else {
            vertex: {anchor: 0 for anchor in self.anchor_sets[vertex]}
            for vertex in self.graph.vertex_names()
        }
        backward = self.graph.backward_edges()
        max_rounds = len(backward) + 1
        for round_index in range(1, max_rounds + 1):
            if (self.deadline is not None
                    and time.perf_counter() > self.deadline):
                raise BudgetExceededError(
                    f"wall-clock deadline exceeded after "
                    f"{round_index - 1} scheduling round(s)")
            before = _snapshot(offsets) if rec else {}
            self._incremental_offset(offsets)
            if rec:
                relaxed = _count_raises(before, offsets)
            computed = _snapshot(offsets) if self.record_trace else {}
            violations = self._find_violations(offsets, backward)
            if not violations:
                if self.record_trace:
                    self.trace.records.append(IterationRecord(
                        round_index, computed, [], computed))
                if rec:
                    tracer.count("scheduler.relaxations", relaxed)
                    tracer.event("scheduler.iteration", round=round_index,
                                 violations=0, relaxations=relaxed,
                                 kernel="reference")
                    tracer.count("kernel.reference_runs")
                    self._record_run(tracer, round_index,
                                     warm is not None, "reference")
                return RelativeSchedule(
                    graph=self.graph, anchor_sets=self.anchor_sets,
                    offsets=offsets, anchor_mode=self.anchor_mode,
                    iterations=round_index)
            if rec:
                before = _snapshot(offsets)
            self._readjust(offsets, violations)
            if rec:
                relaxed += _count_raises(before, offsets)
                tracer.count("scheduler.relaxations", relaxed)
                tracer.event("scheduler.iteration", round=round_index,
                             violations=len(violations), relaxations=relaxed,
                             kernel="reference")
            if self.record_trace:
                self.trace.records.append(IterationRecord(
                    round_index, computed, violations, _snapshot(offsets)))
        if rec:
            tracer.count("kernel.reference_runs")
            self._record_run(tracer, max_rounds, warm is not None,
                             "reference", converged=False)
        raise InconsistentConstraintsError(
            f"no schedule after {max_rounds} iterations: timing constraints "
            f"are inconsistent (Corollary 2)")

    def _record_run(self, tracer, iterations: int, warm: bool,
                    kernel: str, converged: bool = True) -> None:
        """Emit the per-run summary event and roll-up counters."""
        backward = len(self.graph.backward_edges())
        if tracer.enabled:  # callers guard; stay safe standalone
            tracer.count("scheduler.runs")
            tracer.count("scheduler.iterations", iterations)
            tracer.event("scheduler.run", iterations=iterations,
                         bound=backward + 1, backward_edges=backward,
                         warm=warm, kernel=kernel, converged=converged)

    def _run_indexed(self, initial: Optional[OffsetState] = None) -> RelativeSchedule:
        """Run on the indexed array kernel (warm-started from *initial*
        when given).

        Raises:
            IndexedKernelUnsupported: the anchor sets name a tag the
                compilation does not know as an anchor; the caller falls
                back to the reference dict loops, which accept arbitrary
                tag names.  Any *other* exception -- a ``KeyError`` in
                particular -- is a genuine kernel bug and propagates
                instead of being masked as a silent slow-path result.
        """
        from repro.core.indexed import schedule_offsets

        offsets, iterations, raw = schedule_offsets(
            self.graph, self.anchor_sets, return_raw=True, initial=initial)
        schedule = RelativeSchedule(
            graph=self.graph, anchor_sets=self.anchor_sets,
            offsets=offsets, anchor_mode=self.anchor_mode,
            iterations=iterations)
        # Raw rows let validate() certify without the dict round-trip,
        # as long as the graph has not mutated since.
        schedule._raw_offset_rows = (self.graph.version, raw)
        return schedule

    # ------------------------------------------------------------------

    def _incremental_offset(self, offsets: OffsetState) -> None:
        """One longest-path sweep over the acyclic forward graph.

        Offsets only ever increase (Lemma 8); each sweep relaxes every
        forward edge once in topological order, so its cost is
        ``O(|A| * |Ef|)``.
        """
        for vertex in self._order:
            tracked = offsets[vertex]
            for edge in self.graph.in_edges(vertex, forward_only=True):
                weight = edge.static_weight
                source_offsets = offsets[edge.tail]
                for anchor, sigma in source_offsets.items():
                    if anchor not in tracked:
                        continue
                    candidate = sigma + weight
                    if candidate > tracked[anchor]:
                        tracked[anchor] = candidate
                # When the tail is itself an anchor tracked for this
                # vertex, its own offset is normalized to 0
                # (Definition 3), so the edge also implies
                # sigma_tail(vertex) >= 0 + weight.  This covers both
                # unbounded sequencing edges (weight 0) and bounded
                # minimum constraints leaving an anchor.
                if edge.tail in tracked and weight > tracked[edge.tail]:
                    tracked[edge.tail] = weight

    def _find_violations(self, offsets: OffsetState,
                         backward: List[Edge]) -> List[Tuple[Edge, str]]:
        """Backward edges whose inequality fails for some shared anchor."""
        violations: List[Tuple[Edge, str]] = []
        for edge in backward:
            tail_offsets = self._with_self(offsets, edge.tail)
            head_offsets = self._with_self(offsets, edge.head)
            for anchor, sigma_tail in tail_offsets.items():
                if anchor not in head_offsets:
                    continue
                if head_offsets[anchor] < sigma_tail + edge.weight:
                    violations.append((edge, anchor))
        return violations

    def _with_self(self, offsets: OffsetState, vertex: str) -> Dict[str, int]:
        """The tracked offsets of *vertex*, plus the implicit normalized
        ``sigma_vertex(vertex) = 0`` when the vertex is an anchor."""
        entries = offsets[vertex]
        if self.graph.is_anchor(vertex) and vertex not in entries:
            entries = dict(entries)
            entries[vertex] = 0
        return entries

    def _readjust(self, offsets: OffsetState,
                  violations: List[Tuple[Edge, str]]) -> None:
        """Raise violated offsets by the minimum amount (ReadjustOffsets).

        A violation whose anchor *is* the head vertex cannot be repaired
        -- the head's own offset is pinned at 0 -- so it persists and
        the iteration bound of Corollary 2 converts it into an
        inconsistency report.
        """
        for edge, anchor in violations:
            if anchor == edge.head:
                continue
            sigma_tail = self._with_self(offsets, edge.tail)[anchor]
            required = sigma_tail + edge.weight
            if offsets[edge.head].get(anchor, 0) < required:
                offsets[edge.head][anchor] = required


def _snapshot(offsets: OffsetState) -> OffsetState:
    return {vertex: dict(entries) for vertex, entries in offsets.items()}


def _count_raises(before: OffsetState, after: OffsetState) -> int:
    """How many per-anchor offsets moved between two snapshots.

    Offsets only ever increase (Lemma 8), so every difference is a
    relaxation; entries absent from *before* (readjustment can introduce
    them) count as raised from the implicit 0.
    """
    changed = 0
    for vertex, entries in after.items():
        old = before.get(vertex)
        if old is None:
            changed += sum(1 for sigma in entries.values() if sigma != 0)
            continue
        for anchor, sigma in entries.items():
            if old.get(anchor, 0) != sigma:
                changed += 1
    return changed


def schedule_graph(graph: ConstraintGraph,
                   anchor_mode: AnchorMode = AnchorMode.IRREDUNDANT,
                   auto_well_pose: bool = True,
                   validate: bool = True,
                   record_trace: bool = False,
                   use_indexed: bool = True,
                   watchdog: Optional[Dict[str, int]] = None,
                   deadline: Optional[float] = None) -> RelativeSchedule:
    """Run the paper's full four-step pipeline (Fig. 9) on *graph*.

    1. check well-posedness (Theorem 2);
    2. if ill-posed and *auto_well_pose*, minimally serialize with
       ``make_well_posed`` (Section IV-C);
    3. compute the anchor sets selected by *anchor_mode* (irredundant by
       default, Section IV-D);
    4. iterative incremental scheduling (Section IV-E).

    The full anchor sets are computed once and passed to both the
    well-posedness check and (via *anchor_mode*'s resolution) the
    scheduler; every stage shares the graph's versioned analysis cache,
    so nothing is recomputed unless serialization mutates the graph.

    Returns the minimum relative schedule of the (possibly serialized)
    graph; the scheduled graph is available as ``schedule.graph``.

    Args:
        watchdog: optional per-anchor timeout bounds ``W(a)``; validated
            against the scheduled graph's anchors and attached to the
            returned schedule (``schedule.watchdog``) for the simulators
            and :meth:`RelativeSchedule.bounded_completion`.
        deadline: absolute ``time.perf_counter()`` value; checked
            between pipeline stages and once per scheduler round.

    Raises:
        UnfeasibleConstraintsError: positive cycle with delays at 0.
        IllPosedError: ill-posed and cannot be (or may not be) serialized.
        InconsistentConstraintsError: scheduling did not converge.
        GraphStructureError: watchdog bounds naming a non-anchor or
            carrying a negative/non-integer bound.
        BudgetExceededError: the wall-clock deadline expired.
    """
    from repro.core.anchors import find_anchor_sets
    from repro.core.exceptions import IllPosedError

    def check_deadline(stage: str) -> None:
        if deadline is not None and time.perf_counter() > deadline:
            raise BudgetExceededError(
                f"wall-clock deadline exceeded after {stage}")

    tracer = _OBS.tracer
    rec = tracer.enabled
    if rec:
        tracer.begin_span("pipeline.schedule_graph")
    try:
        if rec:
            tracer.begin_span("pipeline.analysis")
        try:
            anchor_sets = find_anchor_sets(graph)
            status = check_well_posed(graph, anchor_sets=anchor_sets)
        finally:
            if rec:
                tracer.end_span()
        check_deadline("well-posedness analysis")
        if status is WellPosedness.UNFEASIBLE:
            raise UnfeasibleConstraintsError("constraint graph has a positive cycle")
        if status is WellPosedness.ILL_POSED:
            if not auto_well_pose:
                raise IllPosedError(
                    "constraint graph is ill-posed; rerun with auto_well_pose=True "
                    "to attempt minimal serialization")
            if rec:
                tracer.begin_span("pipeline.serialization")
            try:
                graph = make_well_posed(graph)
            finally:
                if rec:
                    tracer.end_span()
            check_deadline("serialization")

        if rec:
            tracer.begin_span("pipeline.scheduling")
        try:
            scheduler = IterativeIncrementalScheduler(
                graph, anchor_mode=anchor_mode,
                anchor_sets=anchor_sets_for_mode(graph, anchor_mode),
                record_trace=record_trace, use_indexed=use_indexed,
                deadline=deadline)
            schedule = scheduler.run()
        finally:
            if rec:
                tracer.end_span()
        if validate:
            # Fresh from the indexed scheduler the raw offset rows are still
            # authoritative (nothing can have mutated them between run() and
            # here), so one array pass replaces the dict-based validation;
            # anything it cannot certify gets the precise per-edge scan.
            from repro.core.indexed import certify_offset_lists
            if rec:
                tracer.begin_span("pipeline.validation")
            try:
                raw = getattr(schedule, "_raw_offset_rows", None)
                if (raw is None or raw[0] != graph.version
                        or not certify_offset_lists(graph, raw[1])):
                    schedule.validate()
            finally:
                if rec:
                    tracer.end_span()
        if watchdog is not None:
            from repro.core.watchdog import validate_watchdog_bounds

            schedule.watchdog = validate_watchdog_bounds(
                watchdog, graph.anchors, graph.source)
        if record_trace:
            schedule.trace = scheduler.trace  # type: ignore[attr-defined]
        return schedule
    finally:
        if rec:
            tracer.end_span()
