"""Execution delays: bounded integers or the unbounded sentinel.

The paper's hardware model (Section II) is synchronous: every operation
takes an integral number of cycles, its *execution delay*.  Operations
that synchronize on external events or iterate on data-dependent
conditions have delays unknown at compile time -- *unbounded* delays.
Such operations (together with the source vertex) are the *anchors* of a
constraint graph.

This module defines the :data:`UNBOUNDED` sentinel, the :data:`Delay`
type alias, and small helpers shared by the rest of the core.
"""

from __future__ import annotations

from typing import Mapping, Union


class Unbounded:
    """Singleton marker for an unbounded execution delay.

    The delay of an anchor can assume any integer value from 0 to
    infinity; its minimum value, used whenever a static bound is needed
    (feasibility checks, offset computation), is 0.
    """

    _instance = None

    def __new__(cls) -> "Unbounded":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNBOUNDED"

    def __reduce__(self):
        # Preserve singleton identity across pickling.
        return (Unbounded, ())


#: The unique unbounded-delay marker.
UNBOUNDED = Unbounded()


class Stalled:
    """Singleton marker for a completion signal that never arrives.

    A *profile* value (not a static delay annotation): where an anchor's
    observed delay would normally be a non-negative integer, STALLED
    says the environment never raised ``done``.  Static analyses reject
    it (:func:`resolve` raises); the simulators treat it as an infinite
    delay that only a watchdog bound (:mod:`repro.core.watchdog`) can
    convert into a detected timeout instead of a hang.
    """

    _instance = None

    def __new__(cls) -> "Stalled":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "STALLED"

    def __reduce__(self):
        return (Stalled, ())


#: The unique never-completes marker for runtime delay profiles.
STALLED = Stalled()

#: A delay is a non-negative integer number of cycles, or UNBOUNDED.
Delay = Union[int, Unbounded]


def is_unbounded(delay: Delay) -> bool:
    """Return True when *delay* is the unbounded sentinel."""
    return isinstance(delay, Unbounded)


def is_stalled(value) -> bool:
    """Return True when *value* is the stalled-profile sentinel."""
    return isinstance(value, Stalled)


def validate_delay(delay: Delay) -> Delay:
    """Validate a delay value and return it.

    Raises:
        TypeError: if *delay* is neither an int nor UNBOUNDED.
        ValueError: if *delay* is a negative integer.
    """
    if is_unbounded(delay):
        return delay
    if isinstance(delay, bool) or not isinstance(delay, int):
        raise TypeError(f"execution delay must be an int or UNBOUNDED, got {delay!r}")
    if delay < 0:
        raise ValueError(f"execution delay must be non-negative, got {delay}")
    return delay


def min_value(delay: Delay) -> int:
    """The minimum value a delay can assume (0 for unbounded delays).

    All static analyses in the paper -- feasibility (Theorem 1), offset
    computation (Definition 3), ``length(a, b)`` -- evaluate unbounded
    delays at this minimum.
    """
    return 0 if is_unbounded(delay) else delay


def resolve(delay: Delay, name: str, profile: Mapping[str, int]) -> int:
    """Resolve a delay to a concrete cycle count under a delay *profile*.

    A *profile* maps anchor names to the actual delays observed at run
    time (Section III-A: "for all profiles of execution delays").

    Args:
        delay: the static delay annotation of the vertex.
        name: the vertex name, used to look up unbounded delays.
        profile: mapping from anchor name to observed delay.

    Raises:
        KeyError: if *delay* is unbounded and *name* is not in *profile*.
        ValueError: if the profile supplies a negative delay.
    """
    if not is_unbounded(delay):
        return delay
    value = profile[name]
    if is_stalled(value):
        raise ValueError(f"anchor {name!r} is stalled: no finite delay to resolve")
    if value < 0:
        raise ValueError(f"profile delay for {name!r} must be non-negative, got {value}")
    return value


def validate_profile(profile: Mapping[str, object], anchors,
                     source: str = "", *, complete: bool = False,
                     allow_stalled: bool = False) -> None:
    """Validate a runtime delay profile against a graph's anchors.

    Args:
        profile: mapping from anchor name to observed delay (int, or
            STALLED when *allow_stalled*).
        anchors: the graph's anchors (the valid profile keys).
        source: the graph source; exempt from the completeness check
            (its activation delay defaults to 0 everywhere).
        complete: require every non-source anchor to appear in the
            profile.
        allow_stalled: accept the STALLED sentinel as a value.

    Raises:
        GraphStructureError: unknown anchor name, negative or non-integer
            delay, or (with *complete*) a missing anchor.
    """
    from repro.core.exceptions import GraphStructureError

    anchor_set = set(anchors)
    for name, value in profile.items():
        if name not in anchor_set:
            raise GraphStructureError(
                f"profile names {name!r}, which is not an anchor "
                f"(anchors: {sorted(anchor_set)})")
        if is_stalled(value):
            if not allow_stalled:
                raise GraphStructureError(
                    f"profile delay for {name!r} is STALLED, which this "
                    f"entry point does not accept")
            continue
        if isinstance(value, bool) or not isinstance(value, int):
            raise GraphStructureError(
                f"profile delay for {name!r} must be an int, got {value!r}")
        if value < 0:
            raise GraphStructureError(
                f"profile delay for {name!r} must be non-negative, got {value}")
    if complete:
        missing = sorted(a for a in anchor_set
                         if a != source and a not in profile)
        if missing:
            raise GraphStructureError(
                f"profile omits anchors {missing}; every unbounded "
                f"operation needs an observed delay")
