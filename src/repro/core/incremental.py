"""Incremental rescheduling after constraint changes.

Lemma 8 shows the scheduler's offsets only ever *increase* toward the
longest-path fixpoint, and any offset state that under-approximates the
final values is a valid starting point for further relaxation.  Two
practical consequences:

* **adding** a timing constraint (or sequencing edge) can reuse the
  existing minimum schedule as the initial offsets -- the relaxation
  resumes instead of restarting from zero, touching only the affected
  region (interactive constraint editing, Hebe's conflict-resolution
  loop);
* **removing** a constraint can only lower offsets, so a from-scratch
  run is required -- :func:`without_constraint` packages that.

The resumed run keeps the ``|Eb| + 1`` iteration bound of Theorem 8
relative to the *new* backward-edge count, and inconsistency is still
detected per Corollary 2.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.anchors import anchor_sets_for_mode
from repro.core.constraints import TimingConstraint
from repro.core.graph import Edge
from repro.core.schedule import RelativeSchedule
from repro.core.scheduler import IterativeIncrementalScheduler
from repro.observability.tracer import STATE as _OBS


def add_constraint_incremental(schedule: RelativeSchedule,
                               constraint: TimingConstraint,
                               validate: bool = True) -> RelativeSchedule:
    """Add *constraint* to a scheduled graph and reschedule incrementally.

    The graph is copied (the input schedule stays valid for the old
    graph); the new run starts from the existing offsets, so unaffected
    regions converge immediately.

    Args:
        schedule: a minimum relative schedule of the current graph.
        constraint: the min/max timing constraint to add.
        validate: check the resulting schedule's inequalities.

    Returns:
        The minimum relative schedule of the extended graph.

    Raises:
        CyclicForwardGraphError: a minimum constraint against the
            partial order.
        UnfeasibleConstraintsError: the extended constraints form a
            positive cycle -- no schedule exists for any delay values.
        IllPosedError: the extended graph is ill-posed; run
            ``make_well_posed`` and reschedule from scratch.
        InconsistentConstraintsError: scheduling did not converge.
    """
    from repro.core.exceptions import IllPosedError, UnfeasibleConstraintsError
    from repro.core.wellposed import WellPosedness, check_well_posed

    graph = schedule.graph.copy()
    constraint.apply(graph)
    graph.forward_topological_order()  # min constraints: cycle check

    # Classify the extended graph exactly like the from-scratch pipeline
    # (schedule_graph with auto_well_pose=False), so the two entry
    # points accept and reject identically.  Fuzzing found three
    # divergences in the old max-only containment check (see
    # tests/qa/regressions/warm_start_*.json): a *minimum* constraint
    # can also break containment (it grows anchor sets downstream), in
    # which case the warm reschedule silently produced offsets for an
    # ill-posed graph; and unfeasible additions surfaced as whichever of
    # InconsistentConstraintsError/IllPosedError tripped first instead
    # of the pipeline's UnfeasibleConstraintsError.
    status = check_well_posed(graph)
    if status is WellPosedness.UNFEASIBLE:
        raise UnfeasibleConstraintsError(
            f"adding {constraint} creates a positive cycle")
    if status is WellPosedness.ILL_POSED:
        raise IllPosedError(
            f"adding {constraint} makes the graph ill-posed; run "
            f"make_well_posed and reschedule from scratch")

    tracer = _OBS.tracer
    if tracer.enabled:
        tracer.count("incremental.warm_reschedules")
        tracer.event("incremental.add_constraint", constraint=str(constraint))
    anchor_sets = anchor_sets_for_mode(graph, schedule.anchor_mode)
    scheduler = IterativeIncrementalScheduler(
        graph, anchor_mode=schedule.anchor_mode, anchor_sets=anchor_sets)
    result = scheduler.run_from(schedule.offsets)
    if validate:
        result.validate()
    return result


def reschedule_with_observed(schedule: RelativeSchedule,
                             observed: Mapping[str, int],
                             validate: bool = False) -> RelativeSchedule:
    """Fold observed anchor delays into the graph and warm-reschedule.

    The online executor's warm-start entry point, keyed on partial
    completion state: each ``{anchor: observed delay}`` pair rebinds the
    anchor to a *bounded* vertex via
    :meth:`~repro.core.graph.ConstraintGraph.bind_anchor_delay`, then
    the relaxation resumes from the previous offsets.  Observed delays
    are >= 0 while the static offsets evaluated the unknown delays at
    their minimum (0), so the previous offsets under-approximate the
    rebound fixpoint and the warm start is sound (Lemma 8) -- the
    executor never reschedules from scratch.

    The result is the minimum relative schedule of the rebound graph:
    its anchors are the source plus the still-unobserved anchors, and an
    operation whose remaining anchor set is ``{source}`` has an absolute
    start time of ``done(source) + sigma_source(v)``.  By the minimum
    relative schedule's any-profile optimality, that start equals the
    original schedule's ``start_times(observed)[v]`` -- the
    anomaly-freedom invariant the qa oracle pins.

    Args:
        schedule: a minimum relative schedule of the current graph.
        observed: anchor name -> observed execution delay (``done -
            start``), for any subset of the non-source anchors.
        validate: check the resulting schedule's inequalities.

    Raises:
        GraphStructureError: an entry names the source, a non-anchor,
            or carries a negative/non-int delay.
        InconsistentConstraintsError: scheduling did not converge.
    """
    graph = schedule.graph.copy()
    for anchor in sorted(observed):
        graph.bind_anchor_delay(anchor, observed[anchor])

    tracer = _OBS.tracer
    if tracer.enabled:
        tracer.count("incremental.observed_reschedules")
        tracer.event("incremental.bind_observed",
                     anchors=len(observed),
                     remaining=len(graph.anchors) - 1)
    anchor_sets = anchor_sets_for_mode(graph, schedule.anchor_mode)
    scheduler = IterativeIncrementalScheduler(
        graph, anchor_mode=schedule.anchor_mode, anchor_sets=anchor_sets)
    result = scheduler.run_from(schedule.offsets)
    if validate:
        result.validate()
    return result


def without_constraint(schedule: RelativeSchedule, edge: Edge,
                       validate: bool = True) -> RelativeSchedule:
    """Remove a constraint edge and reschedule (from scratch -- removal
    can only lower offsets, so warm starts are unsound)."""
    from repro.core.scheduler import schedule_graph

    tracer = _OBS.tracer
    if tracer.enabled:
        tracer.count("incremental.cold_reschedules")
        tracer.event("incremental.remove_constraint",
                     tail=edge.tail, head=edge.head)
    graph = schedule.graph.copy()
    graph.remove_edge(edge)
    result = schedule_graph(graph, anchor_mode=schedule.anchor_mode,
                            auto_well_pose=False, validate=validate)
    return result


