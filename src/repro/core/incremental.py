"""Incremental rescheduling after constraint changes.

Lemma 8 shows the scheduler's offsets only ever *increase* toward the
longest-path fixpoint, and any offset state that under-approximates the
final values is a valid starting point for further relaxation.  Two
practical consequences:

* **adding** a timing constraint (or sequencing edge) can reuse the
  existing minimum schedule as the initial offsets -- the relaxation
  resumes instead of restarting from zero, touching only the affected
  region (interactive constraint editing, Hebe's conflict-resolution
  loop);
* **removing** a constraint can only lower offsets, so a from-scratch
  run is required -- :func:`without_constraint` packages that.

The resumed run keeps the ``|Eb| + 1`` iteration bound of Theorem 8
relative to the *new* backward-edge count, and inconsistency is still
detected per Corollary 2.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.anchors import AnchorMode, anchor_sets_for_mode
from repro.core.constraints import MaxTimingConstraint, MinTimingConstraint, TimingConstraint
from repro.core.exceptions import CyclicForwardGraphError
from repro.core.graph import ConstraintGraph, Edge, EdgeKind
from repro.core.schedule import RelativeSchedule
from repro.core.scheduler import IterativeIncrementalScheduler


def add_constraint_incremental(schedule: RelativeSchedule,
                               constraint: TimingConstraint,
                               validate: bool = True) -> RelativeSchedule:
    """Add *constraint* to a scheduled graph and reschedule incrementally.

    The graph is copied (the input schedule stays valid for the old
    graph); the new run starts from the existing offsets, so unaffected
    regions converge immediately.

    Args:
        schedule: a minimum relative schedule of the current graph.
        constraint: the min/max timing constraint to add.
        validate: check the resulting schedule's inequalities.

    Returns:
        The minimum relative schedule of the extended graph.

    Raises:
        CyclicForwardGraphError: a minimum constraint against the
            partial order.
        IllPosedError: a maximum constraint that is ill-posed on the new
            graph (detected via the containment criterion).
        InconsistentConstraintsError: the extended constraints admit no
            schedule.
    """
    from repro.core.exceptions import IllPosedError
    from repro.core.wellposed import containment_violations

    graph = schedule.graph.copy()
    constraint.apply(graph)
    graph.forward_topological_order()  # min constraints: cycle check

    anchor_sets = anchor_sets_for_mode(graph, schedule.anchor_mode)
    if isinstance(constraint, MaxTimingConstraint):
        violations = containment_violations(graph)
        if violations:
            raise IllPosedError(
                f"adding {constraint} makes the graph ill-posed "
                f"(missing anchors {sorted(violations[0][1])}); run "
                f"make_well_posed and reschedule from scratch")

    scheduler = IterativeIncrementalScheduler(
        graph, anchor_mode=schedule.anchor_mode, anchor_sets=anchor_sets)
    warm = _warm_offsets(schedule, anchor_sets)
    result = _run_from(scheduler, warm)
    if validate:
        result.validate()
    return result


def without_constraint(schedule: RelativeSchedule, edge: Edge,
                       validate: bool = True) -> RelativeSchedule:
    """Remove a constraint edge and reschedule (from scratch -- removal
    can only lower offsets, so warm starts are unsound)."""
    from repro.core.scheduler import schedule_graph

    graph = schedule.graph.copy()
    graph.remove_edge(edge)
    result = schedule_graph(graph, anchor_mode=schedule.anchor_mode,
                            auto_well_pose=False, validate=validate)
    return result


def _warm_offsets(schedule: RelativeSchedule, anchor_sets) -> Dict[str, Dict[str, int]]:
    """The previous offsets, reshaped to the new anchor sets.

    Entries the new sets do not track are dropped; newly tracked
    entries start at 0 (they only relax upward, Lemma 8)."""
    warm: Dict[str, Dict[str, int]] = {}
    for vertex, tracked in anchor_sets.items():
        old = schedule.offsets.get(vertex, {})
        warm[vertex] = {anchor: old.get(anchor, 0) for anchor in tracked}
    return warm


def _run_from(scheduler: IterativeIncrementalScheduler,
              offsets: Dict[str, Dict[str, int]]) -> RelativeSchedule:
    """Run the iterative scheduler starting from *offsets*."""
    from repro.core.exceptions import InconsistentConstraintsError

    backward = scheduler.graph.backward_edges()
    max_rounds = len(backward) + 1
    for round_index in range(1, max_rounds + 1):
        scheduler._incremental_offset(offsets)
        violations = scheduler._find_violations(offsets, backward)
        if not violations:
            return RelativeSchedule(
                graph=scheduler.graph, anchor_sets=scheduler.anchor_sets,
                offsets=offsets, anchor_mode=scheduler.anchor_mode,
                iterations=round_index)
        scheduler._readjust(offsets, violations)
    raise InconsistentConstraintsError(
        f"no schedule after {max_rounds} iterations: the added timing "
        f"constraint is inconsistent (Corollary 2)")
