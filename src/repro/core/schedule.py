"""The relative schedule: per-anchor offsets and start-time evaluation.

A *relative schedule* (Definition 5) is the set of offsets of each
vertex with respect to each anchor in its anchor set:
``Omega = { sigma_a(v) | a in A(v), for all v }``.

Given a run-time *delay profile* ``{delta(a) | a in A}`` the start time
of every operation follows recursively (Section III-A)::

    T(v) = max over a in A(v) of ( T(a) + delta(a) + sigma_a(v) )

with ``T(source) = 0``.  The minimum relative schedule minimises every
offset simultaneously, hence minimises ``T(v)`` for *every* profile --
the central optimality property of relative scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.anchors import AnchorMode, AnchorSets
from repro.core.exceptions import OffsetViolation, ScheduleViolationError
from repro.core.graph import ConstraintGraph


@dataclass
class RelativeSchedule:
    """Offsets of every vertex from the anchors in its anchor set.

    Attributes:
        graph: the constraint graph that was scheduled.
        anchor_sets: the anchor sets (full, relevant, or irredundant)
            used during scheduling; ``offsets[v]`` has exactly the keys
            ``anchor_sets[v]``.
        offsets: ``offsets[v][a] = sigma_a(v)``.
        anchor_mode: which anchor-set variant produced this schedule.
        iterations: scheduler iterations used (``<= |Eb| + 1``).
        watchdog: optional per-anchor timeout bounds ``W(a)`` attached
            by ``schedule_graph(..., watchdog=...)``; honored by the
            simulators and by :meth:`bounded_completion`.
    """

    graph: ConstraintGraph
    anchor_sets: AnchorSets
    offsets: Dict[str, Dict[str, int]]
    anchor_mode: AnchorMode = AnchorMode.FULL
    iterations: int = 0
    watchdog: Optional[Dict[str, int]] = None
    #: (graph version, raw offset rows) stamped by the indexed scheduler
    #: so re-validation can reuse the vectorized row check; internal.
    _raw_offset_rows: Optional[Tuple[int, List[List[int]]]] = field(
        default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def offset(self, vertex: str, anchor: str) -> int:
        """``sigma_anchor(vertex)``; KeyError if the anchor is not in the
        vertex's anchor set."""
        return self.offsets[vertex][anchor]

    def anchors_of(self, vertex: str) -> List[str]:
        """The anchors this schedule tracks for *vertex*, sorted."""
        return sorted(self.offsets[vertex])

    def max_offset(self, anchor: str) -> int:
        """``sigma_a^max`` -- the largest offset any vertex holds w.r.t.
        *anchor* (Section VI); 0 when no vertex references it."""
        values = [offsets[anchor] for offsets in self.offsets.values() if anchor in offsets]
        return max(values) if values else 0

    def max_offsets(self) -> Dict[str, int]:
        """``sigma_a^max`` for every anchor of the graph."""
        return {anchor: self.max_offset(anchor) for anchor in self.graph.anchors}

    def sum_of_max_offsets(self) -> int:
        """Sum of ``sigma_a^max`` over all anchors -- the paper's proxy for
        control implementation complexity (Table IV)."""
        return sum(self.max_offsets().values())

    # ------------------------------------------------------------------
    # start-time evaluation
    # ------------------------------------------------------------------

    def start_times(self, profile: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Evaluate ``T(v)`` for every vertex under a delay *profile*.

        The profile maps anchor names to observed execution delays;
        anchors missing from the profile (including the source) default
        to 0.  Evaluation follows the forward graph in topological
        order, so every anchor's start time is known before it is used.
        """
        profile = dict(profile or {})
        resolved: Dict[str, int] = {}
        for anchor in self.graph.anchors:
            value = profile.get(anchor, 0)
            if value < 0:
                raise ValueError(f"negative delay {value} for anchor {anchor!r}")
            resolved[anchor] = value

        start: Dict[str, int] = {}
        for vertex in self.graph.forward_topological_order():
            terms = [start[a] + resolved[a] + sigma
                     for a, sigma in self.offsets.get(vertex, {}).items()]
            start[vertex] = max(terms) if terms else 0
        return start

    def completion_time(self, profile: Optional[Mapping[str, int]] = None) -> int:
        """``T(sink)`` under *profile*: the latency of the whole graph."""
        return self.start_times(profile)[self.graph.sink]

    def bounded_completion(self, watchdog: Optional[Mapping[str, int]] = None) -> int:
        """The worst-case latency when every watchdog holds.

        Evaluates ``T(sink)`` at the profile that sets each anchor's
        delay to its watchdog bound ``W(a)`` -- the largest delay the
        anchor can exhibit without firing its watchdog.  With bounds on
        every anchor this converts the schedule's unbounded latency
        into a hard guarantee: *either* the sink starts by this cycle,
        *or* some watchdog has fired (a detected timeout).

        Args:
            watchdog: bounds to evaluate at; defaults to the bounds
                attached by ``schedule_graph(..., watchdog=...)``.

        Raises:
            ValueError: when no bounds are attached or given.
        """
        bounds = dict(watchdog if watchdog is not None else (self.watchdog or {}))
        if not bounds:
            raise ValueError("bounded_completion needs watchdog bounds; none "
                             "are attached to this schedule")
        return self.start_times(bounds)[self.graph.sink]

    def start_time_expression(self, vertex: str) -> str:
        """A human-readable rendering of the recursive start-time formula,
        e.g. ``max(T(v0) + d(v0) + 8, T(a) + d(a) + 5)``."""
        terms = [f"T({a}) + d({a}) + {sigma}"
                 for a, sigma in sorted(self.offsets[vertex].items())]
        if not terms:
            return "0"
        if len(terms) == 1:
            return terms[0]
        return "max(" + ", ".join(terms) + ")"

    # ------------------------------------------------------------------
    # validation and reporting
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check every edge inequality over the shared anchors.

        For each edge ``(t, h)`` with static weight ``w`` and each anchor
        ``a`` tracked for both endpoints, require
        ``sigma_a(h) >= sigma_a(t) + w``; additionally, an unbounded
        forward edge ``(t, h)`` whose tail is tracked for ``h`` requires
        ``sigma_t(h) >= 0`` (trivially true, offsets are non-negative).

        Raises:
            ScheduleViolationError: (a :class:`ValueError`) carrying the
                :class:`OffsetViolation` witness of the first violated
                edge.
        """
        from repro.core.indexed import UNKNOWN, find_offset_violation

        # One vectorized pass decides most schedules, surfacing the
        # same per-edge witness the reference scan produces; only the
        # cases the kernel cannot represent (no numpy, non-anchor
        # offset tags, negative offsets) fall through to the scan.
        status, violation = find_offset_violation(self.graph, self.offsets)
        if violation is not None:
            raise ScheduleViolationError(violation)
        if status is not UNKNOWN:
            return

        memo: Dict[str, Dict[str, int]] = {}

        def with_self(vertex: str) -> Dict[str, int]:
            entries = memo.get(vertex)
            if entries is None:
                entries = self.offsets.get(vertex, {})
                if self.graph.is_anchor(vertex) and vertex not in entries:
                    entries = dict(entries)
                    entries[vertex] = 0
                memo[vertex] = entries
            return entries

        for edge in self.graph.edges():
            tail_offsets = with_self(edge.tail)
            head_offsets = self.offsets.get(edge.head, {})
            weight = edge.static_weight
            for anchor, sigma_tail in tail_offsets.items():
                if anchor not in head_offsets:
                    continue
                if head_offsets[anchor] < sigma_tail + weight:
                    raise ScheduleViolationError(OffsetViolation(
                        edge=edge, anchor=anchor,
                        head_offset=head_offsets[anchor],
                        tail_offset=sigma_tail, weight=weight))
            if edge.is_unbounded and edge.tail in head_offsets:
                if head_offsets[edge.tail] < 0:
                    raise ValueError(
                        f"negative offset {head_offsets[edge.tail]} for anchor "
                        f"{edge.tail!r} at {edge.head!r}")

    def as_table(self) -> List[Tuple[str, List[str], Dict[str, int]]]:
        """Rows in the style of Table II: (vertex, sorted anchor set,
        offsets), in topological order."""
        rows = []
        for vertex in self.graph.forward_topological_order():
            offsets = self.offsets.get(vertex, {})
            rows.append((vertex, sorted(offsets), dict(offsets)))
        return rows

    def format_table(self) -> str:
        """Pretty-print the Table II style offset table."""
        anchors = [a for a in self.graph.anchors]
        header = ["vertex", "anchor set"] + [f"sigma_{a}" for a in anchors]
        lines = ["  ".join(f"{h:>12}" for h in header)]
        for vertex, anchor_list, offsets in self.as_table():
            row = [vertex, "{" + ",".join(anchor_list) + "}"]
            row += [str(offsets[a]) if a in offsets else "-" for a in anchors]
            lines.append("  ".join(f"{c:>12}" for c in row))
        return "\n".join(lines)

    def __repr__(self) -> str:
        total = sum(len(v) for v in self.offsets.values())
        return (f"RelativeSchedule(|V|={len(self.offsets)}, offsets={total}, "
                f"mode={self.anchor_mode.value}, iterations={self.iterations})")
