"""Timing constraint objects and their translation to graph edges.

Timing constraints bound the separation between the *start times* of two
operations (Section III):

* a **minimum** constraint ``l_ij >= 0`` requires
  ``sigma(v_j) >= sigma(v_i) + l_ij``;
* a **maximum** constraint ``u_ij >= 0`` requires
  ``sigma(v_j) <= sigma(v_i) + u_ij``.

Table I summarises the translation used by :func:`apply_constraints`:

=======================  ========  ============  ============
Item                     Type      Edge          Edge weight
=======================  ========  ============  ============
Sequencing edge (i, j)   forward   (v_i, v_j)    delta(v_i)
Minimum constraint l_ij  forward   (v_i, v_j)    l_ij
Maximum constraint u_ij  backward  (v_j, v_i)    -u_ij
=======================  ========  ============  ============

These dataclasses exist so front ends (the HDL parser, the sequencing-
graph builder) can carry constraints symbolically before a constraint
graph exists, and so reports can refer back to source-level constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Union

from repro.core.graph import ConstraintGraph, Edge


@dataclass(frozen=True)
class MinTimingConstraint:
    """``sigma(to_op) >= sigma(from_op) + cycles``.

    Always feasible and well-posed (Section III-B): its validity never
    depends on the value of any unbounded delay.
    """

    from_op: str
    to_op: str
    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"minimum constraint must be >= 0 cycles, got {self.cycles}")

    def apply(self, graph: ConstraintGraph) -> Edge:
        """Insert this constraint into *graph* as a forward edge."""
        return graph.add_min_constraint(self.from_op, self.to_op, self.cycles)

    def __str__(self) -> str:
        return f"mintime from {self.from_op} to {self.to_op} = {self.cycles} cycles"


@dataclass(frozen=True)
class MaxTimingConstraint:
    """``sigma(to_op) <= sigma(from_op) + cycles``.

    May be ill-posed in the presence of unbounded delays (Lemma 1): it is
    well-posed iff ``A(to_op) subset-of A(from_op)``.
    """

    from_op: str
    to_op: str
    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"maximum constraint must be >= 0 cycles, got {self.cycles}")

    def apply(self, graph: ConstraintGraph) -> Edge:
        """Insert this constraint into *graph* as a backward edge."""
        return graph.add_max_constraint(self.from_op, self.to_op, self.cycles)

    def __str__(self) -> str:
        return f"maxtime from {self.from_op} to {self.to_op} = {self.cycles} cycles"


TimingConstraint = Union[MinTimingConstraint, MaxTimingConstraint]


def exact_constraint(from_op: str, to_op: str, cycles: int) -> List[TimingConstraint]:
    """An *exact* separation: a min and a max constraint of equal value.

    This is the pattern of the paper's gcd example (Fig. 13), which pins
    the sampling of ``x`` to exactly one cycle after the sampling of
    ``y``.
    """
    return [MinTimingConstraint(from_op, to_op, cycles),
            MaxTimingConstraint(from_op, to_op, cycles)]


def apply_constraints(graph: ConstraintGraph,
                      constraints: Iterable[TimingConstraint]) -> List[Edge]:
    """Apply every constraint to *graph*, returning the created edges."""
    return [constraint.apply(graph) for constraint in constraints]


def validate_min_constraints(graph: ConstraintGraph) -> None:
    """Reject minimum constraints that conflict with the partial order.

    Section III: a minimum constraint ``l_ij`` is invalid if a forward
    dependency path already runs ``v_j -> v_i``; with ``l_ij > 0`` it
    contradicts the dependencies, and with ``l_ij = 0`` it should have
    been modelled as a maximum constraint ``u_ji = 0``.  Violations
    surface as forward-graph cycles.

    Raises:
        CyclicForwardGraphError: when any such conflict exists.
    """
    graph.forward_topological_order()


def constraint_slack(graph: ConstraintGraph, schedule: "object") -> List[dict]:
    """Per-constraint slack report for a computed schedule.

    For each constraint edge, reports the tightest slack over the shared
    anchors: ``min over a of (sigma_a(head) - sigma_a(tail) - weight)``.
    A slack of 0 means the constraint is active; negative means violated.

    The *schedule* must expose ``offsets[vertex][anchor]`` (as
    :class:`repro.core.schedule.RelativeSchedule` does).
    """
    rows: List[dict] = []

    def offsets_of(vertex: str) -> dict:
        # An anchor's offset from itself is normalized to 0 (Definition 3).
        entries = dict(schedule.offsets.get(vertex, {}))
        if graph.is_anchor(vertex):
            entries.setdefault(vertex, 0)
        return entries

    for edge in graph.edges():
        tail_offsets = offsets_of(edge.tail)
        head_offsets = offsets_of(edge.head)
        shared = [a for a in tail_offsets if a in head_offsets]
        if not shared:
            continue
        slack = min(head_offsets[a] - tail_offsets[a] - edge.static_weight
                    for a in shared)
        rows.append({
            "tail": edge.tail,
            "head": edge.head,
            "kind": edge.kind.value,
            "weight": edge.static_weight,
            "slack": slack,
            "active": slack == 0,
        })
    return rows
