"""Exception hierarchy for constraint-graph analysis and scheduling.

The paper distinguishes three failure modes:

* the forward constraint graph has a cycle -- the minimum constraints
  contradict the sequencing dependencies (Section III);
* the constraints are *unfeasible* -- unsatisfiable even with all
  unbounded delays at 0, i.e. a positive cycle exists (Theorem 1);
* the constraints are *ill-posed* -- satisfiable for some but not all
  values of the unbounded delays (Definition 7), and cannot be made
  well-posed by serialization (Lemma 3).

Scheduling itself can additionally detect inconsistency after
``|Eb| + 1`` iterations (Corollary 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # Edge lives in repro.core.graph, which imports this
    from repro.core.graph import Edge  # module; import only for typing.


class ConstraintGraphError(Exception):
    """Base class for all constraint-graph and scheduling errors."""


class CyclicForwardGraphError(ConstraintGraphError):
    """The forward constraint graph G_f(V, E_f) contains a cycle.

    The paper assumes G_f acyclic without loss of generality: a minimum
    constraint closing a forward cycle either contradicts the sequencing
    dependencies (l_ij > 0) or should have been expressed as a maximum
    constraint (l_ij = 0).
    """


class UnfeasibleConstraintsError(ConstraintGraphError):
    """The constraint graph has a positive cycle with unbounded delays at 0.

    By Theorem 1 no schedule exists, even for the most favourable delay
    profile.
    """


class IllPosedError(ConstraintGraphError):
    """The constraints cannot be satisfied for all unbounded delay values.

    Raised by ``make_well_posed`` when serialization would close an
    unbounded-length cycle (Lemma 3), i.e. no well-posed
    serial-compatible graph exists.
    """


class InconsistentConstraintsError(ConstraintGraphError):
    """The scheduler exhausted ``|Eb| + 1`` iterations without converging.

    By Corollary 2 this certifies that the timing constraints are
    inconsistent and no (relative) schedule exists.
    """


class GraphStructureError(ConstraintGraphError):
    """The graph violates a structural invariant (polarity, unknown vertex,
    duplicate names, non-anchor tail on an unbounded edge, ...)."""


class MalformedInputError(GraphStructureError):
    """Untrusted serialized input failed strict validation.

    Raised by :func:`repro.qa.serialize.validate_graph_dict` (and the
    loaders built on it) for structurally broken graph JSON: missing
    keys, wrong types, NaN or out-of-range weights, duplicate edges,
    self-loops.  A subclass of :class:`GraphStructureError` so every
    existing ``error:``-line handler already covers it.
    """


class WatchdogTimeoutError(ConstraintGraphError):
    """A watchdog anchor exceeded its timeout bound ``W(a)``.

    The runtime counterpart of an unbounded delay misbehaving: the
    anchor's completion signal did not arrive within the configured
    bound (plus any re-arm windows), and the degradation policy chose to
    abort.  Carries the anchor name, the bound, the cycle at which the
    (final) timeout fired, and how many re-arms were spent.
    """

    def __init__(self, message: str, *, anchor: str = "",
                 bound: int = 0, cycle: int = 0, rearms: int = 0) -> None:
        super().__init__(message)
        self.anchor = anchor
        self.bound = bound
        self.cycle = cycle
        self.rearms = rearms


class BudgetExceededError(ConstraintGraphError):
    """A hardened entry point refused or aborted a run over its budget.

    Raised by :mod:`repro.resilience.guard` when an input exceeds the
    configured vertex/edge caps, when the Theorem 8 iteration bound
    ``|Eb| + 1`` is larger than the allowed iteration budget, or when a
    wall-clock deadline expires mid-pipeline.
    """


@dataclass(frozen=True)
class OffsetViolation:
    """The witness of one violated edge inequality of a schedule.

    Produced identically by the vectorized certification kernel
    (:func:`repro.core.indexed.find_offset_violation`) and by the
    per-edge reference scan (:meth:`RelativeSchedule.validate`), so the
    linter, the exception path, and the differential tests all speak
    about the same object: the edge ``(tail, head)`` with static weight
    ``weight`` whose inequality ``sigma_a(head) >= sigma_a(tail) + w``
    fails for anchor ``anchor`` (tail anchors read at their implicit
    self offset 0, per Definition 3).
    """

    edge: "Edge"
    anchor: str
    head_offset: int
    tail_offset: int
    weight: int

    def message(self) -> str:
        """The human-readable inequality, as raised by ``validate()``."""
        return (f"schedule violates edge {self.edge!r} w.r.t. anchor "
                f"{self.anchor!r}: {self.head_offset} < "
                f"{self.tail_offset} + {self.weight}")


class ScheduleViolationError(ValueError):
    """A schedule fails an edge inequality; carries the exact witness.

    Subclasses :class:`ValueError` because that is the documented (and
    long-standing) contract of :meth:`RelativeSchedule.validate`; the
    attached :class:`OffsetViolation` lets programmatic consumers (the
    lint engine, the QA oracle) read the violated edge and anchor
    without parsing the message.
    """

    def __init__(self, violation: OffsetViolation) -> None:
        super().__init__(violation.message())
        self.violation = violation


class IndexedKernelUnsupported(ConstraintGraphError):
    """The indexed array kernel cannot represent this request.

    Raised by :func:`repro.core.indexed.schedule_offsets` when the anchor
    sets name a tag that is not an anchor vertex of the compiled graph
    (the dict reference loops accept arbitrary tag names, so callers
    fall back to them).  Deliberately distinct from :class:`KeyError`:
    a ``KeyError`` escaping the kernel is a genuine bug and must
    propagate, never be masked as a silent slow-path fallback.
    """
