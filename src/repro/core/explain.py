"""Human-readable explanations for infeasible timing constraints.

Theorem 1 ties infeasibility to a positive cycle; the cycle itself is a
*proof* the designer can act on: the chain of sequencing dependencies
and minimum constraints around it forces more cycles than the maximum
constraints on it allow.  :func:`explain_infeasibility` extracts a
witness cycle, reconstructs each edge's provenance (dependency /
min-time / max-time), and quantifies how over-constrained the loop is
(the cycle's positive slack deficit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.graph import ConstraintGraph, Edge, EdgeKind
from repro.core.paths import find_positive_cycle


@dataclass(frozen=True)
class CycleStep:
    """One edge of the infeasibility witness."""

    edge: Edge

    def describe(self) -> str:
        """One line of provenance for this edge of the witness."""
        edge = self.edge
        if edge.kind is EdgeKind.SEQUENCING:
            # Unbounded edges leave their anchor, so the tail names the
            # unknown delay (counted at its minimum 0 in the witness).
            weight = f"delta({edge.tail})" if edge.is_unbounded else str(edge.weight)
            return (f"{edge.tail} -> {edge.head}: dependency, "
                    f"{edge.head} starts >= {weight} after {edge.tail}")
        if edge.kind is EdgeKind.SERIALIZATION:
            return (f"{edge.tail} -> {edge.head}: serialization (added for "
                    f"well-posedness), {edge.head} waits for "
                    f"delta({edge.tail})")
        if edge.kind is EdgeKind.MIN_TIME:
            return (f"{edge.tail} -> {edge.head}: minimum constraint, "
                    f"separation >= {edge.weight}")
        return (f"{edge.head} .. {edge.tail}: maximum constraint, "
                f"separation <= {-edge.weight}")


@dataclass
class InfeasibilityExplanation:
    """A positive cycle with provenance and the slack deficit."""

    cycle: List[str]
    steps: List[CycleStep]
    excess: int  # total cycle weight: how many cycles over-constrained

    def format(self) -> str:
        """The full human-readable explanation with a suggested fix."""
        lines = [f"inconsistent timing constraints: the cycle "
                 f"{' -> '.join(self.cycle + [self.cycle[0]])} is "
                 f"over-constrained by {self.excess} cycle(s):"]
        lines += [f"  {step.describe()}" for step in self.steps]
        lines.append(
            "fix: relax a maximum constraint on this cycle by at least "
            f"{self.excess} cycle(s), or shorten the forward chain")
        return "\n".join(lines)


def explain_infeasibility(graph: ConstraintGraph
                          ) -> Optional[InfeasibilityExplanation]:
    """Explain why *graph* is unfeasible, or None if it is feasible.

    Returns the witness positive cycle with each edge's source-level
    meaning and the number of cycles by which the constraints
    over-commit the loop.
    """
    cycle = find_positive_cycle(graph)
    if cycle is None:
        return None
    steps: List[CycleStep] = []
    excess = 0
    for index, tail in enumerate(cycle):
        head = cycle[(index + 1) % len(cycle)]
        edge = _heaviest_edge(graph, tail, head)
        steps.append(CycleStep(edge))
        excess += edge.static_weight
    return InfeasibilityExplanation(cycle=cycle, steps=steps, excess=excess)


def _heaviest_edge(graph: ConstraintGraph, tail: str, head: str) -> Edge:
    """The tail->head edge the longest-path relaxation would have used."""
    candidates = [e for e in graph.out_edges(tail) if e.head == head]
    if not candidates:
        raise ValueError(f"no edge {tail!r} -> {head!r} on the witness cycle")
    return max(candidates, key=lambda e: e.static_weight)
