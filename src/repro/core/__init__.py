"""Core relative-scheduling algorithms from Ku & De Micheli (DAC 1990).

This package implements the paper's primary contribution:

* :mod:`repro.core.delay` -- bounded/unbounded execution delays.
* :mod:`repro.core.graph` -- the polar weighted constraint graph
  ``G(V, E)`` with forward and backward edges (Section III).
* :mod:`repro.core.constraints` -- minimum/maximum timing constraints and
  their translation to constraint-graph edges (Table I).
* :mod:`repro.core.paths` -- longest-path machinery, positive-cycle
  detection, and ``length(a, b)``.
* :mod:`repro.core.anchors` -- anchor sets, relevant anchors, and
  irredundant anchors (Sections III-A, III-D, IV-A, IV-D).
* :mod:`repro.core.wellposed` -- feasibility, well-posedness checking,
  and the ``makeWellposed`` minimal serialization (Sections III-B, IV-B,
  IV-C).
* :mod:`repro.core.scheduler` -- iterative incremental scheduling
  (Section IV-E) producing a :class:`repro.core.schedule.RelativeSchedule`.
* :mod:`repro.core.indexed` -- the graph compiled to dense arrays; the
  production kernel behind the paths/anchors/scheduler hot loops.
* :mod:`repro.core.reference` -- the original dict implementations,
  retained for differential testing and benchmarking.
"""

from repro.core.delay import UNBOUNDED, Delay, is_unbounded
from repro.core.exceptions import (
    ConstraintGraphError,
    CyclicForwardGraphError,
    IllPosedError,
    InconsistentConstraintsError,
    UnfeasibleConstraintsError,
)
from repro.core.graph import ConstraintGraph, Edge, EdgeKind, Vertex
from repro.core.constraints import MaxTimingConstraint, MinTimingConstraint
from repro.core.anchors import (
    AnchorMode,
    find_anchor_sets,
    irredundant_anchors,
    relevant_anchors,
)
from repro.core.wellposed import (
    WellPosedness,
    check_well_posed,
    is_feasible,
    make_well_posed,
)
from repro.core.indexed import IndexedGraph, get_indexed
from repro.core import reference
from repro.core.schedule import RelativeSchedule
from repro.core.scheduler import (
    IterativeIncrementalScheduler,
    ScheduleTrace,
    schedule_graph,
)
from repro.core.alap import (
    alap_offsets,
    critical_operations,
    relative_mobility,
)

__all__ = [
    "UNBOUNDED",
    "Delay",
    "is_unbounded",
    "ConstraintGraphError",
    "CyclicForwardGraphError",
    "IllPosedError",
    "InconsistentConstraintsError",
    "UnfeasibleConstraintsError",
    "ConstraintGraph",
    "Edge",
    "EdgeKind",
    "Vertex",
    "MinTimingConstraint",
    "MaxTimingConstraint",
    "AnchorMode",
    "find_anchor_sets",
    "relevant_anchors",
    "irredundant_anchors",
    "WellPosedness",
    "check_well_posed",
    "is_feasible",
    "make_well_posed",
    "IndexedGraph",
    "get_indexed",
    "reference",
    "RelativeSchedule",
    "IterativeIncrementalScheduler",
    "ScheduleTrace",
    "schedule_graph",
    "alap_offsets",
    "critical_operations",
    "relative_mobility",
]
