"""Batched scheduling: ``schedule_many`` over a shared CSR arena.

The paper schedules one small constraint graph at a time; production
workloads schedule *corpora* of them.  At 5-30 vertices per graph the
per-call cost of :func:`repro.core.scheduler.schedule_graph` is
dominated by fixed overhead (dict allocation, per-stage dispatch), so
this module amortizes it: a whole batch is packed into one **arena** --
concatenated vertex and edge arrays with per-graph offsets -- and every
pipeline stage runs as a few vectorized numpy sweeps over the arena
instead of ``len(batch)`` Python pipelines.

Stages, mirroring the per-graph pipeline exactly:

1. **assemble** -- one Python pass packs vertices/edges into arrays and
   computes isomorphism-stable cache keys (the vectorized twin of
   :mod:`repro.core.canonical`; byte-identical keys by construction).
2. **classify** -- level-synchronized Kahn sweeps find forward cycles
   and topological depths; Bellman-Ford rounds bounded per graph by
   ``|Eb_g| + 1`` decide feasibility (Theorem 1); uint64 anchor-bitmask
   propagation plus the backward-edge containment test decides
   well-posedness (Theorem 2).  Each graph gets its own verdict; a bad
   graph never poisons the batch.
3. **sweep** -- all well-posed graphs are relaxed together on one dense
   ``(vertices x max_anchors)`` offset table with per-level
   ``np.maximum.at`` scatters: the iterative incremental algorithm of
   Section IV-E, FULL anchor mode.  (Theorems 4/6 make start times
   identical across anchor modes on well-posed graphs, and FULL sets
   are exactly what the bitmask sweep already computed.)
4. **unpack** -- per-graph results materialize *lazily*; graphs the
   arena cannot represent (ill-posed graphs needing serialization,
   > 63 anchors, oversized weights) fall back to ``schedule_graph``
   per graph, preserving the exact exception taxonomy.

A persistent :class:`~repro.core.resultcache.ScheduleCache` keyed by
the canonical hash turns repeated (even renamed) designs into lookups;
only well-posed schedules are cached (see resultcache docs for why).

Error contract: per-graph failures (cyclic, unfeasible, ill-posed,
inconsistent, per-graph budget caps) are *stored* on the graph's
:class:`BatchResult` and raised from :meth:`BatchResult.unpack`; a
batch-level deadline (``budget.deadline_s``) raises
:class:`BudgetExceededError` for the whole call.
"""

from __future__ import annotations

import hashlib
import time
from contextlib import nullcontext
from typing import Any, Dict, Iterable, List, Optional, Union

try:  # pragma: no cover - exercised via the scalar-path tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.core.anchors import AnchorMode
from repro.core.canonical import (
    CERTIFICATE_VERSION,
    MIX_CONSTANTS,
    REFINEMENT_ROUNDS,
    UNBOUNDED_TOKEN,
    canonical_form,
)
from repro.core.exceptions import (
    BudgetExceededError,
    ConstraintGraphError,
    CyclicForwardGraphError,
    InconsistentConstraintsError,
    UnfeasibleConstraintsError,
)
from repro.core.graph import ConstraintGraph
from repro.core.resultcache import ScheduleCache
from repro.core.schedule import RelativeSchedule
from repro.core.scheduler import schedule_graph
from repro.observability.tracer import STATE as _OBS

#: Sentinel for untracked (vertex, anchor) cells of the dense table.
#: Junk writes into untracked cells stay far below zero (offsets are
#: non-negative), and reads always go through the tracked-bit masks.
_NEG = -(1 << 62)

#: Graphs with more anchors than fit one uint64 bitmask fall back to
#: the per-graph pipeline (the arena cannot classify them).
_MAX_MASK_ANCHORS = 63

#: Dense-table column cap: well-posed graphs with more anchors are
#: scheduled per graph rather than widening the whole batch's table.
_MAX_DENSE_ANCHORS = 32

#: Weight-magnitude cap for the dense path: keeps every relaxation sum
#: comfortably inside int64 even through junk-cell chains.
_MAX_DENSE_WEIGHT = 1 << 40

if _np is not None:
    _U1, _U2, _U3, _U4, _U5 = (_np.uint64(m) for m in MIX_CONSTANTS)
    _USH29 = _np.uint64(29)
    _USH32 = _np.uint64(32)
    _UONE = _np.uint64(1)
    _UIN = _np.uint64(1)    # kind-id offset for in-edge mixing
    _UOUT = _np.uint64(101)  # kind-id offset for out-edge mixing


def _mix3v(a, b, c):
    """Vectorized :func:`repro.core.canonical.mix3` on uint64 arrays."""
    x = a * _U1 + b * _U2 + c * _U3 + _U4
    x = x ^ (x >> _USH29)
    x = x * _U5
    x = x ^ (x >> _USH32)
    return x


def _mix_pre(b, c):
    """The round-invariant part of :func:`_mix3v`: ``b*M2 + c*M3 + M4``.

    The WL loop mixes every edge's (weight token, kind) with a fresh
    color each round; hoisting their linear combination out of the loop
    saves two multiplies and two adds per edge per round.
    """
    return b * _U2 + c * _U3 + _U4


def _mix1v(a, base):
    """:func:`_mix3v` with the b/c terms pre-combined by :func:`_mix_pre`."""
    x = a * _U1 + base
    x = x ^ (x >> _USH29)
    x = x * _U5
    x = x ^ (x >> _USH32)
    return x


def _check_deadline(deadline: Optional[float]) -> None:
    if deadline is not None and time.perf_counter() > deadline:
        raise BudgetExceededError("batch deadline expired")


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


class BatchResult:
    """The outcome of one graph in a :func:`schedule_many` call.

    Attributes:
        index: position of the graph in the input sequence.
        graph: the input graph (never mutated by the batch kernel).
        error: the taxonomy exception for a failed graph, else None.
        cached: True when the schedule came from the persistent cache.
        fallback: True when the per-graph pipeline produced the result.
    """

    __slots__ = ("index", "graph", "error", "cached", "fallback",
                 "_schedule", "_lazy")

    def __init__(self, index: int, graph: ConstraintGraph, *,
                 error: Optional[Exception] = None,
                 schedule: Optional[RelativeSchedule] = None,
                 lazy: Optional[tuple] = None,
                 cached: bool = False, fallback: bool = False) -> None:
        self.index = index
        self.graph = graph
        self.error = error
        self.cached = cached
        self.fallback = fallback
        self._schedule = schedule
        self._lazy = lazy

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def error_type(self) -> Optional[str]:
        return None if self.error is None else type(self.error).__name__

    @property
    def schedule(self) -> RelativeSchedule:
        """The relative schedule; materialized on first access."""
        if self.error is not None:
            raise self.error
        if self._schedule is None:
            self._schedule = _materialize(self.graph, self._lazy)
            self._lazy = None
        return self._schedule

    def unpack(self) -> RelativeSchedule:
        """The schedule, or the same exception ``schedule_graph`` raises."""
        return self.schedule

    def __repr__(self) -> str:
        state = self.error_type or ("cache" if self.cached else
                                    "fallback" if self.fallback else "ok")
        return f"BatchResult(#{self.index}, {state})"


class BatchRun:
    """An ordered sequence of :class:`BatchResult` plus run statistics."""

    __slots__ = ("results", "stats")

    def __init__(self, results: List[BatchResult],
                 stats: Dict[str, int]) -> None:
        self.results = results
        self.stats = stats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> BatchResult:
        return self.results[index]

    def __repr__(self) -> str:
        return f"BatchRun({self.stats})"


def _materialize(graph: ConstraintGraph, lazy: tuple) -> RelativeSchedule:
    """Build the RelativeSchedule from a lazy dense-row or cache payload."""
    kind = lazy[0]
    offsets: Dict[str, Dict[str, int]] = {}
    if kind == "dense":
        _, rows, bits, n_anchors, iterations = lazy
        names = graph.vertex_names()
        anchors = graph.anchors
        for j, name in enumerate(names):
            row = rows[j]
            brow = bits[j]
            offsets[name] = {anchors[s]: int(row[s])
                             for s in range(n_anchors) if brow[s]}
    else:  # "entry"/"entryr": relabel a cache entry onto this graph
        if kind == "entryr":
            # Arena results defer the canonical-order construction to
            # first access: lazy[1] is this graph's per-vertex canonical
            # rank in insertion order (a numpy view into the arena).
            _, ranks, entry = lazy
            names = graph.vertex_names()
            order = [""] * len(names)
            for name, r in zip(names, ranks.tolist()):
                order[r] = name
        else:
            _, order, entry = lazy
        iterations = entry["iterations"]
        anchor_names = [order[r] for r in entry["anchor_ranks"]]
        rows = entry["rows"]
        for r, name in enumerate(order):
            row = rows[r]
            offsets[name] = {anchor_names[j]: row[j]
                             for j in range(len(anchor_names)) if row[j] >= 0}
    anchor_sets = {name: frozenset(d) for name, d in offsets.items()}
    return RelativeSchedule(graph=graph, anchor_sets=anchor_sets,
                            offsets=offsets, anchor_mode=AnchorMode.FULL,
                            iterations=int(iterations))


# ----------------------------------------------------------------------
# arena assembly
# ----------------------------------------------------------------------


class _Arena:
    """Concatenated vertex/edge arrays of a batch, with per-graph offsets."""

    __slots__ = ("na", "nv", "ne", "vstart", "vcount", "estart", "ecount",
                 "nb", "maxw", "v_graph", "v_delay_tok", "v_flags",
                 "v_aslot", "n_anchors", "src", "snk", "e_graph", "e_tail",
                 "e_head", "e_w", "e_wtok", "e_kid", "e_fwd", "e_unb")


def _assemble(graphs: List[ConstraintGraph]) -> "_Arena":
    # The O(batch) Python loop of the fast path only concatenates each
    # graph's incrementally maintained primitive pack (graph.packed():
    # delay tokens plus flat (tail, head, weight, kind-id) edge records
    # with local vertex indices) -- the per-edge walk already happened
    # at construction time.  Everything else is derived vectorized.
    np = _np
    arena = _Arena()
    arena.na = len(graphs)
    vparts: List[Any] = []
    eparts: List[Any] = []
    vcount: List[int] = []
    ecount: List[int] = []
    src: List[int] = []
    snk: List[int] = []
    demoted = False
    for graph in graphs:
        toks, epack = graph.packed()
        vparts.append(toks)
        eparts.append(epack)
        demoted = demoted or type(toks) is list or type(epack) is list
        vcount.append(len(toks))
        ecount.append(len(epack) >> 2)
        vindex = graph._vindex
        src.append(vindex[graph.source])
        snk.append(vindex[graph.sink])

    if demoted:
        # At least one pack overflowed int64 and fell back to a Python
        # list; concatenate the slow way (np.asarray raises the same
        # OverflowError the int64 arena cannot avoid for such values).
        v_delay = np.asarray([t for p in vparts for t in p], np.int64)
        e_flat = np.asarray([t for p in eparts for t in p], np.int64)
    else:
        v_delay = np.frombuffer(
            b"".join([memoryview(p) for p in vparts]), np.int64)
        e_flat = np.frombuffer(
            b"".join([memoryview(p) for p in eparts]), np.int64)

    unb_token = UNBOUNDED_TOKEN
    arena.nv = v_delay.size
    arena.ne = e_flat.size >> 2
    arena.vcount = np.asarray(vcount, np.int64)
    arena.ecount = np.asarray(ecount, np.int64)
    arena.vstart = np.zeros(arena.na, np.int64)
    arena.vstart[1:] = np.cumsum(arena.vcount)[:-1]
    arena.estart = np.zeros(arena.na, np.int64)
    arena.estart[1:] = np.cumsum(arena.ecount)[:-1]
    arena.v_graph = np.repeat(np.arange(arena.na), arena.vcount)
    arena.e_graph = np.repeat(np.arange(arena.na), arena.ecount)
    arena.v_delay_tok = v_delay.view(np.uint64)  # two's-complement wrap
    arena.src = np.asarray(src, np.int64) + arena.vstart
    arena.snk = np.asarray(snk, np.int64) + arena.vstart
    arena.v_flags = np.zeros(arena.nv, np.uint64)
    arena.v_flags[arena.src] = 1
    arena.v_flags[arena.snk] = 2
    # Anchor slots: running count of unbounded vertices within each graph.
    anchor = arena.v_delay_tok == np.uint64(unb_token)
    running = np.cumsum(anchor) - anchor
    arena.v_aslot = np.where(
        anchor, running - running[arena.vstart[arena.v_graph]], -1)
    arena.n_anchors = np.bincount(
        arena.v_graph[anchor], minlength=arena.na).astype(np.int64)
    records = np.asarray(e_flat, np.int64).reshape(-1, 4)
    ebase = arena.vstart[arena.e_graph]  # local -> arena vertex indices
    arena.e_tail = records[:, 0] + ebase
    arena.e_head = records[:, 1] + ebase
    raw_w = records[:, 2]
    arena.e_unb = raw_w == -unb_token
    arena.e_w = np.where(arena.e_unb, 0, raw_w)
    arena.e_wtok = np.where(arena.e_unb, np.uint64(unb_token),
                            arena.e_w.astype(np.uint64))
    arena.e_kid = records[:, 3]
    arena.e_fwd = arena.e_kid != 2
    if arena.ne:
        arena.nb = np.bincount(arena.e_graph[~arena.e_fwd],
                               minlength=arena.na).astype(np.int64)
        arena.maxw = np.zeros(arena.na, np.int64)
        np.maximum.at(arena.maxw, arena.e_graph, np.abs(arena.e_w))
    else:
        arena.nb = np.zeros(arena.na, np.int64)
        arena.maxw = np.zeros(arena.na, np.int64)
    return arena


def _edge_sort(arena: "_Arena", rtail, rhead):
    """Certificate edge order ``(graph, rank_tail, rank_head, kind,
    weight-token)`` as one permutation.

    Packs the five sort keys into a single int64 when the ranges fit --
    one argsort is ~3x faster than a five-key lexsort on batches of
    small graphs.  The weight key must reproduce uint64 *value* order
    (nonnegative weights < UNBOUNDED_TOKEN < two's-complement-wrapped
    negative weights), done by an order-preserving remap onto a small
    range; oversized batches fall back to the lexsort.
    """
    np = _np
    e_w = arena.e_w
    neg = e_w < 0
    nonneg = ~neg & ~arena.e_unb
    pos_max = int(e_w[nonneg].max()) if nonneg.any() else 0
    neg_min = int(e_w[neg].min()) if neg.any() else 0
    span = pos_max + 2 - neg_min  # wkey values are in [0, span - 1]
    vmax = int(arena.vcount.max()) if arena.na else 1
    if arena.na * vmax * vmax * 4 * span >= 1 << 62:
        return np.lexsort((arena.e_wtok, arena.e_kid, rhead, rtail,
                           arena.e_graph))
    # nonneg weight -> value; UNBOUNDED -> pos_max+1; negative weight
    # w -> pos_max+2+(w-neg_min): exactly the uint64 token order.
    wkey = np.where(arena.e_unb, pos_max + 1,
                    np.where(neg, pos_max + 2 + (e_w - neg_min), e_w))
    comp = (((arena.e_graph * vmax + rtail) * vmax + rhead) * 4
            + arena.e_kid) * span + wkey
    return np.argsort(comp)


def _arena_keys(arena: "_Arena"):
    """Canonical cache keys for every arena graph (vectorized WL).

    Returns ``(keys, rank)``: per-graph SHA-256 hex keys (None for
    graphs whose colors do not refine to discrete -- not cacheable) and
    the per-vertex canonical rank within its graph.  Byte-identical to
    :func:`repro.core.canonical.canonical_form` by construction.
    """
    np = _np
    nv, ne, na = arena.nv, arena.ne, arena.na
    colors = _mix3v(arena.v_delay_tok, arena.v_flags, np.uint64(0))
    wtok = arena.e_wtok
    kid_u = arena.e_kid.astype(np.uint64)
    base_in = _mix_pre(wtok, kid_u + _UIN)
    base_out = _mix_pre(wtok, kid_u + _UOUT)
    tail = arena.e_tail
    head = arena.e_head
    for _ in range(REFINEMENT_ROUNDS):
        in_sum = np.zeros(nv, np.uint64)
        out_sum = np.zeros(nv, np.uint64)
        if ne:
            np.add.at(in_sum, head, _mix1v(colors[tail], base_in))
            np.add.at(out_sum, tail, _mix1v(colors[head], base_out))
        colors = _mix3v(colors, in_sum, out_sum)

    # Sort by (graph, color): compress colors to dense ranks first so
    # both keys pack into one int64 argsort (~2x faster than lexsort;
    # the stable color sort breaks ties by index, exactly as lexsort
    # would, so the permutation is identical).
    if nv < 1 << 31:
        corder = np.argsort(colors, kind="stable")
        crank = np.empty(nv, np.int64)
        crank[corder] = np.arange(nv)
        order = np.argsort(arena.v_graph * nv + crank)
    else:  # pragma: no cover - arenas never get this large in practice
        order = np.lexsort((colors, arena.v_graph))
    gsorted = arena.v_graph[order]
    csorted = colors[order]
    pos = np.empty(nv, np.int64)
    pos[order] = np.arange(nv)
    rank = pos - arena.vstart[arena.v_graph]
    ambiguous = np.zeros(na, bool)
    if nv > 1:
        dup = (csorted[1:] == csorted[:-1]) & (gsorted[1:] == gsorted[:-1])
        ambiguous[gsorted[1:][dup]] = True

    # Certificate streams for the whole arena in one buffer: per graph
    # [version, n, m, rank(source), rank(sink), delays by rank,
    #  (rank_tail, rank_head, kind, weight-token) sorted] -- the exact
    # layout canonical_form() hashes, as little-endian uint64.
    cert_len = 5 + arena.vcount + 4 * arena.ecount
    cstart = np.zeros(na + 1, np.int64)
    cstart[1:] = np.cumsum(cert_len)
    big = np.zeros(int(cstart[-1]), dtype="<u8")
    heads = cstart[:-1]
    big[heads] = CERTIFICATE_VERSION
    big[heads + 1] = arena.vcount
    big[heads + 2] = arena.ecount
    big[heads + 3] = rank[arena.src]
    big[heads + 4] = rank[arena.snk]
    big[cstart[arena.v_graph] + 5 + rank] = arena.v_delay_tok
    if ne:
        rtail = rank[tail]
        rhead = rank[head]
        eorder = _edge_sort(arena, rtail, rhead)
        eg_s = arena.e_graph[eorder]
        epos = np.arange(ne) - arena.estart[eg_s]
        ebase = cstart[eg_s] + 5 + arena.vcount[eg_s] + 4 * epos
        big[ebase] = rtail[eorder]
        big[ebase + 1] = rhead[eorder]
        big[ebase + 2] = arena.e_kid[eorder]
        big[ebase + 3] = wtok[eorder]

    # Batches of repeated designs share certificate bytes verbatim, so
    # hash each distinct certificate once and reuse the digest.
    keys: List[Optional[str]] = []
    seen: Dict[bytes, str] = {}
    starts = cstart.tolist()
    amb = ambiguous.tolist()
    for gi in range(na):
        if amb[gi]:
            keys.append(None)
            continue
        blob = big[starts[gi]:starts[gi + 1]].tobytes()
        key = seen.get(blob)
        if key is None:
            key = hashlib.sha256(blob).hexdigest()
            seen[blob] = key
        keys.append(key)
    return keys, rank


# ----------------------------------------------------------------------
# vectorized classification
# ----------------------------------------------------------------------


def _level_slices(levels) -> List[tuple]:
    """(start, end) runs of equal values in a sorted level array."""
    if levels.size == 0:
        return []
    change = _np.nonzero(_np.diff(levels))[0] + 1
    bounds = [0, *change.tolist(), int(levels.size)]
    return list(zip(bounds[:-1], bounds[1:]))


def _depths(arena: "_Arena", consider):
    """Kahn longest-path depths; vertices left at -1 sit on forward cycles.

    Runs on the compacted vertex set of the considered graphs -- in
    dedup-heavy batches that is a small fraction of the arena, and the
    level loop touches every compact cell once per level.
    """
    np = _np
    sel = np.nonzero(consider[arena.v_graph])[0]
    vmap = np.full(arena.nv, -1, np.int64)
    vmap[sel] = np.arange(sel.size)
    esel = consider[arena.e_graph] & arena.e_fwd
    ftail = vmap[arena.e_tail[esel]]
    fhead = vmap[arena.e_head[esel]]
    indeg = np.zeros(sel.size, np.int64)
    if ftail.size:
        np.add.at(indeg, fhead, 1)
    depth_c = np.full(sel.size, -1, np.int64)
    frontier = indeg == 0
    level = 0
    while frontier.any():
        depth_c[frontier] = level
        indeg[frontier] = -1
        if ftail.size:
            active = frontier[ftail]
            if active.any():
                np.add.at(indeg, fhead[active], -1)
        frontier = indeg == 0
        level += 1
    depth = np.full(arena.nv, -1, np.int64)
    depth[sel] = depth_c
    cyclic = np.zeros(arena.na, bool)
    unresolved = sel[depth_c < 0]
    if unresolved.size:
        cyclic[arena.v_graph[unresolved]] = True
    return depth, cyclic


def _classify_feasible(arena: "_Arena", depth, consider,
                       deadline: Optional[float]):
    """Per-graph Theorem 1 verdicts: True where a positive cycle exists.

    Forward level sweeps alternate with backward relaxation rounds; a
    graph still improving after ``|Eb_g| + 1`` improving rounds has a
    positive cycle (Corollary of the walk-length argument), exactly as
    in ``has_positive_cycle_indexed``.
    """
    np = _np
    fsel = consider[arena.e_graph] & arena.e_fwd
    ftail = arena.e_tail[fsel]
    fhead = arena.e_head[fsel]
    fwght = arena.e_w[fsel]
    fgrph = arena.e_graph[fsel]
    lvl = depth[ftail]
    order = np.argsort(lvl, kind="stable")
    ftail, fhead, fwght, fgrph, lvl = (
        ftail[order], fhead[order], fwght[order], fgrph[order], lvl[order])
    bsel = consider[arena.e_graph] & ~arena.e_fwd
    btail = arena.e_tail[bsel]
    bhead = arena.e_head[bsel]
    bwght = arena.e_w[bsel]
    bgrph = arena.e_graph[bsel]
    bound = arena.nb + 1
    dist = np.zeros(arena.nv, np.int64)
    rounds = np.zeros(arena.na, np.int64)
    unfeasible = np.zeros(arena.na, bool)
    slices = _level_slices(lvl)
    while True:
        _check_deadline(deadline)
        for s, e in slices:
            np.maximum.at(dist, fhead[s:e], dist[ftail[s:e]] + fwght[s:e])
        if btail.size == 0:
            break
        cand = dist[btail] + bwght
        improved = cand > dist[bhead]
        if not improved.any():
            break
        np.maximum.at(dist, bhead[improved], cand[improved])
        improved_g = np.zeros(arena.na, bool)
        improved_g[bgrph[improved]] = True
        rounds[improved_g] += 1
        unfeasible |= improved_g & (rounds > bound)
        # Only graphs that just improved (and are still candidates) need
        # more rounds; everything else has converged.
        keep = improved_g & ~unfeasible
        if not keep.any():
            break
        fkeep = keep[fgrph]
        ftail, fhead, fwght, fgrph, lvl = (
            ftail[fkeep], fhead[fkeep], fwght[fkeep], fgrph[fkeep], lvl[fkeep])
        slices = _level_slices(lvl)
        bkeep = keep[bgrph]
        btail, bhead, bwght, bgrph = (
            btail[bkeep], bhead[bkeep], bwght[bkeep], bgrph[bkeep])
    return unfeasible


def _classify_masks(arena: "_Arena", depth, consider):
    """Anchor bitmasks A(v) and per-graph ill-posedness (Theorem 2)."""
    np = _np
    mask = np.zeros(arena.nv, np.uint64)
    fsel = consider[arena.e_graph] & arena.e_fwd
    ftail = arena.e_tail[fsel]
    fhead = arena.e_head[fsel]
    funb = arena.e_unb[fsel]
    inject = np.zeros(ftail.size, np.uint64)
    unb_idx = np.nonzero(funb)[0]
    if unb_idx.size:
        # Unbounded edges always leave anchors (graph invariant), so the
        # tail slot is valid; the edge injects its tail's own anchor bit.
        slots = arena.v_aslot[ftail[unb_idx]].astype(np.uint64)
        inject[unb_idx] = _UONE << slots
    lvl = depth[ftail]
    order = np.argsort(lvl, kind="stable")
    ftail, fhead, inject, lvl = ftail[order], fhead[order], inject[order], lvl[order]
    for s, e in _level_slices(lvl):
        np.bitwise_or.at(mask, fhead[s:e], mask[ftail[s:e]] | inject[s:e])
    illposed = np.zeros(arena.na, bool)
    bsel = consider[arena.e_graph] & ~arena.e_fwd
    btail = arena.e_tail[bsel]
    bhead = arena.e_head[bsel]
    if btail.size:
        violated = (mask[btail] & ~mask[bhead]) != 0
        illposed[arena.e_graph[bsel][violated]] = True
    return mask, illposed


# ----------------------------------------------------------------------
# dense relaxation sweep (Section IV-E over the whole batch)
# ----------------------------------------------------------------------


def _dense_schedule(arena: "_Arena", depth, mask, fast,
                    deadline: Optional[float]):
    """Iterative incremental scheduling of all *fast* graphs at once.

    Returns ``(sigma, bits, iterations, inconsistent, vmap)``: the dense
    offset table (``_NEG`` in untracked cells), the tracked-cell masks,
    per-graph round counts, the graphs that exhausted their
    ``|Eb_g| + 1`` bound with violations remaining (Corollary 2), and
    the arena-vertex -> dense-row mapping.  The table holds only the
    rows of *fast* graphs (a graph's rows stay contiguous): in
    dedup-heavy batches the fast graphs are a small fraction of the
    arena, and a full-width table would dominate the sweep.
    """
    np = _np
    rows_sel = np.nonzero(fast[arena.v_graph])[0]
    vmap = np.full(arena.nv, -1, np.int64)
    vmap[rows_sel] = np.arange(rows_sel.size)
    ncols = int(arena.n_anchors[fast].max()) if fast.any() else 1
    ncols = max(ncols, 1)
    cols = np.arange(ncols, dtype=np.uint64)
    bits = ((mask[rows_sel][:, None] >> cols[None, :]) & _UONE).astype(bool)
    sigma = np.full((rows_sel.size, ncols), _NEG, np.int64)
    sigma[bits] = 0

    fsel = fast[arena.e_graph] & arena.e_fwd
    ftail_a = arena.e_tail[fsel]
    fhead_a = arena.e_head[fsel]
    fwght = arena.e_w[fsel]
    fgrph = arena.e_graph[fsel]
    lvl = depth[ftail_a]
    order = np.argsort(lvl, kind="stable")
    ftail_a, fhead_a, fwght, fgrph, lvl = (
        ftail_a[order], fhead_a[order], fwght[order], fgrph[order],
        lvl[order])
    ftail = vmap[ftail_a]
    fhead = vmap[fhead_a]
    # Anchor tails contribute their implicit self-offset 0 (Definition
    # 3) -- but only where the tail's own bit is tracked at the head,
    # mirroring the per-graph scheduler's tracked-anchor guard.
    fslot = arena.v_aslot[ftail_a]
    fslot_u = np.where(fslot >= 0, fslot, 0).astype(np.uint64)
    fself = (fslot >= 0) & (((mask[fhead_a] >> fslot_u) & _UONE) != 0)

    bsel = fast[arena.e_graph] & ~arena.e_fwd
    btail_a = arena.e_tail[bsel]
    btail = vmap[btail_a]
    bhead = vmap[arena.e_head[bsel]]
    bwght = arena.e_w[bsel]
    bgrph = arena.e_graph[bsel]
    bslot = arena.v_aslot[btail_a]

    bound = arena.nb + 1
    iterations = np.zeros(arena.na, np.int64)
    rounds_violated = np.zeros(arena.na, np.int64)
    inconsistent = np.zeros(arena.na, bool)
    unfinished = fast.copy()

    aft, afh, afw, afg, alvl, afself, afslot = (
        ftail, fhead, fwght, fgrph, lvl, fself, fslot)
    abt, abh, abw, abg, abslot = btail, bhead, bwght, bgrph, bslot
    slices = _level_slices(alvl)
    round_no = 0
    while unfinished.any():
        round_no += 1
        _check_deadline(deadline)
        for s, e in slices:
            rows = sigma[aft[s:e]]
            self_idx = np.nonzero(afself[s:e])[0]
            if self_idx.size:
                cidx = afslot[s:e][self_idx]
                rows[self_idx, cidx] = np.maximum(rows[self_idx, cidx], 0)
            np.maximum.at(sigma, afh[s:e], rows + afw[s:e, None])
        if abt.size:
            rows = sigma[abt]
            self_idx = np.nonzero(abslot >= 0)[0]
            if self_idx.size:
                cidx = abslot[self_idx]
                rows[self_idx, cidx] = np.maximum(rows[self_idx, cidx], 0)
            cand = rows + abw[:, None]
            head_bits = bits[abh]
            violated = (cand > sigma[abh]) & head_bits
            violated_e = violated.any(axis=1)
        else:
            violated_e = None
        violated_g = np.zeros(arena.na, bool)
        if violated_e is not None and violated_e.any():
            violated_g[abg[violated_e]] = True
        done = unfinished & ~violated_g
        iterations[done] = round_no
        unfinished = unfinished & violated_g
        if not unfinished.any():
            break
        rounds_violated[violated_g] += 1
        exhausted = unfinished & (rounds_violated >= bound)
        if exhausted.any():
            inconsistent |= exhausted
            unfinished = unfinished & ~exhausted
        if violated_e is not None:
            apply = violated & unfinished[abg][:, None]
            if apply.any():
                np.maximum.at(sigma, abh, np.where(apply, cand, _NEG))
        if not unfinished.any():
            break
        fkeep = unfinished[afg]
        aft, afh, afw, afg, alvl, afself, afslot = (
            aft[fkeep], afh[fkeep], afw[fkeep], afg[fkeep],
            alvl[fkeep], afself[fkeep], afslot[fkeep])
        slices = _level_slices(alvl)
        bkeep = unfinished[abg]
        abt, abh, abw, abg, abslot = (
            abt[bkeep], abh[bkeep], abw[bkeep], abg[bkeep], abslot[bkeep])
    return sigma, bits, iterations, inconsistent, vmap


def _certify_dense(arena: "_Arena", sigma, bits, fast, vmap):
    """Re-check every edge inequality of the dense results in one pass.

    Defensive: a graph failing certification is routed to the per-graph
    fallback rather than returned.  Mirrors RelativeSchedule.validate.
    """
    np = _np
    esel = fast[arena.e_graph]
    tail_a = arena.e_tail[esel]
    tail = vmap[tail_a]
    head = vmap[arena.e_head[esel]]
    wght = arena.e_w[esel]
    grph = arena.e_graph[esel]
    failed = np.zeros(arena.na, bool)
    if tail.size == 0:
        return failed
    rows = sigma[tail]
    slot = arena.v_aslot[tail_a]
    self_idx = np.nonzero(slot >= 0)[0]
    if self_idx.size:
        cidx = slot[self_idx]
        rows[self_idx, cidx] = np.maximum(rows[self_idx, cidx], 0)
    bad = ((rows + wght[:, None] > sigma[head]) & bits[head]).any(axis=1)
    if bad.any():
        failed[grph[bad]] = True
    return failed


# ----------------------------------------------------------------------
# cache glue
# ----------------------------------------------------------------------


class _CanonicalRows:
    """Dense results rewritten to canonical coordinates, arena-wide.

    One vectorized gather flattens every fast graph's offset cells --
    canonical vertex order, anchor columns in canonical-rank order,
    untracked cells already replaced by the cache's ``-1`` sentinel --
    into a single Python list; per-graph extraction is then pure list
    slicing (per-graph ``tolist`` calls dominate the unpack phase
    otherwise).
    """

    __slots__ = ("arena", "flat", "ranks", "astart", "cellstart")

    def __init__(self, arena: "_Arena", rank, sigma, bits, fast,
                 vmap) -> None:
        np = _np
        # Everything below is restricted to the rows of *fast* graphs --
        # in dedup-heavy batches those are a small fraction of the arena,
        # and payload() is never called for any other graph.  ``sigma``
        # and ``bits`` are already compact (indexed through *vmap*, which
        # may cover a superset of the current *fast*).
        fastv = fast[arena.v_graph]
        rows_sel = np.nonzero(fastv)[0]
        fg = np.nonzero(fast)[0]
        gmap = np.full(arena.na, -1, np.int64)  # arena graph -> fast slot
        gmap[fg] = np.arange(fg.size)
        cvcount = arena.vcount[fg]
        cvstart = np.zeros(fg.size + 1, np.int64)
        cvstart[1:] = np.cumsum(cvcount)
        # Compact dense rows, re-ordered to canonical vertex order.
        dense_rows = vmap[rows_sel]
        sigma_m = np.where(bits[dense_rows], sigma[dense_rows], -1)
        compact = cvstart[gmap[arena.v_graph[rows_sel]]] + rank[rows_sel]
        sigma_c = np.empty_like(sigma_m)
        sigma_c[compact] = sigma_m
        anchor_v = np.nonzero((arena.v_aslot >= 0) & fastv)[0]
        order = np.lexsort((rank[anchor_v], arena.v_graph[anchor_v]))
        anchor_v = anchor_v[order]
        slots = arena.v_aslot[anchor_v]  # dense columns in anchor-rank order
        self.ranks = rank[anchor_v].tolist()
        gk = arena.n_anchors[fg]
        astart = np.zeros(fg.size + 1, np.int64)
        astart[1:] = np.cumsum(gk)
        # Flatten sigma_c[cvstart_g + r, slots[astart_g + j]] over every
        # (fast graph g, canonical rank r, anchor j) cell, row-major.
        kv = np.repeat(gk, cvcount)  # cells per compact vertex row
        nrows = int(cvstart[-1])
        row_idx = np.repeat(np.arange(nrows), kv)
        cell_of_row = np.cumsum(kv) - kv
        j = np.arange(row_idx.size) - np.repeat(cell_of_row, kv)
        gi_of_row = np.repeat(np.arange(fg.size), cvcount)
        col_idx = slots[astart[gi_of_row[row_idx]] + j]
        self.flat = sigma_c[row_idx, col_idx].tolist()
        gcells = np.zeros(fg.size + 1, np.int64)
        gcells[1:] = np.cumsum(cvcount * gk)
        self.cellstart = gcells.tolist()
        self.astart = astart.tolist()
        self.arena = (arena, gmap)

    def payload(self, gi: int):
        """``(n, anchor_ranks, rows)`` of graph *gi* for a cache entry."""
        arena, gmap = self.arena
        fi = int(gmap[gi])
        n = int(arena.vcount[gi])
        s, e = self.astart[fi], self.astart[fi + 1]
        anchor_ranks = self.ranks[s:e]
        k = e - s
        if k == 0:  # unreachable for polar graphs (the source is an anchor)
            return n, anchor_ranks, [[] for _ in range(n)]
        off = self.cellstart[fi]
        flat = self.flat
        rows = [flat[o:o + k] for o in range(off, off + n * k, k)]
        return n, anchor_ranks, rows


def _entry_rows_from_offsets(order: List[str], anchor_ranks: List[int],
                             offsets: Dict[str, Dict[str, int]]):
    anchor_names = [order[r] for r in anchor_ranks]
    rows = []
    for name in order:
        entry = offsets.get(name, {})
        rows.append([entry.get(a, -1) for a in anchor_names])
    return rows


def _store_schedule_entry(cache: ScheduleCache, key: str, order: List[str],
                          rank_of: Dict[str, int],
                          schedule: RelativeSchedule) -> None:
    """Persist a per-graph FULL-mode schedule in canonical coordinates."""
    anchor_ranks = sorted(rank_of[a] for a in schedule.graph.anchors)
    rows = _entry_rows_from_offsets(order, anchor_ranks, schedule.offsets)
    cache.put(key, len(order), anchor_ranks, rows, schedule.iterations)


def _run_fallback(graph: ConstraintGraph, auto_well_pose: bool,
                  deadline: Optional[float]):
    """The per-graph pipeline for graphs the arena cannot represent.

    FULL anchor mode: start times are mode-independent on well-posed
    graphs (Theorems 4/6), FULL skips the irredundant-set computation,
    and FULL offsets are what the cache stores.
    """
    try:
        schedule = schedule_graph(graph, anchor_mode=AnchorMode.FULL,
                                  auto_well_pose=auto_well_pose,
                                  deadline=deadline)
    except BudgetExceededError:
        raise
    except ConstraintGraphError as error:
        return None, error
    return schedule, None


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def schedule_many(graphs: Iterable[ConstraintGraph], *,
                  cache: Optional[Union[ScheduleCache, str, Any]] = None,
                  budget: Optional[Any] = None,
                  auto_well_pose: bool = True) -> BatchRun:
    """Schedule a batch of independent constraint graphs together.

    Args:
        graphs: the batch; each graph is handled independently and
            never mutated.
        cache: a :class:`~repro.core.resultcache.ScheduleCache`, or a
            path to open one; staged entries are flushed before
            returning.  None disables caching.
        budget: an optional :class:`repro.resilience.guard.RunBudget`.
            Size and iteration caps apply *per graph* (an over-budget
            graph gets a ``BudgetExceededError`` result; the rest of
            the batch proceeds); ``deadline_s`` covers the whole call
            and raises ``BudgetExceededError`` from ``schedule_many``
            itself.
        auto_well_pose: serialize ill-posed graphs (via the per-graph
            fallback), as in ``schedule_graph``.

    Returns:
        A :class:`BatchRun` of :class:`BatchResult` in input order.
        ``result.unpack()`` either returns the graph's minimum relative
        schedule (FULL anchor mode) or raises the same exception type
        ``schedule_graph`` raises for that graph.
    """
    graphs = list(graphs)
    if cache is not None and not isinstance(cache, ScheduleCache):
        cache = ScheduleCache(cache)
    deadline = budget.absolute_deadline() if budget is not None else None
    tracer = _OBS.tracer
    results: List[Optional[BatchResult]] = [None] * len(graphs)

    eligible: List[int] = []
    for i, graph in enumerate(graphs):
        if budget is not None:
            try:
                budget.check_size(graph)
                budget.check_iteration_bound(graph)
            except BudgetExceededError as error:
                results[i] = BatchResult(i, graph, error=error)
                continue
        eligible.append(i)

    if _np is None:
        _schedule_scalar(graphs, eligible, results, cache,
                         auto_well_pose, deadline)
    elif eligible:
        _schedule_arena(graphs, eligible, results, cache,
                        auto_well_pose, deadline, tracer)

    if cache is not None:
        cache.flush()

    stats = {
        "graphs": len(graphs),
        "scheduled": sum(1 for r in results if r is not None and r.ok
                         and not r.cached and not r.fallback),
        "cache_hits": sum(1 for r in results if r is not None and r.cached),
        "fallbacks": sum(1 for r in results if r is not None and r.fallback),
        "errors": sum(1 for r in results if r is not None and not r.ok),
    }
    if tracer.enabled:
        for name, value in stats.items():
            tracer.count(f"batch.{name}", value)
        tracer.event("batch.run", **stats)
    return BatchRun(results, stats)  # type: ignore[arg-type]


def _span(tracer, name: str):
    """A tracer span under the PR-3 guard (free nullcontext when off)."""
    return tracer.span(name) if tracer.enabled else nullcontext()


def _schedule_arena(graphs, eligible, results, cache, auto_well_pose,
                    deadline, tracer) -> None:
    np = _np
    batch = [graphs[i] for i in eligible]
    with _span(tracer, "batch.assemble"):
        arena = _assemble(batch)
        keys, rank = _arena_keys(arena)
        _check_deadline(deadline)
        hits: Dict[int, dict] = {}
        if cache is not None:
            for ai, key in enumerate(keys):
                if key is None:
                    continue
                entry = cache.get(key)
                if entry is not None and entry["n"] == int(arena.vcount[ai]):
                    hits[ai] = entry

    def ranks_of(ai: int):
        vs = int(arena.vstart[ai])
        return rank[vs:vs + int(arena.vcount[ai])]

    def order_of(ai: int) -> List[str]:
        names = batch[ai].vertex_names()
        order: List[str] = [""] * len(names)
        for name, r in zip(names, ranks_of(ai).tolist()):
            order[r] = name
        return order

    for ai, entry in hits.items():
        results[eligible[ai]] = BatchResult(
            eligible[ai], batch[ai], cached=True,
            lazy=("entryr", ranks_of(ai), entry))

    # Within-batch dedup: isomorphic repeats of a graph already in this
    # batch are classified/scheduled once and relabelled from the
    # representative's canonical rows (exact -- the offsets are a
    # structural fixpoint).  Representatives that end up on the
    # per-graph fallback are not deduped (serialization of ill-posed
    # graphs is name-dependent).
    dup_of: Dict[int, int] = {}
    first_of: Dict[str, int] = {}
    for ai, key in enumerate(keys):
        if key is None or ai in hits:
            continue
        rep = first_of.setdefault(key, ai)
        if rep != ai:
            dup_of[ai] = rep

    with _span(tracer, "batch.classify"):
        consider = np.ones(arena.na, bool)
        for ai in hits:
            consider[ai] = False
        for ai in dup_of:
            consider[ai] = False
        depth, cyclic = _depths(arena, consider)
        _check_deadline(deadline)
        # Graphs whose anchors overflow one uint64 bitmask cannot be
        # classified in the arena at all; route them to the fallback.
        overflow = consider & (arena.n_anchors > _MAX_MASK_ANCHORS)
        consider2 = consider & ~cyclic & ~overflow
        unfeasible = _classify_feasible(arena, depth, consider2, deadline)
        mask, illposed = _classify_masks(arena, depth,
                                         consider2 & ~unfeasible)
        _check_deadline(deadline)

    fast = (consider2 & ~unfeasible & ~illposed
            & (arena.n_anchors <= _MAX_DENSE_ANCHORS)
            & (arena.maxw <= _MAX_DENSE_WEIGHT))
    need_fallback = (consider & ~cyclic & ~unfeasible & ~fast)

    inconsistent = np.zeros(arena.na, bool)
    vmap = None
    if fast.any():
        with _span(tracer, "batch.sweep"):
            sigma, bits, iterations, inconsistent, vmap = _dense_schedule(
                arena, depth, mask, fast, deadline)
            fast = fast & ~inconsistent
            failed = _certify_dense(arena, sigma, bits, fast, vmap)
            if failed.any():
                if tracer.enabled:
                    tracer.count("batch.certify_failures",
                                 int(failed.sum()))
                fast = fast & ~failed
                need_fallback = need_fallback | failed

    with _span(tracer, "batch.unpack"):
        canon = None
        if fast.any() and (cache is not None or dup_of):
            canon = _CanonicalRows(arena, rank, sigma, bits, fast, vmap)
        rep_entries: Dict[int, dict] = {}

        def dense_entry(ai: int) -> dict:
            entry = rep_entries.get(ai)
            if entry is None:
                n, anchor_ranks, rows = canon.payload(ai)
                entry = {"n": n, "anchor_ranks": anchor_ranks, "rows": rows,
                         "iterations": int(iterations[ai])}
                rep_entries[ai] = entry
                if cache is not None and keys[ai] is not None:
                    cache.put(keys[ai], n, anchor_ranks, rows,
                              int(iterations[ai]))
            return entry

        for ai in range(arena.na):
            i = eligible[ai]
            if results[i] is not None or ai in dup_of:
                continue
            graph = batch[ai]
            if cyclic[ai]:
                results[i] = BatchResult(i, graph, error=CyclicForwardGraphError(
                    "forward constraint graph has a cycle"))
            elif unfeasible[ai]:
                results[i] = BatchResult(i, graph, error=UnfeasibleConstraintsError(
                    "constraint graph has a positive cycle"))
            elif inconsistent[ai] and not need_fallback[ai]:
                results[i] = BatchResult(i, graph, error=InconsistentConstraintsError(
                    f"no convergence within the |Eb|+1 = "
                    f"{int(arena.nb[ai]) + 1} iteration bound"))
            elif fast[ai]:
                # A fast graph's dense rows are contiguous in the
                # compact table; vmap locates its first row.
                cvs = int(vmap[int(arena.vstart[ai])])
                n = int(arena.vcount[ai])
                k = int(arena.n_anchors[ai])
                results[i] = BatchResult(i, graph, lazy=(
                    "dense", sigma[cvs:cvs + n], bits[cvs:cvs + n], k,
                    int(iterations[ai])))
                if cache is not None and keys[ai] is not None:
                    dense_entry(ai)
            else:
                _check_deadline(deadline)
                schedule, error = _run_fallback(graph, auto_well_pose,
                                                deadline)
                results[i] = BatchResult(i, graph, error=error,
                                         schedule=schedule, fallback=True)
                if (schedule is not None and cache is not None
                        and keys[ai] is not None
                        and schedule.graph is graph):
                    order = order_of(ai)
                    rank_of = {name: r for r, name in enumerate(order)}
                    _store_schedule_entry(cache, keys[ai], order, rank_of,
                                          schedule)

        # Resolve within-batch duplicates from their representatives.
        for ai, rep in dup_of.items():
            i = eligible[ai]
            graph = batch[ai]
            rep_result = results[eligible[rep]]
            if rep_result.error is not None and not rep_result.fallback:
                # Structural verdicts (cyclic/unfeasible/inconsistent)
                # are isomorphism-invariant; reuse type and message.
                error = type(rep_result.error)(str(rep_result.error))
                results[i] = BatchResult(i, graph, error=error)
            elif fast[rep]:
                results[i] = BatchResult(i, graph, lazy=(
                    "entryr", ranks_of(ai), dense_entry(rep)))
            else:
                _check_deadline(deadline)
                schedule, error = _run_fallback(graph, auto_well_pose,
                                                deadline)
                results[i] = BatchResult(i, graph, error=error,
                                         schedule=schedule, fallback=True)


def _schedule_scalar(graphs, eligible, results, cache, auto_well_pose,
                     deadline) -> None:
    """Pure-Python batch path (numpy absent): per graph, cache-aware."""
    for i in eligible:
        _check_deadline(deadline)
        graph = graphs[i]
        form = canonical_form(graph) if cache is not None else None
        if form is not None:
            entry = cache.get(form.key)
            if entry is not None and entry["n"] == len(form.order):
                results[i] = BatchResult(i, graph, cached=True,
                                         lazy=("entry", form.order, entry))
                continue
        schedule, error = _run_fallback(graph, auto_well_pose, deadline)
        results[i] = BatchResult(i, graph, error=error, schedule=schedule,
                                 fallback=True)
        if (schedule is not None and form is not None
                and schedule.graph is graph):
            _store_schedule_entry(cache, form.key, form.order,
                                  form.rank, schedule)
