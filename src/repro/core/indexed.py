"""Indexed scheduling kernel: the constraint graph compiled to arrays.

The paper's Fig. 9 pipeline (well-posedness check, serialization,
anchor analysis, iterative scheduling) is built from a handful of
primitives -- topological sweeps, longest-path relaxation, anchor-set
propagation.  The seed implemented all of them directly on
:class:`~repro.core.graph.ConstraintGraph`'s dict-of-dict adjacency,
paying per-edge attribute lookups, dict hashing and dense
``|V| * |E|`` Bellman-Ford rounds in every stage.

This module compiles a graph once into an :class:`IndexedGraph`:

* vertices interned to dense integers (``names[i]`` / ``index[name]``),
  anchors additionally interned to *slots* so an anchor set becomes a
  single int bitmask;
* static edge weights materialized into per-vertex adjacency lists of
  ``(head, weight)`` int pairs, partitioned by direction and
  boundedness;
* the forward in-edge lists the scheduler sweeps, pre-grouped per head.

On top of it the hot loops are rewritten as flat array code:

* :func:`anchor_masks` -- ``findAnchorSet`` as bitset propagation in
  one topological sweep;
* :func:`relevant_masks` / :func:`irredundant_masks` -- the Section
  IV-D anchor analyses on masks and per-slot distance arrays;
* :func:`worklist_longest_from` and friends -- the Bellman-Ford family
  as deque/heap worklist relaxation (only vertices whose label changed
  are revisited) with walk-length positive-cycle detection, replacing
  the dense ``|V|`` rounds over the full edge list;
* :func:`schedule_offsets` -- the iterative incremental scheduler with
  per-vertex offset arrays instead of dict copies, and downstream-only
  propagation after the first sweep.

The compilation is memoised on the graph's versioned analysis cache
(:meth:`ConstraintGraph.cached`), so one compilation serves the whole
``check_well_posed -> make_well_posed -> schedule`` pipeline and is
invalidated automatically when the graph mutates.  The original dict
implementations are retained verbatim in :mod:`repro.core.reference`;
``tests/core/test_indexed_differential.py`` asserts the two kernels
agree on hundreds of seeded random graphs.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.exceptions import (
    CyclicForwardGraphError,
    InconsistentConstraintsError,
    IndexedKernelUnsupported,
    OffsetViolation,
    UnfeasibleConstraintsError,
)
from repro.core.graph import ConstraintGraph, Edge, EdgeKind
from repro.observability.tracer import STATE as _OBS

try:  # numpy accelerates the dense anchor analyses; every consumer has
    import numpy as _np  # a pure-Python fallback, so its absence only
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None  # costs speed, never correctness.


class IndexedGraph:
    """CSR-style compilation of a :class:`ConstraintGraph`.

    All vertex references are dense ints (positions in ``names``); all
    weights are pre-evaluated static weights (unbounded delays at their
    minimum 0, per Section III).  Instances are immutable snapshots of
    one graph version -- obtain them via :func:`get_indexed`, never
    hold one across a graph mutation.
    """

    __slots__ = (
        "n", "names", "index", "source", "sink",
        "anchor_vertices", "anchor_slot", "anchor_names", "n_anchors",
        "out_all", "out_bounded", "out_forward_w",
        "in_forward", "unbounded_out", "backward", "backward_edges",
        "edges", "_edge_raw", "_edge_arrays",
    )

    def __init__(self, graph: ConstraintGraph) -> None:
        names = graph.vertex_names()
        index = {name: i for i, name in enumerate(names)}
        n = len(names)
        self.n = n
        self.names = names
        self.index = index
        self.source = index[graph.source]
        self.sink = index[graph.sink]

        vertices = graph.vertices()
        anchor_vertices = [i for i, v in enumerate(vertices) if v.is_unbounded]
        anchor_slot = [-1] * n
        for slot, vid in enumerate(anchor_vertices):
            anchor_slot[vid] = slot
        self.anchor_vertices = anchor_vertices
        self.anchor_slot = anchor_slot
        self.anchor_names = [names[vid] for vid in anchor_vertices]
        self.n_anchors = len(anchor_vertices)

        #: every edge, static weights: out_all[v] = [(head, w), ...]
        out_all: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        #: bounded-weight edges only (defining-path traversals)
        out_bounded: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        #: forward edges, static weights (DAG sweeps, scheduler propagation)
        out_forward_w: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        #: forward in-edges per head (the scheduler's relaxation groups)
        in_forward: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        #: heads of unbounded out-edges (first hops of defining paths)
        unbounded_out: List[List[int]] = [[] for _ in range(n)]
        backward: List[Tuple[int, int, int]] = []
        backward_edges: List[Edge] = []

        edge_tails: List[int] = []
        edge_heads: List[int] = []
        edge_weights: List[int] = []
        #: every edge in graph insertion order -- the row order of
        #: ``edge_arrays``, so a vectorized finding maps back to its Edge.
        self.edges = list(graph.edges())
        for edge in self.edges:
            t = index[edge.tail]
            h = index[edge.head]
            w = edge.weight
            unbounded = not isinstance(w, int)
            sw = 0 if unbounded else w
            edge_tails.append(t)
            edge_heads.append(h)
            edge_weights.append(sw)
            out_all[t].append((h, sw))
            if unbounded:
                unbounded_out[t].append(h)
            else:
                out_bounded[t].append((h, sw))
            if edge.kind is EdgeKind.MAX_TIME:
                backward.append((t, h, sw))
                backward_edges.append(edge)
            else:
                out_forward_w[t].append((h, sw))
                in_forward[h].append((t, sw))

        self.out_all = out_all
        self.out_bounded = out_bounded
        self.out_forward_w = out_forward_w
        self.in_forward = in_forward
        self.unbounded_out = unbounded_out
        self.backward = backward
        self.backward_edges = backward_edges
        self._edge_raw = (edge_tails, edge_heads, edge_weights)
        self._edge_arrays = None

    @property
    def edge_arrays(self):
        """(tails, heads, static weights) as numpy arrays for the
        vectorized all-edges schedule check; None without numpy.

        Built on first access: only graphs past the numpy gate ever
        consume these, so small graphs (the common case on the paper
        designs) must not pay the array construction at compile time.
        """
        if self._edge_arrays is None and _np is not None:
            tails, heads, weights = self._edge_raw
            self._edge_arrays = (
                _np.array(tails, dtype=_np.intp),
                _np.array(heads, dtype=_np.intp),
                _np.array(weights, dtype=_np.float64),
            )
        return self._edge_arrays


def get_indexed(graph: ConstraintGraph) -> IndexedGraph:
    """The memoised indexed compilation of *graph* (current version)."""
    return graph.cached("indexed", lambda: IndexedGraph(graph))


#: Below this vertex count the numpy sweeps cost more in per-call
#: overhead than they save; the scalar loops take over (measured
#: crossover on the paper designs vs. the random workloads).
_NUMPY_MIN_N = 64

#: Per-stage crossovers: the fixed per-call cost of each vectorized
#: stage differs (the certifier builds one dense table; round 1 builds
#: level batches; the irredundant scan builds length matrices), so each
#: gets its own gate rather than sharing one global threshold.
_STAGE_MIN_N = {
    "round1": 64,
    "irredundant": 64,
    "table_check": 64,
}


def _use_numpy(idx: IndexedGraph, stage: Optional[str] = None) -> bool:
    """Whether the vectorized sweeps pay off for this graph and stage.

    Deliberately does not touch ``idx.edge_arrays``: the arrays build
    lazily on first access, and only the table-check stage consumes
    them, so gating must not force the construction.
    """
    min_n = _STAGE_MIN_N.get(stage, _NUMPY_MIN_N)
    return _np is not None and idx.n >= min_n and idx.n_anchors > 0


def _topo_indices(graph: ConstraintGraph, idx: IndexedGraph) -> List[int]:
    """Forward topological order as dense indices (memoised).

    Raises:
        CyclicForwardGraphError: if the forward graph is cyclic.
    """
    index = idx.index
    return graph.cached(
        "topo_indices",
        lambda: [index[name] for name in graph.forward_topological_order()])


def _positions(graph: ConstraintGraph, idx: IndexedGraph) -> List[int]:
    """Worklist priorities: topological position per vertex when the
    forward graph is acyclic (so DAG regions are each popped once),
    falling back to insertion order on a cyclic forward graph (the
    worklist stays correct for any pop order)."""
    try:
        topo = _topo_indices(graph, idx)
    except CyclicForwardGraphError:
        return list(range(idx.n))
    pos = [0] * idx.n
    for p, v in enumerate(topo):
        pos[v] = p
    return pos


# ----------------------------------------------------------------------
# worklist longest-path relaxation
# ----------------------------------------------------------------------


def worklist_longest_from(idx: IndexedGraph,
                          adjacency: Sequence[Sequence[Tuple[int, int]]],
                          start: int,
                          pos: Sequence[int],
                          allowed: Optional[bytearray] = None,
                          cycle_message: str = "positive cycle") -> List[Optional[int]]:
    """Longest path lengths from *start* by label-correcting relaxation.

    Vertices are revisited only when their label improves, popped in
    ascending *pos* priority (topological position when available), so
    acyclic regions relax in a single pass.  A relaxation whose witness
    walk reaches ``|V|`` edges certifies a positive cycle: an improving
    walk can never traverse a non-positive cycle (the label at the
    cycle entry would have had to improve past itself), so a repeated
    vertex implies a positive one.

    Returns a dense distance array with ``None`` for unreachable.

    Raises:
        UnfeasibleConstraintsError: when a positive cycle is reachable
            from *start* (within *allowed*, when given).
    """
    n = idx.n
    dist: List[Optional[int]] = [None] * n
    steps = [0] * n
    dist[start] = 0
    in_queue = bytearray(n)
    in_queue[start] = 1
    heap = [(pos[start], start)]
    while heap:
        _, v = heapq.heappop(heap)
        in_queue[v] = 0
        base = dist[v]
        depth = steps[v] + 1
        for h, w in adjacency[v]:
            if allowed is not None and not allowed[h]:
                continue
            candidate = base + w
            current = dist[h]
            if current is None or candidate > current:
                if depth >= n:
                    raise UnfeasibleConstraintsError(cycle_message)
                dist[h] = candidate
                steps[h] = depth
                if not in_queue[h]:
                    in_queue[h] = 1
                    heapq.heappush(heap, (pos[h], h))
    return dist


def has_positive_cycle_indexed(graph: ConstraintGraph) -> bool:
    """Theorem 1 check: longest-walk relaxation from a virtual
    super-source (every vertex at distance 0).

    When the forward graph is acyclic -- the paper's standing assumption
    and the only case the pipeline reaches -- a positive cycle must
    cross a backward edge, so the check alternates one forward
    topological sweep with one backward-edge relaxation pass: a simple
    improving path crosses each backward edge at most once, so
    improvement past ``|Eb| + 1`` rounds certifies a positive cycle.
    Cyclic forward graphs fall back to heap worklist relaxation.
    """
    idx = get_indexed(graph)
    n = idx.n
    if n == 0:
        return False
    try:
        topo = _topo_indices(graph, idx)
    except CyclicForwardGraphError:
        return _has_positive_cycle_worklist(graph, idx)
    dist = [0] * n
    out_forward_w = idx.out_forward_w
    backward = idx.backward
    rounds = 0
    while True:
        for v in topo:
            base = dist[v]
            for h, w in out_forward_w[v]:
                candidate = base + w
                if candidate > dist[h]:
                    dist[h] = candidate
        improved = False
        for t, h, w in backward:
            candidate = dist[t] + w
            if candidate > dist[h]:
                dist[h] = candidate
                improved = True
        if not improved:
            return False
        rounds += 1
        if rounds > len(backward) + 1:
            return True


def _has_positive_cycle_worklist(graph: ConstraintGraph,
                                 idx: IndexedGraph) -> bool:
    """Heap worklist variant of the Theorem 1 check (any graph shape)."""
    n = idx.n
    pos = _positions(graph, idx)
    dist = [0] * n
    steps = [0] * n
    out_all = idx.out_all
    heap = sorted((pos[v], v) for v in range(n))
    in_queue = bytearray([1]) * n
    while heap:
        _, v = heapq.heappop(heap)
        in_queue[v] = 0
        base = dist[v]
        depth = steps[v] + 1
        for h, w in out_all[v]:
            candidate = base + w
            if candidate > dist[h]:
                if depth >= n:
                    return True
                dist[h] = candidate
                steps[h] = depth
                if not in_queue[h]:
                    in_queue[h] = 1
                    heapq.heappush(heap, (pos[h], h))
    return False


def dag_longest_from(graph: ConstraintGraph, start: str) -> Dict[str, Optional[int]]:
    """Longest forward-only path lengths in one indexed topological sweep."""
    idx = get_indexed(graph)
    topo = _topo_indices(graph, idx)
    dist: List[Optional[int]] = [None] * idx.n
    dist[idx.index[start]] = 0
    out_forward_w = idx.out_forward_w
    for v in topo:
        base = dist[v]
        if base is None:
            continue
        for h, w in out_forward_w[v]:
            candidate = base + w
            current = dist[h]
            if current is None or candidate > current:
                dist[h] = candidate
    names = idx.names
    return {names[v]: dist[v] for v in range(idx.n)}


def longest_paths_indexed(graph: ConstraintGraph, start: str) -> Dict[str, Optional[int]]:
    """Full-graph ``length(start, v)`` table via worklist relaxation."""
    idx = get_indexed(graph)
    dist = worklist_longest_from(
        idx, idx.out_all, idx.index[start], _positions(graph, idx),
        cycle_message=f"positive cycle reachable from {start!r}")
    names = idx.names
    return {names[v]: dist[v] for v in range(idx.n)}


def bounded_longest_indexed(graph: ConstraintGraph, start: str) -> Dict[str, Optional[int]]:
    """Longest bounded-weight-only path table via worklist relaxation."""
    idx = get_indexed(graph)
    dist = worklist_longest_from(
        idx, idx.out_bounded, idx.index[start], _positions(graph, idx),
        cycle_message=f"positive bounded cycle reachable from {start!r}")
    names = idx.names
    return {names[v]: dist[v] for v in range(idx.n)}


def anchored_lengths_for_slot(graph: ConstraintGraph, idx: IndexedGraph,
                              slot: int, masks: Sequence[int]
                              ) -> List[Optional[int]]:
    """Longest paths from the anchor in *slot* over its anchored region
    ``{x : a in A(x)} + {a}`` (Theorem 3 / ``anchored_longest_paths``).

    One forward topological sweep over the region per round, then the
    region's backward edges; a simple improving path crosses each
    backward edge at most once, so improvement past ``|Eb_region| + 1``
    rounds certifies a positive cycle.
    """
    n = idx.n
    anchor_vertex = idx.anchor_vertices[slot]
    allowed = bytearray(n)
    for v in range(n):
        if (masks[v] >> slot) & 1:
            allowed[v] = 1
    allowed[anchor_vertex] = 1
    topo_cone = [v for v in _topo_indices(graph, idx) if allowed[v]]
    back_cone = [(t, h, w) for t, h, w in idx.backward
                 if allowed[t] and allowed[h]]
    out_forward_w = idx.out_forward_w
    dist: List[Optional[int]] = [None] * n
    dist[anchor_vertex] = 0
    rounds = 0
    while True:
        for v in topo_cone:
            base = dist[v]
            if base is None:
                continue
            for h, w in out_forward_w[v]:
                if allowed[h]:
                    candidate = base + w
                    current = dist[h]
                    if current is None or candidate > current:
                        dist[h] = candidate
        improved = False
        for t, h, w in back_cone:
            base = dist[t]
            if base is None:
                continue
            candidate = base + w
            current = dist[h]
            if current is None or candidate > current:
                dist[h] = candidate
                improved = True
        if not improved:
            return dist
        rounds += 1
        if rounds > len(back_cone) + 1:
            raise UnfeasibleConstraintsError(
                "positive cycle in the region anchored by "
                f"{idx.anchor_names[slot]!r}")


# ----------------------------------------------------------------------
# anchor analyses on bitmasks
# ----------------------------------------------------------------------


def anchor_masks(graph: ConstraintGraph) -> List[int]:
    """``A(v)`` for every vertex as anchor-slot bitmasks (memoised).

    One topological sweep; a forward edge ORs the tail's mask into the
    head's, an unbounded edge additionally injects the tail's own bit.
    """
    def build() -> List[int]:
        idx = get_indexed(graph)
        topo = _topo_indices(graph, idx)
        masks = [0] * idx.n
        out_forward_w = idx.out_forward_w
        unbounded_out = idx.unbounded_out
        anchor_slot = idx.anchor_slot
        for v in topo:
            mask = masks[v]
            for h, _ in out_forward_w[v]:
                masks[h] |= mask
            slot = anchor_slot[v]
            if slot >= 0 and unbounded_out[v]:
                with_self = mask | (1 << slot)
                for h in unbounded_out[v]:
                    masks[h] |= with_self
        return masks

    return graph.cached("anchor_masks", build)


def has_containment_violation(graph: ConstraintGraph) -> bool:
    """True when some backward edge fails ``A(tail) subset-of A(head)``
    (the Theorem 2 criterion), tested directly on the anchor bitmasks.

    The well-posedness *verdict* only needs existence, so this skips the
    name-keyed frozenset materialization of ``find_anchor_sets`` --
    callers that must report *which* anchors are missing use
    :func:`repro.core.wellposed.containment_violations` instead.
    """
    idx = get_indexed(graph)
    if not idx.backward:
        return False
    masks = anchor_masks(graph)
    for tail, head, _ in idx.backward:
        if masks[tail] & ~masks[head]:
            return True
    return False


def relevant_masks(graph: ConstraintGraph) -> List[int]:
    """``R(v)`` for every vertex as anchor-slot bitmasks (memoised).

    Per anchor: one traversal seeded by its unbounded out-edges and one
    all-bounded traversal confined to its cone, exactly mirroring the
    two phases of :func:`repro.core.reference.relevant_anchors_reference`.
    """
    def build() -> List[int]:
        idx = get_indexed(graph)
        masks = anchor_masks(graph)
        n = idx.n
        relevant = [0] * n
        out_bounded = idx.out_bounded
        for slot, anchor_vertex in enumerate(idx.anchor_vertices):
            bit = 1 << slot
            # Phase 1: unbounded first hop, then bounded edges anywhere.
            visited = bytearray(n)
            visited[anchor_vertex] = 1
            stack = []
            for h in idx.unbounded_out[anchor_vertex]:
                if not visited[h]:
                    visited[h] = 1
                    stack.append(h)
            while stack:
                current = stack.pop()
                relevant[current] |= bit
                for h, _ in out_bounded[current]:
                    if not visited[h]:
                        visited[h] = 1
                        stack.append(h)
            # Phase 2: all-bounded path, confined to the anchor's cone.
            visited = bytearray(n)
            visited[anchor_vertex] = 1
            stack = []
            for h, _ in out_bounded[anchor_vertex]:
                if not visited[h] and (masks[h] >> slot) & 1:
                    visited[h] = 1
                    stack.append(h)
            while stack:
                current = stack.pop()
                relevant[current] |= bit
                for h, _ in out_bounded[current]:
                    if not visited[h] and (masks[h] >> slot) & 1:
                        visited[h] = 1
                        stack.append(h)
        return relevant

    return graph.cached("relevant_masks", build)


def anchored_length_tables(graph: ConstraintGraph) -> List[List[Optional[int]]]:
    """Per-anchor-slot anchored longest-path arrays (memoised)."""
    def build() -> List[List[Optional[int]]]:
        idx = get_indexed(graph)
        masks = anchor_masks(graph)
        return [anchored_lengths_for_slot(graph, idx, slot, masks)
                for slot in range(idx.n_anchors)]

    return graph.cached("anchored_lengths", build)


def _bit_rows(masks: Sequence[int], n: int, m: int):
    """Per-vertex slot bitmasks as an ``(n, m)`` numpy bool matrix."""
    nbytes = (m + 7) // 8 or 1
    buffer = b"".join(mask.to_bytes(nbytes, "little") for mask in masks)
    packed = _np.frombuffer(buffer, dtype=_np.uint8).reshape(n, nbytes)
    return _np.unpackbits(packed, axis=1, bitorder="little",
                          count=m).astype(bool)


def _level_batches(graph: ConstraintGraph):
    """The forward edges grouped by the topological depth of their tail,
    each level pre-sorted by head for one ``maximum.reduceat`` per level
    (memoised).

    Returns ``(batches, batch_depths, vertex_depth)`` where each batch
    is a ``(tails, weights_column, starts, unique_heads)`` numpy tuple.
    Relaxing the batches in order is exactly one topological relaxation
    sweep: every tail's depth exceeds the depths of all its forward
    predecessors, so its label is final when its batch is processed.
    Parallel edges fold into the same reduce group.  ``batch_depths``
    (ascending) and ``vertex_depth`` let callers restart a sweep at the
    shallowest vertex a backward edge moved.
    """
    def build():
        idx = get_indexed(graph)
        topo = _topo_indices(graph, idx)
        n = idx.n
        out_forward_w = idx.out_forward_w
        depth = [0] * n
        tails_l: List[int] = []
        heads_l: List[int] = []
        weights_l: List[int] = []
        for v in topo:
            next_depth = depth[v] + 1
            for h, _ in out_forward_w[v]:
                if depth[h] < next_depth:
                    depth[h] = next_depth
        for v in range(n):
            for h, w in out_forward_w[v]:
                tails_l.append(v)
                heads_l.append(h)
                weights_l.append(w)
        batches: List[Tuple] = []
        batch_depths: List[int] = []
        if not tails_l:
            return batches, batch_depths, depth
        tails = _np.array(tails_l, dtype=_np.intp)
        heads = _np.array(heads_l, dtype=_np.intp)
        weights = _np.array(weights_l, dtype=_np.float64)
        depths = _np.array(depth, dtype=_np.intp)[tails]
        order = _np.lexsort((heads, depths))
        tails, heads, weights, depths = (tails[order], heads[order],
                                         weights[order][:, None],
                                         depths[order])
        level_starts = _np.flatnonzero(
            _np.diff(depths, prepend=depths[0] - 1)).tolist()
        level_starts.append(len(depths))
        for i in range(len(level_starts) - 1):
            lo, hi = level_starts[i], level_starts[i + 1]
            level_heads = heads[lo:hi]
            starts = _np.flatnonzero(
                _np.diff(level_heads, prepend=level_heads[0] - 1))
            batches.append((tails[lo:hi], weights[lo:hi], starts,
                            level_heads[starts]))
            batch_depths.append(int(depths[lo]))
        return batches, batch_depths, depth

    return graph.cached("fwd_level_batches", build)


def _dense_anchored_tables(graph: ConstraintGraph):
    """All anchored longest-path tables as one ``(|V|, |A|)`` float
    matrix ``D[v, slot]`` with ``-inf`` for "no path" (memoised).

    Every anchored region is swept simultaneously: one level-batched
    forward pass relaxes each forward edge over all slots at once
    (region membership as an additive -inf mask), then the backward
    edges; the same ``|Eb| + 1``-round bound as the scalar sweep
    certifies a positive cycle.  Weights are small ints, exact in float64, so the
    values match :func:`anchored_lengths_for_slot` slot by slot.
    """
    def build():
        idx = get_indexed(graph)
        masks = anchor_masks(graph)
        n, m = idx.n, idx.n_anchors
        neg = -_np.inf
        allowed = _bit_rows(masks, n, m)
        D = _np.full((n, m), neg)
        for slot, anchor_vertex in enumerate(idx.anchor_vertices):
            allowed[anchor_vertex, slot] = True
            D[anchor_vertex, slot] = 0.0
        # Region membership as an additive mask: writing through
        # ``+ penalty[head]`` sends out-of-region candidates to -inf, so
        # the plain max-relaxation stays confined to each slot's cone.
        penalty = _np.where(allowed, 0.0, neg)
        batches, batch_depths, vertex_depth = _level_batches(graph)
        backward = idx.backward
        maximum = _np.maximum
        rounds = 0
        begin = 0  # after a backward round, resume at the shallowest move
        while True:
            for bi in range(begin, len(batches)):
                tails, weights, starts, unique_heads = batches[bi]
                reduced = maximum.reduceat(D[tails] + weights, starts, axis=0)
                reduced += penalty[unique_heads]
                sub = D[unique_heads]
                maximum(sub, reduced, out=sub)
                D[unique_heads] = sub
            improved = None
            restart_depth = None
            for t, h, w in backward:
                candidate = D[t] + w + penalty[h]
                better = candidate > D[h]
                if better.any():
                    improved = better if improved is None else improved | better
                    maximum(D[h], candidate, out=D[h])
                    depth_h = vertex_depth[h]
                    if restart_depth is None or depth_h < restart_depth:
                        restart_depth = depth_h
            if improved is None:
                return D
            rounds += 1
            if rounds > len(backward) + 1:
                slot = int(_np.flatnonzero(improved)[0])
                raise UnfeasibleConstraintsError(
                    "positive cycle in the region anchored by "
                    f"{idx.anchor_names[slot]!r}")
            begin = bisect_left(batch_depths, restart_depth)

    return graph.cached("anchored_dense", build)


def _irredundant_numpy(graph: ConstraintGraph, idx: IndexedGraph) -> List[int]:
    """Definition 11 scan vectorized over vertices: for every dominating
    anchor ``r``, one matrix comparison marks every vertex/anchor pair
    it makes redundant."""
    masks = anchor_masks(graph)
    relevant = relevant_masks(graph)
    D = _dense_anchored_tables(graph)
    n, m = idx.n, idx.n_anchors
    finite = D != -_np.inf
    relevant_rows = _bit_rows(relevant, n, m)
    redundant = _np.zeros((n, m), dtype=bool)
    for r in range(m):
        r_vertex = idx.anchor_vertices[r]
        # x must be an anchor of r with a finite path x -> r to cascade
        # over (Definition 11).
        xs = [x for x in _mask_slots(masks[r_vertex])
              if x != r and finite[r_vertex, x]]
        if not xs:
            continue
        xs = _np.array(xs, dtype=_np.intp)
        x_to_r = D[r_vertex, xs]
        cond = D[:, xs] <= x_to_r + D[:, r:r + 1]
        cond &= finite[:, xs]
        cond &= finite[:, r:r + 1]
        cond &= relevant_rows[:, xs]
        cond &= relevant_rows[:, r:r + 1]
        redundant[:, xs] |= cond
    packed = _np.packbits(relevant_rows & ~redundant, axis=1,
                          bitorder="little")
    return [int.from_bytes(row.tobytes(), "little") for row in packed]


def irredundant_masks(graph: ConstraintGraph) -> List[int]:
    """``IR(v)`` for every vertex as anchor-slot bitmasks (memoised).

    The Definition 11 redundancy scan over relevant candidates, with
    anchor-set membership as bit tests and lengths from the memoised
    per-slot tables.
    """
    def build() -> List[int]:
        idx = get_indexed(graph)
        if _use_numpy(idx, "irredundant"):
            return _irredundant_numpy(graph, idx)
        masks = anchor_masks(graph)
        relevant = relevant_masks(graph)
        lengths = anchored_length_tables(graph)
        anchor_vertices = idx.anchor_vertices
        result = [0] * idx.n
        # (x, r) pairs are a function of the candidate mask alone, so
        # hoist the membership tests and anchor-to-anchor lengths out of
        # the per-vertex scan and share them across equal masks.
        pair_cache: Dict[int, List[Tuple[int, List[Optional[int]], int,
                                         List[Optional[int]]]]] = {}
        for v in range(idx.n):
            cand_mask = relevant[v]
            if not cand_mask:
                continue
            pairs = pair_cache.get(cand_mask)
            if pairs is None:
                slots = _mask_slots(cand_mask)
                pairs = []
                for r in slots:
                    r_vertex = anchor_vertices[r]
                    mask_r = masks[r_vertex]
                    lengths_r = lengths[r]
                    for x in slots:
                        # x must be an anchor of r to be dominated
                        # through it, with a path x -> r to cascade over.
                        if x == r or not (mask_r >> x) & 1:
                            continue
                        x_to_r = lengths[x][r_vertex]
                        if x_to_r is None:
                            continue
                        pairs.append((1 << x, lengths[x], x_to_r, lengths_r))
                pair_cache[cand_mask] = pairs
            redundant = 0
            for x_bit, lengths_x, x_to_r, lengths_r in pairs:
                if redundant & x_bit:
                    continue
                direct = lengths_x[v]
                if direct is None:
                    continue
                to_v = lengths_r[v]
                if to_v is None:
                    continue
                if direct <= x_to_r + to_v:
                    redundant |= x_bit
            result[v] = cand_mask & ~redundant
        return result

    return graph.cached("irredundant_masks", build)


def _mask_slots(mask: int) -> List[int]:
    """The set bit positions of *mask*, ascending."""
    slots = []
    while mask:
        bit = mask & -mask
        slots.append(bit.bit_length() - 1)
        mask ^= bit
    return slots


def masks_to_sets(idx: IndexedGraph, masks: Sequence[int]
                  ) -> Dict[str, FrozenSet[str]]:
    """Convert per-vertex anchor bitmasks to the public name-based
    ``AnchorSets`` shape (shared frozensets for shared masks)."""
    anchor_names = idx.anchor_names
    interned: Dict[int, FrozenSet[str]] = {0: frozenset()}
    result: Dict[str, FrozenSet[str]] = {}
    names = idx.names
    for v, mask in enumerate(masks):
        tags = interned.get(mask)
        if tags is None:
            tags = frozenset(anchor_names[s] for s in _mask_slots(mask))
            interned[mask] = tags
        result[names[v]] = tags
    return result


# ----------------------------------------------------------------------
# the iterative incremental scheduler on flat arrays
# ----------------------------------------------------------------------


def _vector_round1(graph: ConstraintGraph, idx: IndexedGraph,
                   rows: List[List[int]]) -> List[List[int]]:
    """The scheduler's first full relaxation sweep, level-batched.

    *rows* are the initial per-vertex offset rows (-1 untracked): all
    zeros for a cold start, the reshaped previous offsets for a warm
    start (offsets only relax upward from them, Lemma 8).

    Every anchor's own cell is pinned to its implicit self offset 0 for
    the duration of the sweep (its write is blocked by the ``+
    penalty[head]`` additive mask, which confines writes to the slots
    the head tracks), which subsumes the reference sweep's tail-anchor
    rule.  Both compute the same single-pass DAG fixpoint as the
    reference per-head sweep, so the returned int rows (-1 untracked)
    are identical.
    """
    n, m = idx.n, idx.n_anchors
    neg = -_np.inf
    D = _np.array(rows, dtype=_np.float64)
    D[D < 0] = neg  # -1 marks untracked
    penalty = _np.where(D == neg, neg, 0.0)  # 0 where tracked, -inf where not
    self_cells = [anchor_vertex * m + slot
                  for slot, anchor_vertex in enumerate(idx.anchor_vertices)
                  if D[anchor_vertex, slot] == neg]
    if self_cells:
        D.put(self_cells, 0.0)
    maximum = _np.maximum
    batches, _, _ = _level_batches(graph)
    for tails, weights, starts, unique_heads in batches:
        reduced = maximum.reduceat(D[tails] + weights, starts, axis=0)
        reduced += penalty[unique_heads]
        sub = D[unique_heads]
        maximum(sub, reduced, out=sub)
        D[unique_heads] = sub
    if self_cells:
        D.put(self_cells, neg)
    return _np.where(D == neg, -1.0, D).astype(int).tolist()


def schedule_offsets(graph: ConstraintGraph,
                     anchor_sets: Dict[str, FrozenSet[str]],
                     return_raw: bool = False,
                     initial: Optional[Dict[str, Dict[str, int]]] = None):
    """Section IV-E scheduling on the indexed compilation.

    Offsets are per-vertex int arrays over anchor slots (-1 for
    untracked); the first round is one full topological sweep, later
    rounds propagate only downstream of the vertices the readjustment
    moved.  Per-round fixpoints, the violated-edge sets and therefore
    the iteration count are identical to the reference dict scheduler
    (``IterativeIncrementalScheduler`` with ``use_indexed=False``).

    With *initial*, relaxation warm-starts from the given offsets
    instead of zero (entries for untracked vertex/anchor pairs are
    dropped, negatives clamped to 0).  Any under-approximation of the
    fixpoint is a sound starting point (Lemma 8), so incremental
    rescheduling after a constraint addition passes the previous
    schedule's offsets here.

    Returns ``(offsets, iterations)`` with offsets in the public
    dict-of-dict shape; with *return_raw* additionally the internal
    per-vertex offset rows (-1 untracked), which
    :func:`certify_offset_lists` can validate without a dict round-trip.

    Raises:
        IndexedKernelUnsupported: an anchor set names a tag that is not
            an anchor vertex of the graph (callers fall back to the
            reference path, which accepts arbitrary tag names).
        InconsistentConstraintsError: no convergence in ``|Eb| + 1``
            rounds (Corollary 2).
    """
    idx = get_indexed(graph)
    topo = _topo_indices(graph, idx)
    n = idx.n
    n_anchors = idx.n_anchors
    anchor_slot = idx.anchor_slot
    index = idx.index

    # Tracked anchor slots per vertex, ascending slot order.
    tracked: List[List[int]] = [[] for _ in range(n)]
    for name, anchors in anchor_sets.items():
        slots = []
        for anchor in anchors:
            vid = index.get(anchor, -1)
            slot = anchor_slot[vid] if vid >= 0 else -1
            if slot < 0:
                raise IndexedKernelUnsupported(
                    f"anchor set tag {anchor!r} is not an anchor vertex")
            slots.append(slot)
        slots.sort()
        vid = index.get(name, -1)
        if vid < 0:
            raise IndexedKernelUnsupported(
                f"anchor sets name unknown vertex {name!r}")
        tracked[vid] = slots

    # Initial rows: 0 at tracked cells (cold), or the warm offsets.
    offsets: List[List[int]] = []
    for v in range(n):
        row = [-1] * n_anchors
        for slot in tracked[v]:
            row[slot] = 0
        offsets.append(row)
    if initial:
        for name, entries in initial.items():
            vid = index.get(name, -1)
            if vid < 0:
                continue
            row = offsets[vid]
            for anchor, sigma in entries.items():
                avid = index.get(anchor, -1)
                slot = anchor_slot[avid] if avid >= 0 else -1
                if slot >= 0 and row[slot] >= 0 and sigma > row[slot]:
                    row[slot] = sigma

    backward = idx.backward
    in_forward = idx.in_forward
    out_forward_w = idx.out_forward_w
    pos = [0] * n
    for p, v in enumerate(topo):
        pos[v] = p

    tracer = _OBS.tracer
    rec = tracer.enabled

    max_rounds = len(backward) + 1
    changed: Optional[List[int]] = None
    for round_index in range(1, max_rounds + 1):
        if rec:
            before = [row[:] for row in offsets]
        # -- IncrementalOffset ------------------------------------------
        if changed is None and _use_numpy(idx, "round1"):
            if rec:
                tracer.count("kernel.vectorized_rounds")
            offsets = _vector_round1(graph, idx, offsets)
        elif changed is None:
            # Round 1: full relaxation sweep in topological order.
            for v in topo:
                row = tracked[v]
                if not row:
                    continue
                target = offsets[v]
                for t, w in in_forward[v]:
                    source_row = offsets[t]
                    for slot in row:
                        sigma = source_row[slot]
                        if sigma >= 0:
                            candidate = sigma + w
                            if candidate > target[slot]:
                                target[slot] = candidate
                    # Tail-anchor rule: sigma_t(t) = 0 implies
                    # sigma_t(v) >= weight when v tracks t.
                    tail_slot = anchor_slot[t]
                    if tail_slot >= 0:
                        current = target[tail_slot]
                        if 0 <= current < w:
                            target[tail_slot] = w
        else:
            # Later rounds: only the region downstream of readjusted
            # vertices can move (offsets are max-monotone, Lemma 8).
            in_queue = bytearray(n)
            heap = []
            for v in changed:
                if not in_queue[v]:
                    in_queue[v] = 1
                    heap.append((pos[v], v))
            heapq.heapify(heap)
            while heap:
                _, v = heapq.heappop(heap)
                in_queue[v] = 0
                source_row = offsets[v]
                v_slot = anchor_slot[v]
                for h, w in out_forward_w[v]:
                    target = offsets[h]
                    moved = False
                    for slot in tracked[h]:
                        sigma = source_row[slot]
                        if sigma >= 0:
                            candidate = sigma + w
                            if candidate > target[slot]:
                                target[slot] = candidate
                                moved = True
                    if v_slot >= 0:
                        current = target[v_slot]
                        if 0 <= current < w:
                            target[v_slot] = w
                            moved = True
                    if moved and not in_queue[h]:
                        in_queue[h] = 1
                        heapq.heappush(heap, (pos[h], h))

        # -- find violations --------------------------------------------
        violations: List[Tuple[int, int]] = []
        for b, (t, h, w) in enumerate(backward):
            tail_row = offsets[t]
            head_row = offsets[h]
            head_slot = anchor_slot[h]
            for slot in tracked[t]:
                head_value = head_row[slot]
                if head_value < 0:
                    if slot != head_slot:
                        continue
                    head_value = 0  # the head is the anchor itself
                if head_value < tail_row[slot] + w:
                    violations.append((b, slot))
            tail_slot = anchor_slot[t]
            if tail_slot >= 0 and tail_row[tail_slot] < 0:
                # Implicit normalized sigma_t(t) = 0 (Definition 3).
                head_value = head_row[tail_slot]
                if head_value < 0:
                    head_value = 0 if tail_slot == head_slot else None
                if head_value is not None and head_value < w:
                    violations.append((b, tail_slot))
        if rec:
            relaxed = _count_row_raises(before, offsets)
        if not violations:
            if rec:
                tracer.count("scheduler.relaxations", relaxed)
                tracer.event("scheduler.iteration", round=round_index,
                             violations=0, relaxations=relaxed,
                             kernel="indexed")
            result = _offsets_to_dicts(idx, tracked, offsets)
            if return_raw:
                return result, round_index, offsets
            return result, round_index

        # -- ReadjustOffsets --------------------------------------------
        if rec:
            before = [row[:] for row in offsets]
        changed = []
        for b, slot in violations:
            t, h, w = backward[b]
            if anchor_slot[h] == slot:
                continue  # the head's own offset is pinned at 0
            sigma_tail = offsets[t][slot]
            if sigma_tail < 0:
                sigma_tail = 0  # implicit self offset of the tail anchor
            required = sigma_tail + w
            if offsets[h][slot] < required:
                offsets[h][slot] = required
                changed.append(h)
        if rec:
            relaxed += _count_row_raises(before, offsets)
            tracer.count("scheduler.relaxations", relaxed)
            tracer.event("scheduler.iteration", round=round_index,
                         violations=len(violations), relaxations=relaxed,
                         kernel="indexed")
    if rec:
        # Runs reaching the scheduler through the kernel gate get their
        # summary event from the scheduler on success; the inconsistent
        # outcome is only visible here.
        tracer.count("scheduler.runs")
        tracer.count("scheduler.iterations", max_rounds)
        tracer.event("scheduler.run", iterations=max_rounds,
                     bound=max_rounds, backward_edges=len(backward),
                     warm=initial is not None, kernel="indexed",
                     converged=False)
    raise InconsistentConstraintsError(
        f"no schedule after {max_rounds} iterations: timing constraints "
        f"are inconsistent (Corollary 2)")


def _count_row_raises(before: List[List[int]],
                      after: List[List[int]]) -> int:
    """How many offset cells moved between two row snapshots (offsets
    are max-monotone, so every difference is a relaxation)."""
    changed = 0
    for row_before, row_after in zip(before, after):
        if row_before != row_after:
            changed += sum(1 for a, b in zip(row_before, row_after) if a != b)
    return changed


#: Tri-state results of the vectorized schedule certification.
CERTIFIED = "certified"
VIOLATION = "violation"
UNKNOWN = "unknown"


def find_offset_violation(
        graph: ConstraintGraph,
        offsets: Dict[str, Dict[str, int]],
) -> Tuple[str, Optional[OffsetViolation]]:
    """One vectorized pass over every edge inequality of a schedule.

    Returns ``(CERTIFIED, None)`` when every edge ``(t, h, w)``
    satisfies ``sigma_a(h) >= sigma_a(t) + w`` for each anchor tracked
    at both endpoints (tail anchors at their implicit self offset 0).
    Returns ``(VIOLATION, witness)`` with the *exact* per-edge
    :class:`~repro.core.exceptions.OffsetViolation` the reference scan
    would report -- the first violated edge in graph insertion order --
    so callers never re-run the precise scan just to name the edge.
    Returns ``(UNKNOWN, None)`` when the kernel cannot decide: no
    numpy, below the numpy gate, non-anchor offset tags, or negative
    offsets (the reference scan is then the authority).
    """
    if _np is None:
        return UNKNOWN, None
    idx = get_indexed(graph)
    if not _use_numpy(idx, "table_check"):
        return UNKNOWN, None
    index = idx.index
    anchor_slot = idx.anchor_slot
    m = idx.n_anchors
    neg = -_np.inf
    flat: List[int] = []
    values: List[int] = []
    try:
        for name, entries in offsets.items():
            base = index[name] * m
            for anchor, sigma in entries.items():
                slot = anchor_slot[index[anchor]]
                if slot < 0:
                    return UNKNOWN, None
                flat.append(base + slot)
                values.append(sigma)
    except KeyError:
        return UNKNOWN, None
    if values and min(values) < 0:
        return UNKNOWN, None
    table = _np.full((idx.n, m), neg)
    table.put(flat, values)
    found = _find_table_violation(idx, table)
    if found is None:
        return CERTIFIED, None
    return VIOLATION, _violation_witness(idx, table, found)


def schedule_satisfies_constraints(graph: ConstraintGraph,
                                   offsets: Dict[str, Dict[str, int]]) -> bool:
    """Compatibility wrapper: True iff the vectorized pass certifies the
    schedule (see :func:`find_offset_violation` for the witness form)."""
    return find_offset_violation(graph, offsets)[0] == CERTIFIED


def certify_offset_lists(graph: ConstraintGraph,
                         rows: List[List[int]]) -> bool:
    """The vectorized edge check over the scheduler's raw offset rows
    (-1 untracked), skipping the dict round-trip of
    :func:`find_offset_violation`."""
    if _np is None:
        return False
    idx = get_indexed(graph)
    if not _use_numpy(idx, "table_check"):
        return False
    table = _np.array(rows, dtype=_np.float64)
    if table.shape != (idx.n, idx.n_anchors):
        return False
    table[table < 0] = -_np.inf  # -1 marks untracked; offsets are >= 0
    return _find_table_violation(idx, table) is None


def _find_table_violation(idx: IndexedGraph,
                          table) -> Optional[Tuple[int, int]]:
    """The first violated ``(edge_index, anchor_slot)`` of the
    ``(|V|, |A|)`` offset *table* (``-inf`` untracked), tail anchors
    read at their implicit self offset 0; None when every edge
    inequality holds."""
    neg = -_np.inf
    tracked = table != neg
    with_self = table.copy()
    for slot, anchor_vertex in enumerate(idx.anchor_vertices):
        if with_self[anchor_vertex, slot] == neg:
            with_self[anchor_vertex, slot] = 0.0
    tails, heads, weights = idx.edge_arrays
    violated = table[heads] < with_self[tails] + weights[:, None]
    violated &= with_self[tails] != neg
    violated &= tracked[heads]
    if not bool(violated.any()):
        return None
    edge_index, slot = _np.argwhere(violated)[0]
    return int(edge_index), int(slot)


def _violation_witness(idx: IndexedGraph, table,
                       found: Tuple[int, int]) -> OffsetViolation:
    """Map a ``(edge_index, anchor_slot)`` finding back to the shared
    :class:`OffsetViolation` witness the reference scan produces."""
    edge_index, slot = found
    edge = idx.edges[edge_index]
    anchor = idx.anchor_names[slot]
    t = idx.index[edge.tail]
    h = idx.index[edge.head]
    tail_offset = table[t, slot]
    if tail_offset == -_np.inf:
        tail_offset = 0  # the tail is the anchor itself (Definition 3)
    return OffsetViolation(
        edge=edge,
        anchor=anchor,
        head_offset=int(table[h, slot]),
        tail_offset=int(tail_offset),
        weight=edge.static_weight,
    )


def _offsets_to_dicts(idx: IndexedGraph, tracked: List[List[int]],
                      offsets: List[List[int]]) -> Dict[str, Dict[str, int]]:
    names = idx.names
    anchor_names = idx.anchor_names
    return {
        names[v]: {anchor_names[slot]: offsets[v][slot] for slot in tracked[v]}
        for v in range(idx.n)
    }
