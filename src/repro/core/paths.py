"""Longest-path machinery for constraint graphs.

All computations follow the paper's convention that unbounded edge
weights evaluate to their minimum value 0 (Section III):
``length(a, b)`` is the length of the longest weighted path from ``a``
to ``b`` in the *full* graph ``G(V, E)`` with unbounded weights at 0.

The full graph may contain cycles (through backward edges), but a
feasible graph contains no *positive* cycle (Theorem 1), so longest
paths are well defined and computable by Bellman-Ford-style relaxation.
The forward graph ``G_f`` is acyclic, so longest paths restricted to it
are computed in a single topological sweep.

The relaxations run on the indexed compilation of the graph
(:mod:`repro.core.indexed`) as deque/heap worklists -- only vertices
whose label changed are revisited, instead of the seed's dense
``|V| * |E|`` rounds.  The original dense implementations are retained
in :mod:`repro.core.reference` for differential testing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.exceptions import UnfeasibleConstraintsError
from repro.core.graph import ConstraintGraph

#: Marker for "no path" (distances use None rather than -inf floats so
#: every reachable length stays an exact int).
NO_PATH = None


def has_positive_cycle(graph: ConstraintGraph) -> bool:
    """Theorem 1 check: does ``G_0`` contain a positive-length cycle?

    ``G_0`` is the graph with unbounded delays at 0.  Implemented as
    worklist relaxation from a virtual super-source connected to every
    vertex, so cycles in any component are detected.
    """
    from repro.core.indexed import has_positive_cycle_indexed

    return has_positive_cycle_indexed(graph)


def find_positive_cycle(graph: ConstraintGraph) -> Optional[List[str]]:
    """A witness positive cycle in ``G_0``, or None if the graph is feasible.

    Returns the cycle as a vertex list ``[v1, ..., vk]`` with an implied
    edge ``vk -> v1``.
    """
    distance: Dict[str, int] = {name: 0 for name in graph.vertex_names()}
    parent: Dict[str, Optional[str]] = {name: None for name in graph.vertex_names()}
    edges = graph.edges()
    marked: Optional[str] = None
    for _ in range(len(distance)):
        marked = None
        for edge in edges:
            candidate = distance[edge.tail] + edge.static_weight
            if candidate > distance[edge.head]:
                distance[edge.head] = candidate
                parent[edge.head] = edge.tail
                marked = edge.head
        if marked is None:
            return None
    # `marked` is on, or downstream of, a positive cycle.  Walk back |V|
    # steps to land on the cycle, then trace it out.
    current = marked
    for _ in range(len(distance)):
        current = parent[current]
    cycle = [current]
    walker = parent[current]
    while walker != current:
        cycle.append(walker)
        walker = parent[walker]
    cycle.reverse()
    return cycle


def longest_paths_from(graph: ConstraintGraph, start: str,
                       forward_only: bool = False) -> Dict[str, Optional[int]]:
    """Longest static-weight path length from *start* to every vertex.

    Unreachable vertices map to :data:`NO_PATH`.  With
    ``forward_only=True`` only the acyclic forward graph is considered
    and a single topological sweep is used; otherwise worklist
    relaxation over the full indexed graph is used.

    Raises:
        UnfeasibleConstraintsError: if a positive cycle is reachable from
            *start* (full-graph mode only).
    """
    from repro.core.indexed import dag_longest_from, longest_paths_indexed

    if forward_only:
        return dag_longest_from(graph, start)
    return longest_paths_indexed(graph, start)


def _dag_longest_from(graph: ConstraintGraph, start: str) -> Dict[str, Optional[int]]:
    """Longest forward-path lengths from *start* (indexed topological sweep)."""
    from repro.core.indexed import dag_longest_from

    return dag_longest_from(graph, start)


def length(graph: ConstraintGraph, tail: str, head: str) -> Optional[int]:
    """The paper's ``length(tail, head)``: longest weighted path in the
    full graph with unbounded weights at 0, or :data:`NO_PATH`."""
    return longest_paths_from(graph, tail)[head]


def lengths_from_anchors(graph: ConstraintGraph,
                         anchors: Optional[Iterable[str]] = None
                         ) -> Dict[str, Dict[str, Optional[int]]]:
    """``length(a, v)`` tables for every anchor ``a`` (used by the
    irredundant-anchor computation, Section IV-D)."""
    if anchors is None:
        anchors = graph.anchors
    return {anchor: longest_paths_from(graph, anchor) for anchor in anchors}


def anchored_longest_paths(graph: ConstraintGraph, anchor: str,
                           anchor_sets: Dict[str, "frozenset"]
                           ) -> Dict[str, Optional[int]]:
    """Longest paths from *anchor* over vertices that track it.

    Theorem 3 equates the minimum offsets ``sigma_a^min(v)`` with longest
    path lengths from ``a``; its proof walks paths whose every vertex
    has ``a`` in its anchor set.  A backward edge may leave the region
    where ``a`` is tracked (the constraint it encodes then says nothing
    about ``sigma_a``), so the longest path realising the minimum offset
    is taken over the subgraph induced by ``{x : a in A(x)}`` together
    with ``a`` itself.  On graphs where no backward edge escapes the
    anchored region this equals ``length(a, v)`` on the full graph.
    """
    from repro.core.indexed import get_indexed, worklist_longest_from, _positions

    idx = get_indexed(graph)
    allowed = bytearray(idx.n)
    index = idx.index
    for name, tags in anchor_sets.items():
        if anchor in tags:
            allowed[index[name]] = 1
    allowed[index[anchor]] = 1
    distance = worklist_longest_from(
        idx, idx.out_all, index[anchor], _positions(graph, idx), allowed=allowed,
        cycle_message=f"positive cycle in the region anchored by {anchor!r}")
    names = idx.names
    return {names[v]: distance[v] for v in range(idx.n)}


def maximal_defining_path_length(graph: ConstraintGraph, anchor: str,
                                 vertex: str) -> Optional[int]:
    """Length of the maximal defining path ``rho*(anchor, vertex)``.

    A defining path (Definition 8) runs from *anchor* to *vertex* with
    exactly one unbounded-weight edge -- the first edge, leaving the
    anchor.  Its length excludes that unbounded weight.  The maximal
    defining path (Definition 10) is the longest such path; this
    function returns its length, or :data:`NO_PATH` when no defining
    path exists (the anchor is not *relevant* to the vertex,
    Definition 9).

    The tail of every unbounded edge is an anchor, so after the first
    hop the remaining path must use bounded-weight edges only.
    """
    best: Optional[int] = NO_PATH
    for first in graph.out_edges(anchor):
        if not first.is_unbounded:
            continue
        suffix = _bounded_longest_from(graph, first.head)[vertex]
        if suffix is NO_PATH:
            continue
        if best is NO_PATH or suffix > best:
            best = suffix
    return best


def _bounded_longest_from(graph: ConstraintGraph, start: str) -> Dict[str, Optional[int]]:
    """Longest path using bounded-weight edges only (full graph).

    Bounded-only subgraphs can still contain (non-positive) cycles via
    backward edges, so worklist relaxation is used.
    """
    from repro.core.indexed import bounded_longest_indexed

    return bounded_longest_indexed(graph, start)


def critical_path(graph: ConstraintGraph) -> int:
    """Length of the longest forward path source -> sink with unbounded
    weights at 0: the best-case latency of the graph."""
    result = longest_paths_from(graph, graph.source, forward_only=True)[graph.sink]
    if result is NO_PATH:
        raise UnfeasibleConstraintsError("sink unreachable from source")
    return result
