"""The seed's pure-dict implementations, retained as a reference kernel.

The production code paths (``repro.core.paths``, ``repro.core.anchors``,
``repro.core.scheduler``) now run on the indexed compilation of
:mod:`repro.core.indexed` -- dense integer arrays, bitset anchor sets
and worklist relaxation.  This module keeps the original dict-of-dict
algorithms exactly as shipped in the seed so that

* differential/property tests can assert the two kernels agree on
  offsets, iteration counts, anchor sets and exception types
  (``tests/core/test_indexed_differential.py``), and
* the perf trajectory harness (``benchmarks/run_benchsuite.py``) can
  measure the speedup of the indexed kernel against the original
  implementation *in the same run*.

Nothing here consults the versioned analysis cache: every function
recomputes from the raw graph, exactly as the seed did.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.anchors import AnchorMode, AnchorSets
from repro.core.exceptions import UnfeasibleConstraintsError
from repro.core.graph import ConstraintGraph
from repro.core.paths import NO_PATH

# ----------------------------------------------------------------------
# dense Bellman-Ford path machinery (original repro.core.paths)
# ----------------------------------------------------------------------


def has_positive_cycle_reference(graph: ConstraintGraph) -> bool:
    """Theorem 1 check via dense Bellman-Ford (seed implementation)."""
    distance: Dict[str, int] = {name: 0 for name in graph.vertex_names()}
    edges = graph.edges()
    for _ in range(len(distance)):
        changed = False
        for edge in edges:
            candidate = distance[edge.tail] + edge.static_weight
            if candidate > distance[edge.head]:
                distance[edge.head] = candidate
                changed = True
        if not changed:
            return False
    for edge in edges:
        if distance[edge.tail] + edge.static_weight > distance[edge.head]:
            return True
    return False


def longest_paths_from_reference(graph: ConstraintGraph, start: str,
                                 forward_only: bool = False
                                 ) -> Dict[str, Optional[int]]:
    """Longest path lengths from *start* via dense relaxation (seed)."""
    if forward_only:
        return _dag_longest_from_reference(graph, start)
    distance: Dict[str, Optional[int]] = {name: NO_PATH for name in graph.vertex_names()}
    distance[start] = 0
    edges = graph.edges()
    for _ in range(len(distance) - 1):
        changed = False
        for edge in edges:
            base = distance[edge.tail]
            if base is NO_PATH:
                continue
            candidate = base + edge.static_weight
            head_distance = distance[edge.head]
            if head_distance is NO_PATH or candidate > head_distance:
                distance[edge.head] = candidate
                changed = True
        if not changed:
            break
    else:
        for edge in edges:
            base = distance[edge.tail]
            if base is not NO_PATH and base + edge.static_weight > distance[edge.head]:
                raise UnfeasibleConstraintsError(
                    f"positive cycle reachable from {start!r}")
    return distance


def _dag_longest_from_reference(graph: ConstraintGraph,
                                start: str) -> Dict[str, Optional[int]]:
    order = graph.forward_topological_order()
    distance: Dict[str, Optional[int]] = {name: NO_PATH for name in order}
    distance[start] = 0
    for name in order:
        base = distance[name]
        if base is NO_PATH:
            continue
        for edge in graph.out_edges(name, forward_only=True):
            candidate = base + edge.static_weight
            head_distance = distance[edge.head]
            if head_distance is NO_PATH or candidate > head_distance:
                distance[edge.head] = candidate
    return distance


def anchored_longest_paths_reference(graph: ConstraintGraph, anchor: str,
                                     anchor_sets: Mapping[str, "frozenset"]
                                     ) -> Dict[str, Optional[int]]:
    """Longest paths from *anchor* over its anchored region (seed)."""
    allowed = {name for name, tags in anchor_sets.items() if anchor in tags}
    allowed.add(anchor)
    distance: Dict[str, Optional[int]] = {name: NO_PATH for name in graph.vertex_names()}
    distance[anchor] = 0
    edges = [e for e in graph.edges()
             if e.tail in allowed and e.head in allowed]
    for _ in range(len(allowed)):
        changed = False
        for edge in edges:
            base = distance[edge.tail]
            if base is NO_PATH:
                continue
            candidate = base + edge.static_weight
            head_distance = distance[edge.head]
            if head_distance is NO_PATH or candidate > head_distance:
                distance[edge.head] = candidate
                changed = True
        if not changed:
            break
    else:
        for edge in edges:
            base = distance[edge.tail]
            if base is not NO_PATH and base + edge.static_weight > distance[edge.head]:
                raise UnfeasibleConstraintsError(
                    f"positive cycle in the region anchored by {anchor!r}")
    return distance


def bounded_longest_from_reference(graph: ConstraintGraph,
                                   start: str) -> Dict[str, Optional[int]]:
    """Longest bounded-weight-only paths from *start* (seed)."""
    distance: Dict[str, Optional[int]] = {name: NO_PATH for name in graph.vertex_names()}
    distance[start] = 0
    edges = [e for e in graph.edges() if not e.is_unbounded]
    for _ in range(len(distance) - 1):
        changed = False
        for edge in edges:
            base = distance[edge.tail]
            if base is NO_PATH:
                continue
            candidate = base + edge.static_weight
            head_distance = distance[edge.head]
            if head_distance is NO_PATH or candidate > head_distance:
                distance[edge.head] = candidate
                changed = True
        if not changed:
            break
    else:
        for edge in edges:
            base = distance[edge.tail]
            if base is not NO_PATH and base + edge.static_weight > distance[edge.head]:
                raise UnfeasibleConstraintsError(
                    f"positive bounded cycle reachable from {start!r}")
    return distance


# ----------------------------------------------------------------------
# dict/set anchor analyses (original repro.core.anchors)
# ----------------------------------------------------------------------


def find_anchor_sets_reference(graph: ConstraintGraph) -> AnchorSets:
    """``A(v)`` for every vertex via per-vertex Python sets (seed)."""
    order = graph.forward_topological_order()
    anchor_sets: Dict[str, set] = {name: set() for name in graph.vertex_names()}
    for name in order:
        tags = anchor_sets[name]
        for edge in graph.out_edges(name, forward_only=True):
            target = anchor_sets[edge.head]
            target.update(tags)
            if edge.is_unbounded:
                target.add(name)
    return {name: frozenset(tags) for name, tags in anchor_sets.items()}


def relevant_anchors_reference(graph: ConstraintGraph) -> AnchorSets:
    """``R(v)`` for every vertex via per-anchor DFS over dicts (seed)."""
    anchor_sets = find_anchor_sets_reference(graph)
    relevant: Dict[str, set] = {name: set() for name in graph.vertex_names()}
    for anchor in graph.anchors:
        visited = {anchor}
        frontier = []
        for edge in graph.out_edges(anchor):
            if edge.is_unbounded and edge.head not in visited:
                visited.add(edge.head)
                frontier.append(edge.head)
        while frontier:
            current = frontier.pop()
            relevant[current].add(anchor)
            for edge in graph.out_edges(current):
                if edge.is_unbounded or edge.head in visited:
                    continue
                visited.add(edge.head)
                frontier.append(edge.head)
        visited = {anchor}
        frontier = []
        for edge in graph.out_edges(anchor):
            if (not edge.is_unbounded and edge.head not in visited
                    and anchor in anchor_sets[edge.head]):
                visited.add(edge.head)
                frontier.append(edge.head)
        while frontier:
            current = frontier.pop()
            relevant[current].add(anchor)
            for edge in graph.out_edges(current):
                if (edge.is_unbounded or edge.head in visited
                        or anchor not in anchor_sets[edge.head]):
                    continue
                visited.add(edge.head)
                frontier.append(edge.head)
    return {name: frozenset(tags) for name, tags in relevant.items()}


def irredundant_anchors_reference(
    graph: ConstraintGraph,
    anchor_sets: Optional[AnchorSets] = None,
    relevant: Optional[AnchorSets] = None,
    lengths: Optional[Mapping[str, Mapping[str, Optional[int]]]] = None,
) -> AnchorSets:
    """``IR(v)`` via the dict-of-dict redundancy scan (seed)."""
    if anchor_sets is None:
        anchor_sets = find_anchor_sets_reference(graph)
    if relevant is None:
        relevant = relevant_anchors_reference(graph)
    if lengths is None:
        lengths = {anchor: anchored_longest_paths_reference(graph, anchor, anchor_sets)
                   for anchor in graph.anchors}

    irredundant: Dict[str, frozenset] = {}
    for vertex in graph.vertex_names():
        candidates = relevant[vertex]
        redundant = set()
        for r in candidates:
            for x in candidates:
                if x == r or x not in anchor_sets[r]:
                    continue
                through = _sum_lengths(lengths[x].get(r), lengths[r].get(vertex))
                direct = lengths[x].get(vertex)
                if direct is not NO_PATH and through is not NO_PATH and direct <= through:
                    redundant.add(x)
        irredundant[vertex] = frozenset(candidates - redundant)
    return irredundant


def _sum_lengths(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is NO_PATH or b is NO_PATH:
        return NO_PATH
    return a + b


def anchor_sets_for_mode_reference(graph: ConstraintGraph,
                                   mode: AnchorMode) -> AnchorSets:
    """Seed counterpart of :func:`repro.core.anchors.anchor_sets_for_mode`."""
    if mode is AnchorMode.FULL:
        return find_anchor_sets_reference(graph)
    if mode is AnchorMode.RELEVANT:
        return relevant_anchors_reference(graph)
    if mode is AnchorMode.IRREDUNDANT:
        return irredundant_anchors_reference(graph)
    raise ValueError(f"unknown anchor mode {mode!r}")


# ----------------------------------------------------------------------
# full reference pipeline (original schedule_graph)
# ----------------------------------------------------------------------


def check_well_posed_reference(graph: ConstraintGraph):
    """Seed ``checkWellposed``: dense cycle check + dict containment."""
    from repro.core.wellposed import WellPosedness

    graph.forward_topological_order()
    if has_positive_cycle_reference(graph):
        return WellPosedness.UNFEASIBLE
    anchor_sets = find_anchor_sets_reference(graph)
    for edge in graph.backward_edges():
        if set(anchor_sets[edge.tail]) - set(anchor_sets[edge.head]):
            return WellPosedness.ILL_POSED
    return WellPosedness.WELL_POSED


def schedule_graph_reference(graph: ConstraintGraph,
                             anchor_mode: AnchorMode = AnchorMode.IRREDUNDANT,
                             auto_well_pose: bool = True,
                             validate: bool = True):
    """The seed's Fig. 9 pipeline on the retained dict code paths.

    Mirrors :func:`repro.core.scheduler.schedule_graph` but routes every
    stage through this module and runs the scheduler with
    ``use_indexed=False``, so the whole pipeline exercises the original
    implementation end to end.
    """
    from repro.core.exceptions import IllPosedError
    from repro.core.scheduler import IterativeIncrementalScheduler
    from repro.core.wellposed import WellPosedness, make_well_posed

    status = check_well_posed_reference(graph)
    if status is WellPosedness.UNFEASIBLE:
        raise UnfeasibleConstraintsError("constraint graph has a positive cycle")
    if status is WellPosedness.ILL_POSED:
        if not auto_well_pose:
            raise IllPosedError(
                "constraint graph is ill-posed; rerun with auto_well_pose=True "
                "to attempt minimal serialization")
        graph = make_well_posed(graph)

    anchor_sets = anchor_sets_for_mode_reference(graph, anchor_mode)
    scheduler = IterativeIncrementalScheduler(
        graph, anchor_mode=anchor_mode, anchor_sets=anchor_sets,
        use_indexed=False)
    schedule = scheduler.run()
    if validate:
        schedule.validate()
    return schedule
