"""Relative ALAP scheduling, mobility, and criticality analysis.

The paper computes the *minimum* (ASAP) relative schedule.  For design
exploration one also wants the latest start times that still meet the
achieved latency -- the relative generalization of classical ALAP --
and the per-offset *mobility* between the two, which identifies the
operations and constraints that pin the schedule.

Offsets are per-anchor, and every edge inequality is per-anchor
separable, so the ALAP offsets within each anchor's frame are::

    sigma_a^alap(v) = deadline_a - length(v -> sink | anchored region)

where the longest path runs over the vertices tracking ``a`` (the same
region Theorem 3's minimum offsets live in) and ``deadline_a`` defaults
to the minimum schedule's sink offset for ``a`` (zero-latency-overhead
exploration).  Mobility is ``sigma^alap - sigma^min >= 0``; zero
mobility marks the relative critical path of that anchor frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.core.exceptions import UnfeasibleConstraintsError
from repro.core.graph import ConstraintGraph
from repro.core.paths import NO_PATH
from repro.core.schedule import RelativeSchedule


def _anchored_lengths_to_sink(graph: ConstraintGraph, anchor: str,
                              tracked: Mapping[str, Mapping[str, int]]
                              ) -> Dict[str, Optional[int]]:
    """Longest path from each tracked vertex to the sink, over edges
    whose endpoints both track *anchor* (reverse Bellman-Ford)."""
    allowed = {vertex for vertex, offsets in tracked.items() if anchor in offsets}
    allowed.add(anchor)
    distance: Dict[str, Optional[int]] = {name: NO_PATH for name in graph.vertex_names()}
    if graph.sink in allowed:
        distance[graph.sink] = 0
    edges = [e for e in graph.edges()
             if e.tail in allowed and e.head in allowed]
    for _ in range(len(allowed)):
        changed = False
        for edge in edges:
            downstream = distance[edge.head]
            if downstream is NO_PATH:
                continue
            candidate = downstream + edge.static_weight
            current = distance[edge.tail]
            if current is NO_PATH or candidate > current:
                distance[edge.tail] = candidate
                changed = True
        if not changed:
            break
    else:
        raise UnfeasibleConstraintsError(
            f"positive cycle in the region anchored by {anchor!r}")
    return distance


def alap_offsets(schedule: RelativeSchedule,
                 deadlines: Optional[Mapping[str, int]] = None
                 ) -> Dict[str, Dict[str, int]]:
    """As-late-as-possible offsets meeting per-anchor *deadlines*.

    Args:
        schedule: a minimum relative schedule (defines the anchor sets
            and, by default, the deadlines).
        deadlines: sink offset per anchor; defaults to the minimum
            schedule's own sink offsets (no latency regression).
            Anchors without a sink offset keep their tracked vertices at
            the minimum (no later bound exists through the sink).

    Returns:
        ``alap[v][a]`` for exactly the offsets the schedule tracks.

    Raises:
        UnfeasibleConstraintsError: when a deadline is below the
            minimum achievable sink offset.
    """
    graph = schedule.graph
    sink_offsets = schedule.offsets.get(graph.sink, {})
    result: Dict[str, Dict[str, int]] = {v: {} for v in schedule.offsets}
    for anchor in graph.anchors:
        tracked_vertices = [v for v, offsets in schedule.offsets.items()
                            if anchor in offsets]
        if not tracked_vertices:
            continue
        deadline = None
        if deadlines is not None and anchor in deadlines:
            deadline = deadlines[anchor]
        elif anchor in sink_offsets:
            deadline = sink_offsets[anchor]
        if deadline is None:
            # No path to the sink constrains this frame: ALAP = ASAP.
            for vertex in tracked_vertices:
                result[vertex][anchor] = schedule.offsets[vertex][anchor]
            continue
        lengths = _anchored_lengths_to_sink(graph, anchor, schedule.offsets)
        for vertex in tracked_vertices:
            to_sink = lengths[vertex]
            minimum = schedule.offsets[vertex][anchor]
            if to_sink is NO_PATH:
                result[vertex][anchor] = minimum
                continue
            latest = deadline - to_sink
            if latest < minimum:
                raise UnfeasibleConstraintsError(
                    f"deadline {deadline} for anchor {anchor!r} is below "
                    f"the minimum sink offset (vertex {vertex!r} needs "
                    f"{minimum}, allowed {latest})")
            result[vertex][anchor] = latest
    return result


@dataclass(frozen=True)
class MobilityEntry:
    """Mobility of one (vertex, anchor) offset."""

    vertex: str
    anchor: str
    asap: int
    alap: int

    @property
    def mobility(self) -> int:
        return self.alap - self.asap

    @property
    def critical(self) -> bool:
        return self.mobility == 0


def relative_mobility(schedule: RelativeSchedule,
                      deadlines: Optional[Mapping[str, int]] = None
                      ) -> List[MobilityEntry]:
    """Per-offset mobility between the minimum and ALAP schedules."""
    alap = alap_offsets(schedule, deadlines)
    entries: List[MobilityEntry] = []
    for vertex in schedule.graph.forward_topological_order():
        for anchor, asap in sorted(schedule.offsets.get(vertex, {}).items()):
            entries.append(MobilityEntry(vertex, anchor, asap,
                                         alap[vertex][anchor]))
    return entries


def critical_operations(schedule: RelativeSchedule,
                        deadlines: Optional[Mapping[str, int]] = None
                        ) -> Dict[str, List[str]]:
    """Zero-mobility vertices per anchor frame -- the relative critical
    paths that pin the latency."""
    critical: Dict[str, List[str]] = {}
    for entry in relative_mobility(schedule, deadlines):
        if entry.critical:
            critical.setdefault(entry.anchor, []).append(entry.vertex)
    return critical


def format_mobility(schedule: RelativeSchedule,
                    deadlines: Optional[Mapping[str, int]] = None) -> str:
    """A human-readable mobility report."""
    lines = [f"{'vertex':>12}  {'anchor':>10}  {'asap':>5}  {'alap':>5}  "
             f"{'mobility':>8}"]
    for entry in relative_mobility(schedule, deadlines):
        marker = "  <- critical" if entry.critical else ""
        lines.append(f"{entry.vertex:>12}  {entry.anchor:>10}  "
                     f"{entry.asap:>5}  {entry.alap:>5}  "
                     f"{entry.mobility:>8}{marker}")
    return "\n".join(lines)
