"""Feasibility and well-posedness analysis; the makeWellposed transform.

* **Feasibility** (Definition 6, Theorem 1): the constraints are
  satisfiable with every unbounded delay at 0 iff the graph ``G_0`` has
  no positive cycle.
* **Well-posedness** (Definition 7, Theorem 2): the constraints are
  satisfiable for *every* value of the unbounded delays iff the graph is
  feasible and ``A(tail) subset-of A(head)`` for every edge.
* **makeWellposed** (Section IV-C): an ill-posed graph can sometimes be
  rescued by *serialization* -- adding forward synchronization edges
  from anchors so that the offending maximum constraints no longer race
  against unknown delays.  The transform below adds only edges of the
  form ``(anchor, vertex)`` with weight ``delta(anchor)``, which gives
  the *minimally serialized* well-posed graph when one exists
  (Theorem 7); when none exists (an unbounded-length cycle would be
  closed, Lemma 3) it raises :class:`IllPosedError`.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set, Tuple

from repro.core.anchors import AnchorSets, find_anchor_sets
from repro.core.exceptions import IllPosedError
from repro.core.graph import ConstraintGraph, Edge, EdgeKind
from repro.core.paths import has_positive_cycle
from repro.observability.tracer import STATE as _OBS

#: Below this vertex count :func:`check_well_posed` re-derives the
#: verdict with fused scalar sweeps over the dict adjacency instead of
#: compiling the graph to arrays first: on the paper's 5-30 vertex
#: designs the indexed compilation plus cache plumbing costs more than
#: both theorem checks combined (measured crossover; the companion
#: per-stage numpy gates live in ``repro.core.indexed._STAGE_MIN_N``).
_SCALAR_GATE_N = 64


class WellPosedness(enum.Enum):
    """Classification returned by :func:`check_well_posed`."""

    WELL_POSED = "well-posed"
    ILL_POSED = "ill-posed"
    UNFEASIBLE = "unfeasible"


def is_feasible(graph: ConstraintGraph) -> bool:
    """Theorem 1: feasible iff ``G_0`` has no positive cycle."""
    graph.forward_topological_order()  # precondition: G_f acyclic
    return not has_positive_cycle(graph)


def containment_violations(graph: ConstraintGraph,
                           anchor_sets: Optional[AnchorSets] = None
                           ) -> List[Tuple[Edge, Set[str]]]:
    """Edges failing the Theorem 2 criterion ``A(tail) subset-of A(head)``.

    Returns each offending edge with the anchors present at its tail but
    missing at its head.  Only backward edges can offend: forward edges
    satisfy containment by construction of anchor sets.
    """
    if anchor_sets is None:
        anchor_sets = find_anchor_sets(graph)
    violations: List[Tuple[Edge, Set[str]]] = []
    for edge in graph.backward_edges():
        missing = set(anchor_sets[edge.tail]) - set(anchor_sets[edge.head])
        if missing:
            violations.append((edge, missing))
    return violations


def check_well_posed(graph: ConstraintGraph,
                     anchor_sets: Optional[AnchorSets] = None) -> WellPosedness:
    """The paper's ``checkWellposed`` (Section IV-B).

    First checks feasibility (positive cycles in ``G_0``), then anchor-
    set containment across every backward edge.  Cost is dominated by
    the cycle check, ``O(|V| * |E|)``; containment costs
    ``O(|Eb| * |A|)``.

    Raises:
        CyclicForwardGraphError: if the forward graph is cyclic (the
            formulation's precondition, checked up front).
    """
    if anchor_sets is not None:
        graph.forward_topological_order()
        if has_positive_cycle(graph):
            status = WellPosedness.UNFEASIBLE
        elif containment_violations(graph, anchor_sets):
            status = WellPosedness.ILL_POSED
        else:
            status = WellPosedness.WELL_POSED
    elif len(graph) < _SCALAR_GATE_N:
        status = _scalar_verdict(graph)
    else:
        from repro.core.indexed import has_containment_violation

        graph.forward_topological_order()
        if has_positive_cycle(graph):
            status = WellPosedness.UNFEASIBLE
        elif has_containment_violation(graph):
            status = WellPosedness.ILL_POSED
        else:
            status = WellPosedness.WELL_POSED
    tracer = _OBS.tracer
    if tracer.enabled:
        tracer.count("wellposed.checks")
        tracer.event("wellposed.verdict", status=status.value)
    return status


def _scalar_verdict(graph: ConstraintGraph) -> WellPosedness:
    """Both theorem checks fused over the dict adjacency (small graphs).

    Mirrors the indexed kernel sweep for sweep -- one forward
    topological relaxation alternated with one backward-edge pass,
    improvement past ``|Eb| + 1`` rounds certifying a positive cycle
    (Theorem 1), then anchor bitmasks propagated along forward edges and
    tested for containment across backward edges (Theorem 2) -- but
    skips the array compilation, whose fixed cost exceeds the checks
    themselves below :data:`_SCALAR_GATE_N`.

    Raises:
        CyclicForwardGraphError: if the forward graph is cyclic.
    """
    topo = graph.forward_topological_order()
    backward = [e for e in graph.edges() if e.kind is EdgeKind.MAX_TIME]
    out = graph._out
    max_time = EdgeKind.MAX_TIME
    dist = dict.fromkeys(topo, 0)
    rounds = 0
    while True:
        for v in topo:
            base = dist[v]
            for edge in out[v]:
                if edge.kind is max_time:
                    continue
                candidate = base + edge.static_weight
                if candidate > dist[edge.head]:
                    dist[edge.head] = candidate
        improved = False
        for edge in backward:
            candidate = dist[edge.tail] + edge.static_weight
            if candidate > dist[edge.head]:
                dist[edge.head] = candidate
                improved = True
        if not improved:
            break
        rounds += 1
        if rounds > len(backward) + 1:
            return WellPosedness.UNFEASIBLE
    if not backward:
        return WellPosedness.WELL_POSED
    # Theorem 2 on per-vertex anchor bitmasks: a forward edge ORs the
    # tail's mask into the head's; an unbounded edge additionally
    # injects the tail's own anchor bit (cf. indexed.anchor_masks).
    masks = dict.fromkeys(topo, 0)
    vertices = graph._vertices
    slots: Dict[str, int] = {}
    for v in topo:
        mask = masks[v]
        with_self = -1
        for edge in out[v]:
            if edge.is_unbounded and vertices[v].is_unbounded:
                if with_self < 0:
                    slot = slots.setdefault(v, len(slots))
                    with_self = mask | (1 << slot)
                masks[edge.head] |= with_self
            elif edge.kind is not max_time:
                masks[edge.head] |= mask
    for edge in backward:
        if masks[edge.tail] & ~masks[edge.head]:
            return WellPosedness.ILL_POSED
    return WellPosedness.WELL_POSED


def can_be_made_well_posed(graph: ConstraintGraph) -> bool:
    """Lemma 3 existence test: a feasible graph can be made well-posed iff
    it has no unbounded-length cycle.

    A cycle has unbounded length when it traverses an unbounded-weight
    edge; equivalently, some anchor ``a`` has a cycle through one of its
    ``delta(a)`` edges.  Since unbounded edges leave anchors, it suffices
    to test, for every anchor ``a`` and unbounded out-edge ``(a, s)``,
    whether ``a`` is reachable from ``s`` in the full graph.
    """
    if not is_feasible(graph):
        return False
    reach_cache: Dict[str, Set[str]] = {}
    for anchor in graph.anchors:
        for edge in graph.out_edges(anchor):
            if not edge.is_unbounded:
                continue
            if anchor in _full_reachable(graph, edge.head, reach_cache):
                return False
    return True


def _full_reachable(graph: ConstraintGraph, start: str,
                    cache: Dict[str, Set[str]]) -> Set[str]:
    """Vertices reachable from *start* over all edges (memoised per start)."""
    if start in cache:
        return cache[start]
    seen = {start}
    stack = [start]
    while stack:
        current = stack.pop()
        for edge in graph.out_edges(current):
            if edge.head not in seen:
                seen.add(edge.head)
                stack.append(edge.head)
    cache[start] = seen
    return seen


def make_well_posed(graph: ConstraintGraph, in_place: bool = False) -> ConstraintGraph:
    """The paper's ``makeWellposed`` (Section IV-C): minimal serialization.

    For every backward edge ``(t, h)`` and every anchor ``a`` in
    ``A(t) \\ A(h)``, a forward synchronization edge ``(a, h)`` with
    weight ``delta(a)`` is added, and the addition is propagated along
    chains of backward edges leaving ``h`` (procedure ``addEdge``).  The
    pass repeats until a fixed point, because an added edge enlarges the
    anchor sets of downstream vertices and may expose new containment
    violations.  Every added edge is forced by the containment criterion
    and has a maximal defining path of length 0, so the result is a
    *minimum* serial-compatible graph (Theorem 7).

    Args:
        graph: a feasible constraint graph (forward subgraph acyclic).
        in_place: mutate *graph* instead of copying.

    Returns:
        The well-posed (possibly serialized) graph.

    Raises:
        IllPosedError: when serialization would close an unbounded-length
            cycle -- no well-posed serial-compatible graph exists
            (Lemma 3 / Lemma 7).
    """
    result = graph if in_place else graph.copy()
    tracer = _OBS.tracer
    rec = tracer.enabled
    if rec:
        initial_serializations = len(serialization_edges(result))
    for _ in range(len(result) * max(1, len(result.anchors))):
        anchor_sets = {name: set(tags) for name, tags
                       in find_anchor_sets(result).items()}
        added = False
        for edge in list(result.backward_edges()):
            missing = sorted(anchor_sets[edge.tail] - anchor_sets[edge.head])
            for anchor in missing:
                added = _add_serialization(result, anchor_sets, anchor, edge.head) or added
        if not added:
            break
    else:  # pragma: no cover - the loop bound is generous
        raise IllPosedError("makeWellposed did not reach a fixed point")
    pruned = _prune_unnecessary_serializations(result)
    if rec:
        kept = len(serialization_edges(result)) - initial_serializations
        tracer.count("wellposed.serialization_edges", kept)
        tracer.count("wellposed.serialization_pruned", pruned)
        tracer.event("wellposed.serialized", edges=kept, pruned=pruned)
    return result


def _prune_unnecessary_serializations(graph: ConstraintGraph) -> int:
    """Drop serialization edges whose removal keeps the graph well-posed.

    The backward-chain propagation of ``addEdge`` can insert an edge
    that a later addition subsumes (its containment requirement becomes
    implied through another serialization).  Each such edge is pure
    over-serialization: removing it cannot violate Theorem 2 (checked
    directly) and only shortens longest paths, so the pruned graph is
    still a minimum serial-compatible graph -- now also *edge-minimal*:
    removing any surviving serialization edge re-breaks well-posedness
    (a property the test suite asserts).  Returns the number of edges
    dropped.
    """
    from repro.core.graph import EdgeKind

    removed = 0
    changed = True
    while changed:
        changed = False
        for edge in [e for e in graph.edges()
                     if e.kind is EdgeKind.SERIALIZATION]:
            graph.remove_edge(edge)
            if containment_violations(graph):
                graph.add_serialization_edge(edge.tail, edge.head)  # required
            else:
                changed = True
                removed += 1
    return removed


def _add_serialization(graph: ConstraintGraph, anchor_sets: Dict[str, set],
                       anchor: str, vertex: str) -> bool:
    """The paper's ``addEdge(a, v)``: serialize *vertex* after *anchor*.

    Adds the forward edge, updates the (mutable) anchor-set table, and
    recurses along backward edges leaving *vertex* so that chained
    maximum constraints stay well-posed.  Returns True when any edge was
    added.

    Raises:
        IllPosedError: if *vertex* already precedes *anchor* in the
            forward graph -- the new edge would close an unbounded-length
            cycle (Lemma 3).
    """
    if anchor in anchor_sets[vertex]:
        return False
    if vertex == anchor or graph.is_forward_reachable(vertex, anchor):
        raise IllPosedError(
            f"cannot serialize {vertex!r} after anchor {anchor!r}: "
            f"{vertex!r} precedes the anchor, an unbounded-length cycle "
            f"would be created (constraints are ill-posed)")
    graph.add_serialization_edge(anchor, vertex)
    anchor_sets[vertex].add(anchor)
    added = True
    for edge in graph.out_edges(vertex):
        if edge.is_backward:
            _add_serialization(graph, anchor_sets, anchor, edge.head)
    return added


def serialization_edges(graph: ConstraintGraph) -> List[Edge]:
    """The synchronization edges previously added by ``make_well_posed``."""
    from repro.core.graph import EdgeKind

    return [e for e in graph.edges() if e.kind is EdgeKind.SERIALIZATION]
