"""Persistent on-disk schedule cache keyed by canonical graph hashes.

The cache file is JSON Lines: one self-contained entry per line, so the
file can be appended to without rewriting and a torn write (power loss,
full disk, concurrent truncation) damages at most the lines it touched.
The file sits outside the trust boundary -- a user can hand the CLI any
path -- so loading follows the PR-4 untrusted-input rules: every line is
parsed defensively, structurally validated, and *dropped* on any
problem.  A corrupted or truncated entry is indistinguishable from a
miss; it can never crash the loader and never produce a wrong schedule
(keys are SHA-256 certificates of the full canonical structure, see
:mod:`repro.core.canonical`).

Concurrency: one cache file may be appended to by many service workers
in many processes.  Two layers keep it sound:

* **in-process**: every public method takes the instance's lock, so
  worker threads sharing one :class:`ScheduleCache` cannot interleave
  ``put``/``flush`` state;
* **cross-process**: :meth:`flush` holds an exclusive ``fcntl`` file
  lock (where the platform has one) around a **single** ``os.write`` of
  the whole staged payload onto an ``O_APPEND`` descriptor, so lines
  from concurrent writers land whole, never spliced.  On platforms
  without ``fcntl`` the single ``O_APPEND`` write is still the unit of
  interleaving, and the defensive loader remains the backstop: a torn
  line is just a miss.

An entry stores the FULL-mode minimum offsets of one well-posed graph in
*canonical coordinates*: ``rows[r][j]`` is the offset of the rank-``r``
vertex with respect to the ``j``-th anchor (anchors in canonical-rank
order, per ``anchor_ranks``), with ``-1`` for untracked pairs -- the
same sentinel the indexed kernel uses.  Only well-posed graphs are
cached: their offsets are a structural fixpoint, so relabelling a hit
onto an isomorphic graph is exact.  Ill-posed graphs are *not* cached --
``make_well_posed`` breaks serialization ties by vertex name, so its
output (and hence the serialized schedule) is not guaranteed stable
under renaming -- and neither are unfeasible/cyclic verdicts, which the
batch classifier re-derives faster than a lookup would load.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.sanitize import make_lock

try:  # pragma: no cover - platform-dependent
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Entry schema version; bump to orphan (ignore) all persisted entries.
CACHE_FORMAT = 1

#: Hard per-entry caps, mirroring the untrusted-input limits: a hostile
#: cache file must not balloon memory by declaring huge rows.
_MAX_VERTICES = 1 << 20
_MAX_ANCHORS = 1 << 16
_MAX_OFFSET = 1 << 53  # matches qa.serialize.MAX_ABS_WEIGHT


class ScheduleCache:
    """A persistent map ``canonical key -> schedule entry`` (JSONL file).

    Args:
        path: cache file location; a missing file is an empty cache.

    Attributes:
        hits / misses: lookup counters for this process.
        rejected_lines: lines of the backing file that failed parsing or
            validation at load and were treated as absent.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._pending: List[str] = []
        self._lock = make_lock("resultcache.entries")
        self.hits = 0
        self.misses = 0
        self.rejected_lines = 0
        self._load()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------

    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except (OSError, UnicodeDecodeError):
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            entry = _validated_entry(line)
            if entry is None:
                self.rejected_lines += 1
                continue
            # Later lines win: an append-only file may legitimately
            # carry a re-written entry for the same key.
            self._entries[entry["key"]] = entry

    def get(self, key: Optional[str]) -> Optional[Dict[str, Any]]:
        """The entry stored under *key*, or None (counted as hit/miss)."""
        if key is None:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
            return entry

    def put(self, key: str, n_vertices: int, anchor_ranks: List[int],
            rows: List[List[int]], iterations: int) -> None:
        """Stage an entry for the next :meth:`flush` (and serve it now).

        Ownership of *anchor_ranks* and *rows* passes to the cache --
        callers must not mutate them afterwards (the batch kernel hands
        over freshly built lists, so no defensive copy is taken).
        """
        entry = {
            "format": CACHE_FORMAT,
            "key": key,
            "n": n_vertices,
            "anchor_ranks": anchor_ranks,
            "rows": rows,
            "iterations": iterations,
        }
        with self._lock:
            if key not in self._entries:
                # repr() of nested int lists is valid JSON and much cheaper
                # than json.dumps on the batch hot path; the key is 64 hex
                # chars, so no field needs escaping.
                self._pending.append(
                    '{"format":%d,"key":"%s","n":%d,"anchor_ranks":%r,'
                    '"rows":%r,"iterations":%d}'
                    % (CACHE_FORMAT, key, n_vertices, anchor_ranks, rows,
                       iterations))
            self._entries[key] = entry

    def flush(self) -> int:
        """Append staged entries to the backing file; returns how many.

        The staged lines go out as **one** ``os.write`` on an
        ``O_APPEND`` descriptor under an exclusive ``fcntl`` lock (where
        available), so concurrent flushes -- other threads, other
        processes, other machines on a shared filesystem honoring POSIX
        locks -- append whole lines, never interleaved fragments.

        Failures to write (read-only location, full disk) are swallowed:
        a cache that cannot persist degrades to an in-memory one.
        """
        with self._lock:
            if not self._pending:
                return 0
            written = len(self._pending)
            payload = ("\n".join(self._pending) + "\n").encode("utf-8")
            self._pending = []
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.path,
                         os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
            try:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                try:
                    view = memoryview(payload)
                    while view:  # a short write would tear a line
                        view = view[os.write(fd, view):]
                    os.fsync(fd)
                finally:
                    if fcntl is not None:
                        fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)
        except OSError:
            return 0
        return written

    def __enter__(self) -> "ScheduleCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.flush()


def _validated_entry(line: str) -> Optional[Dict[str, Any]]:
    """Parse and structurally validate one cache line; None to drop it."""
    try:
        entry = json.loads(line)
    except ValueError:
        return None
    if not isinstance(entry, dict):
        return None
    if entry.get("format") != CACHE_FORMAT:
        return None
    key = entry.get("key")
    if not isinstance(key, str) or len(key) != 64 \
            or any(c not in "0123456789abcdef" for c in key):
        return None
    n = entry.get("n")
    if not isinstance(n, int) or isinstance(n, bool) \
            or not 2 <= n <= _MAX_VERTICES:
        return None
    anchor_ranks = entry.get("anchor_ranks")
    if not isinstance(anchor_ranks, list) or len(anchor_ranks) > _MAX_ANCHORS:
        return None
    for rank in anchor_ranks:
        if not isinstance(rank, int) or isinstance(rank, bool) \
                or not 0 <= rank < n:
            return None
    if len(set(anchor_ranks)) != len(anchor_ranks):
        return None
    rows = entry.get("rows")
    if not isinstance(rows, list) or len(rows) != n:
        return None
    width = len(anchor_ranks)
    for row in rows:
        if not isinstance(row, list) or len(row) != width:
            return None
        for value in row:
            if not isinstance(value, int) or isinstance(value, bool) \
                    or not -1 <= value <= _MAX_OFFSET:
                return None
    iterations = entry.get("iterations")
    if not isinstance(iterations, int) or isinstance(iterations, bool) \
            or iterations < 0:
        return None
    return entry
