"""Watchdog anchors: per-anchor timeout bounds ``W(a)`` and policies.

The paper's model leaves anchor delays unbounded; a production runtime
cannot.  A *watchdog anchor* pairs an unbounded operation with a timeout
bound ``W(a)``: if the anchor's ``done`` has not arrived within ``W(a)``
cycles of its start, the watchdog fires a *detected* timeout event
instead of letting the control unit hang.  What happens next is the
configured :class:`WatchdogPolicy`:

* ``ABORT`` -- raise :class:`~repro.core.exceptions.WatchdogTimeoutError`
  (the taxonomy error the CLI's ``error:`` contract already covers);
* ``RETRY`` -- re-arm the watchdog up to ``max_rearms`` times, each
  window scaled by ``backoff``; a late ``done`` arriving inside a
  re-arm window recovers the run (the timing constraints still hold --
  the relative schedule is correct for *every* delay), exhausting the
  windows escalates to an abort;
* ``FALLBACK`` -- degrade to the static
  :mod:`repro.baselines.worst_case` bounded schedule, budgeting every
  unbounded delay at its watchdog bound.

Bounds also pay off analytically: a schedule whose anchors all carry
bounds has a *bounded* worst-case latency
(:meth:`repro.core.schedule.RelativeSchedule.bounded_completion`),
recovering the guarantee the fixed-delay baselines had without giving
up run-time adaptivity.

This module holds only the shared config/event types so :mod:`repro.sim`
can honor watchdogs without importing :mod:`repro.resilience` (which
builds on the simulators).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.core.exceptions import GraphStructureError


class WatchdogPolicy(enum.Enum):
    """What a fired watchdog does (Section: graceful degradation)."""

    ABORT = "abort"
    RETRY = "retry"
    FALLBACK = "fallback"


@dataclass(frozen=True)
class WatchdogTimeout:
    """One detected timeout event.

    Attributes:
        anchor: the anchor whose bound expired.
        cycle: the simulation cycle at which the watchdog fired.
        bound: the window that expired (the base ``W(a)`` scaled by any
            backoff for re-arm windows).
        rearm: 0 for the first firing, k for the k-th re-arm window.
    """

    anchor: str
    cycle: int
    bound: int
    rearm: int = 0


@dataclass(frozen=True)
class WatchdogConfig:
    """Per-anchor timeout bounds plus the shared degradation policy.

    Attributes:
        bounds: anchor name -> ``W(a)`` in cycles.  An anchor completing
            at exactly ``start + W(a)`` is in time; the watchdog fires
            when the anchor is still running at ``start + W(a)``.
        default: bound for anchors not listed in *bounds* (None leaves
            them unmonitored).
        policy: what a firing does (abort / retry / fallback).
        max_rearms: RETRY only -- how many extra windows to grant.
        backoff: RETRY only -- multiplier applied to each successive
            re-arm window (window k spans ``W(a) * backoff**k`` cycles).
        fallback_budget: FALLBACK only -- the per-anchor delay budget of
            the degraded static schedule (defaults to the largest
            configured bound).
    """

    bounds: Mapping[str, int] = field(default_factory=dict)
    default: Optional[int] = None
    policy: WatchdogPolicy = WatchdogPolicy.ABORT
    max_rearms: int = 2
    backoff: int = 2
    fallback_budget: Optional[int] = None

    def bound_for(self, anchor: str) -> Optional[int]:
        """``W(anchor)``, or None when the anchor is unmonitored."""
        return self.bounds.get(anchor, self.default)

    def budget(self) -> int:
        """The delay budget the FALLBACK policy degrades to."""
        if self.fallback_budget is not None:
            return self.fallback_budget
        candidates = list(self.bounds.values())
        if self.default is not None:
            candidates.append(self.default)
        return max(candidates) if candidates else 0

    def total_allowance(self, anchor: str) -> Optional[int]:
        """Cycles after start before RETRY escalates to an abort
        (the base window plus every re-arm window), or None when
        unmonitored."""
        bound = self.bound_for(anchor)
        if bound is None:
            return None
        if self.policy is not WatchdogPolicy.RETRY:
            return bound
        return bound + sum(bound * self.backoff ** k
                           for k in range(1, self.max_rearms + 1))


def validate_watchdog_bounds(bounds: Mapping[str, int], anchors,
                             source: str = "") -> Dict[str, int]:
    """Validate a ``{anchor: W(a)}`` mapping against a graph's anchors.

    Returns a plain-dict copy.  The source may carry a bound (its
    activation handshake can stall like any completion signal).

    Raises:
        GraphStructureError: unknown anchor name, or a bound that is not
            a non-negative integer.
    """
    anchor_set = set(anchors)
    validated: Dict[str, int] = {}
    for name, bound in bounds.items():
        if name not in anchor_set:
            raise GraphStructureError(
                f"watchdog bound names {name!r}, which is not an anchor "
                f"(anchors: {sorted(anchor_set)})")
        if isinstance(bound, bool) or not isinstance(bound, int):
            raise GraphStructureError(
                f"watchdog bound for {name!r} must be an int, got {bound!r}")
        if bound < 0:
            raise GraphStructureError(
                f"watchdog bound for {name!r} must be non-negative, got {bound}")
        validated[name] = bound
    return validated
