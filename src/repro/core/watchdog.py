"""Watchdog anchors: per-anchor timeout bounds ``W(a)`` and policies.

The paper's model leaves anchor delays unbounded; a production runtime
cannot.  A *watchdog anchor* pairs an unbounded operation with a timeout
bound ``W(a)``: if the anchor's ``done`` has not arrived within ``W(a)``
cycles of its start, the watchdog fires a *detected* timeout event
instead of letting the control unit hang.  What happens next is the
configured :class:`WatchdogPolicy`:

* ``ABORT`` -- raise :class:`~repro.core.exceptions.WatchdogTimeoutError`
  (the taxonomy error the CLI's ``error:`` contract already covers);
* ``RETRY`` -- re-arm the watchdog up to ``max_rearms`` times, each
  window scaled by ``backoff``; a late ``done`` arriving inside a
  re-arm window recovers the run (the timing constraints still hold --
  the relative schedule is correct for *every* delay), exhausting the
  windows escalates to an abort;
* ``FALLBACK`` -- degrade to the static
  :mod:`repro.baselines.worst_case` bounded schedule, budgeting every
  unbounded delay at its watchdog bound.

Bounds also pay off analytically: a schedule whose anchors all carry
bounds has a *bounded* worst-case latency
(:meth:`repro.core.schedule.RelativeSchedule.bounded_completion`),
recovering the guarantee the fixed-delay baselines had without giving
up run-time adaptivity.

This module holds only the shared config/event types so :mod:`repro.sim`
can honor watchdogs without importing :mod:`repro.resilience` (which
builds on the simulators).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from repro.core.exceptions import GraphStructureError

#: Re-arm schedules whose total allowance would leave the 2**53 wire
#: format (and dwarf any schedule's bounded completion) are configuration
#: bugs, not policies: `WatchdogConfig` rejects them at construction.
MAX_TOTAL_ALLOWANCE = 1 << 53


class WatchdogPolicy(enum.Enum):
    """What a fired watchdog does (Section: graceful degradation)."""

    ABORT = "abort"
    RETRY = "retry"
    FALLBACK = "fallback"


@dataclass(frozen=True)
class WatchdogTimeout:
    """One detected timeout event.

    Attributes:
        anchor: the anchor whose bound expired.
        cycle: the simulation cycle at which the watchdog fired.
        bound: the window that expired (the base ``W(a)`` scaled by any
            backoff for re-arm windows).
        rearm: 0 for the first firing, k for the k-th re-arm window.
    """

    anchor: str
    cycle: int
    bound: int
    rearm: int = 0


@dataclass(frozen=True)
class WatchdogConfig:
    """Per-anchor timeout bounds plus the shared degradation policy.

    Attributes:
        bounds: anchor name -> ``W(a)`` in cycles.  An anchor completing
            at exactly ``start + W(a)`` is in time; the watchdog fires
            when the anchor is still running at ``start + W(a)``.
        default: bound for anchors not listed in *bounds* (None leaves
            them unmonitored).
        policy: what a firing does (abort / retry / fallback).
        max_rearms: RETRY only -- how many extra windows to grant.
        backoff: RETRY only -- multiplier applied to each successive
            re-arm window (window k spans ``W(a) * backoff**k`` cycles).
        fallback_budget: FALLBACK only -- the per-anchor delay budget of
            the degraded static schedule (defaults to the largest
            configured bound).
    """

    bounds: Mapping[str, int] = field(default_factory=dict)
    default: Optional[int] = None
    policy: WatchdogPolicy = WatchdogPolicy.ABORT
    max_rearms: int = 2
    backoff: int = 2
    fallback_budget: Optional[int] = None

    def __post_init__(self) -> None:
        """Reject malformed or unbounded re-arm schedules up front.

        ``W(a) * backoff**k`` grows geometrically: a large ``max_rearms``
        silently grants a RETRY allowance far beyond any schedule's
        :meth:`~repro.core.schedule.RelativeSchedule.bounded_completion`
        worst case (and past the 2**53 wire cap, where the simulators
        would spin essentially forever before escalating).  Such configs
        are rejected here, at validation time, so every consumer of the
        shared :meth:`rearm_window` arithmetic sees bounded windows.
        """
        def require_count(value: object, what: str) -> None:
            if isinstance(value, bool) or not isinstance(value, int) \
                    or value < 0:
                raise GraphStructureError(
                    f"watchdog {what} must be a non-negative int, "
                    f"got {value!r}")

        require_count(self.max_rearms, "max_rearms")
        if isinstance(self.backoff, bool) or not isinstance(self.backoff, int) \
                or self.backoff < 1:
            raise GraphStructureError(
                f"watchdog backoff must be an int >= 1, got {self.backoff!r}")
        for name, bound in self.bounds.items():
            require_count(bound, f"bound for {name!r}")
        if self.default is not None:
            require_count(self.default, "default bound")
        if self.fallback_budget is not None:
            require_count(self.fallback_budget, "fallback_budget")
        if self.policy is WatchdogPolicy.RETRY:
            worst = max(list(self.bounds.values())
                        + ([self.default] if self.default is not None else []),
                        default=0)
            if self._allowance(worst) > MAX_TOTAL_ALLOWANCE:
                raise GraphStructureError(
                    f"RETRY re-arm windows for bound W={worst} "
                    f"(max_rearms={self.max_rearms}, "
                    f"backoff={self.backoff}) exceed the 2**53 allowance "
                    f"cap; lower max_rearms or backoff")

    def _allowance(self, bound: int) -> int:
        """Base window plus every re-arm window, capped early so huge
        ``max_rearms`` values cannot make validation itself spin."""
        total = bound
        window = bound
        for _ in range(self.max_rearms):
            if self.backoff == 1:
                # Constant windows: closed form, no loop over max_rearms.
                return bound * (1 + self.max_rearms)
            window *= self.backoff
            total += window
            if total > MAX_TOTAL_ALLOWANCE:
                break
        return total

    def rearm_window(self, bound: int, rearm: int) -> int:
        """Width of RETRY window *rearm* for base bound ``W(a) = bound``:
        the base window for ``rearm == 0``, ``W(a) * backoff**rearm``
        after.  The single formula shared by both simulators and the
        online executor, so boundary behaviour cannot drift.  Advancing
        a deadline clamps the returned width to >= 1 cycle (a zero-width
        window must still move time forward)."""
        if rearm == 0:
            return bound
        return bound * self.backoff ** rearm

    def bound_for(self, anchor: str) -> Optional[int]:
        """``W(anchor)``, or None when the anchor is unmonitored."""
        return self.bounds.get(anchor, self.default)

    def budget(self) -> int:
        """The delay budget the FALLBACK policy degrades to."""
        if self.fallback_budget is not None:
            return self.fallback_budget
        candidates = list(self.bounds.values())
        if self.default is not None:
            candidates.append(self.default)
        return max(candidates) if candidates else 0

    def total_allowance(self, anchor: str) -> Optional[int]:
        """Cycles after start before RETRY escalates to an abort
        (the base window plus every re-arm window), or None when
        unmonitored."""
        bound = self.bound_for(anchor)
        if bound is None:
            return None
        if self.policy is not WatchdogPolicy.RETRY:
            return bound
        return self._allowance(bound)

    def allowances(self, anchors: Iterable[str]) -> Dict[str, int]:
        """Per-anchor total allowance for every monitored anchor.

        The mapping to feed
        :meth:`~repro.core.schedule.RelativeSchedule.bounded_completion`
        when bounding the worst case of a RETRY run: a recovery inside a
        re-arm window means the anchor ran for up to
        :meth:`total_allowance` cycles, not ``W(a)``, so evaluating the
        worst case at the base bounds under-estimates RETRY latency.
        """
        result: Dict[str, int] = {}
        for anchor in anchors:
            allowance = self.total_allowance(anchor)
            if allowance is not None:
                result[anchor] = allowance
        return result


def validate_watchdog_bounds(bounds: Mapping[str, int], anchors,
                             source: str = "") -> Dict[str, int]:
    """Validate a ``{anchor: W(a)}`` mapping against a graph's anchors.

    Returns a plain-dict copy.  The source may carry a bound (its
    activation handshake can stall like any completion signal).

    Raises:
        GraphStructureError: unknown anchor name, or a bound that is not
            a non-negative integer.
    """
    anchor_set = set(anchors)
    validated: Dict[str, int] = {}
    for name, bound in bounds.items():
        if name not in anchor_set:
            raise GraphStructureError(
                f"watchdog bound names {name!r}, which is not an anchor "
                f"(anchors: {sorted(anchor_set)})")
        if isinstance(bound, bool) or not isinstance(bound, int):
            raise GraphStructureError(
                f"watchdog bound for {name!r} must be an int, got {bound!r}")
        if bound < 0:
            raise GraphStructureError(
                f"watchdog bound for {name!r} must be non-negative, got {bound}")
        validated[name] = bound
    return validated
