"""Anchor sets, relevant anchors, and irredundant anchors.

Anchors (Definition 2) are the source vertex plus every unbounded-delay
operation; they are the reference points of a relative schedule.

* The **anchor set** ``A(v)`` (Definition 4) contains every anchor whose
  completion gates the activation of ``v``: anchors with a *forward*
  path to ``v`` containing an unbounded-weight edge ``delta(a)``.
  Computed by :func:`find_anchor_sets` (the paper's ``findAnchorSet``).

* The **relevant anchor set** ``R(v)`` (Definition 9) contains anchors
  with a *defining path* to ``v`` -- a path in the full graph with
  exactly one unbounded edge.  Relevant anchors may directly determine
  the start time ``T(v)`` (Theorem 4).  Computed by
  :func:`relevant_anchors` (the paper's ``relevantAnchor``).

* The **irredundant anchor set** ``IR(v)`` (Definition 11) removes
  anchors dominated through a cascade of later anchors; it is the
  *minimum* set needed to compute ``T(v)`` (Theorem 6).  Computed by
  :func:`irredundant_anchors` (the paper's ``minimumAnchor``).

For well-posed graphs with minimum offsets the paper proves
``IR(v) subset-of R(v) subset-of A(v)`` and the equality of the start
times computed from any of the three sets (Theorems 4-6).
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Mapping, Optional

from repro.core.graph import ConstraintGraph
from repro.core.paths import NO_PATH

#: Anchor sets map each vertex name to a frozen set of anchor names.
AnchorSets = Dict[str, FrozenSet[str]]


class AnchorMode(enum.Enum):
    """Which anchor-set variant downstream algorithms should use."""

    FULL = "full"
    RELEVANT = "relevant"
    IRREDUNDANT = "irredundant"


def find_anchor_sets(graph: ConstraintGraph) -> AnchorSets:
    """Compute ``A(v)`` for every vertex (the paper's ``findAnchorSet``).

    Anchors propagate along forward edges in topological order: an
    unbounded edge ``(a, v)`` injects ``a`` into ``A(v)``; every forward
    edge ``(u, v)`` propagates ``A(u)`` into ``A(v)``.  The source's
    anchor set is empty; since the graph is polar and every source
    out-edge is unbounded, the source ends up in the anchor set of every
    other vertex.

    Complexity ``O(|Ef| * |A|)``, matching the paper: each forward edge
    is traversed once and each traversal merges at most ``|A|`` tags.
    Runs as bitset propagation on the indexed compilation; the result
    is memoised on the graph's versioned analysis cache, so the
    well-posedness check, ``make_well_posed`` and the scheduler share
    one computation per graph version.
    """
    from repro.core.indexed import anchor_masks, get_indexed, masks_to_sets

    return graph.cached(
        "anchor_sets",
        lambda: masks_to_sets(get_indexed(graph), anchor_masks(graph)))


def relevant_anchors(graph: ConstraintGraph) -> AnchorSets:
    """Compute ``R(v)`` for every vertex (the paper's ``relevantAnchor``).

    Each anchor is propagated outwards over its out-edges and then as
    far as possible along *bounded*-weight edges of the full graph
    (forward and backward alike), stopping at unbounded edges.  Every
    vertex reached acquires the anchor as relevant: the traversal prefix
    is a defining path (Definition 8).

    Deviation from the paper's Definition 8 (documented in DESIGN.md):
    a defining path here contains *at most* one unbounded edge, which --
    when present -- must be the first.  The paper requires exactly one,
    but a *bounded* edge leaving an anchor (a minimum timing constraint
    whose tail is an anchor) constrains the offset ``sigma_a(v)``
    directly, so the anchor can determine ``T(v)`` with no unbounded
    edge on the path; the strict definition would drop it and lose the
    constraint.  Bounded-first-edge propagation is confined to the
    anchor's cone ``{x : a in A(x)}``, where the offsets it constrains
    are actually defined.  On graphs whose anchors have only unbounded
    out-edges (all of the paper's examples) the two definitions
    coincide.

    Complexity ``O(|A| * |E|)``: each edge is examined at most twice per
    anchor.  Runs as per-anchor bitmask traversals on the indexed
    compilation (phase 1: unbounded first hop then bounded edges;
    phase 2: all-bounded paths confined to the anchor's cone), memoised
    per graph version.
    """
    from repro.core.indexed import get_indexed, masks_to_sets, relevant_masks

    return graph.cached(
        "relevant_sets",
        lambda: masks_to_sets(get_indexed(graph), relevant_masks(graph)))


def irredundant_anchors(
    graph: ConstraintGraph,
    anchor_sets: Optional[AnchorSets] = None,
    relevant: Optional[AnchorSets] = None,
    lengths: Optional[Mapping[str, Mapping[str, Optional[int]]]] = None,
) -> AnchorSets:
    """Compute ``IR(v)`` for every vertex (the paper's ``minimumAnchor``).

    An anchor ``x`` of ``v`` is *redundant* (Definition 11) when some
    anchor ``q`` with ``x in A(q)`` and ``q in A(v)`` satisfies
    ``length(x, v) = length(x, q) + length(q, v)``: the path through
    ``q`` already covers the longest path from ``x``, and ``q``'s later
    completion dominates ``x``'s.  The redundancy scan only needs to
    compare relevant anchors against each other (Theorem 5 shows every
    irrelevant anchor is redundant).

    The ``length`` of Definition 11 is interpreted as the minimum offset
    (the proof of Lemma 6 equates the two via Theorem 3), i.e. the
    longest path restricted to vertices whose anchor set contains the
    anchor -- see :func:`repro.core.paths.anchored_longest_paths`.  On
    graphs where no backward edge escapes an anchored region this equals
    the full-graph ``length(a, b)``.

    Pre-computed *anchor_sets*, *relevant* sets, and anchor-to-vertex
    *lengths* tables may be supplied to avoid recomputation.

    Complexity: dominated by the longest-path tables,
    ``O(|A| * |V| * |E|)`` here (the paper quotes ``O(|V| * |E|)`` per
    anchor); the scan itself is ``O(|R|^2)`` per vertex.

    With no pre-computed tables supplied, the whole computation runs on
    the indexed kernel (bitmask scan over memoised per-slot worklist
    distance arrays) and is cached per graph version.
    """
    from repro.core.paths import anchored_longest_paths

    if anchor_sets is None and relevant is None and lengths is None:
        from repro.core.indexed import get_indexed, irredundant_masks, masks_to_sets

        return graph.cached(
            "irredundant_sets",
            lambda: masks_to_sets(get_indexed(graph), irredundant_masks(graph)))

    if anchor_sets is None:
        anchor_sets = find_anchor_sets(graph)
    if relevant is None:
        relevant = relevant_anchors(graph)
    if lengths is None:
        lengths = {anchor: anchored_longest_paths(graph, anchor, anchor_sets)
                   for anchor in graph.anchors}

    irredundant: Dict[str, FrozenSet[str]] = {}
    for vertex in graph.vertex_names():
        candidates = relevant[vertex]
        redundant = set()
        for r in candidates:
            # Anchors of v that are, in turn, anchors of r: they complete
            # before r does, so r may dominate them.
            for x in candidates:
                if x == r or x not in anchor_sets[r]:
                    continue
                through = _sum_lengths(lengths[x].get(r), lengths[r].get(vertex))
                direct = lengths[x].get(vertex)
                if direct is not NO_PATH and through is not NO_PATH and direct <= through:
                    redundant.add(x)
        irredundant[vertex] = frozenset(candidates - redundant)
    return irredundant


def _sum_lengths(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is NO_PATH or b is NO_PATH:
        return NO_PATH
    return a + b


def anchor_sets_for_mode(graph: ConstraintGraph, mode: AnchorMode) -> AnchorSets:
    """The anchor sets requested by *mode* (full / relevant / irredundant)."""
    if mode is AnchorMode.FULL:
        return find_anchor_sets(graph)
    if mode is AnchorMode.RELEVANT:
        return relevant_anchors(graph)
    if mode is AnchorMode.IRREDUNDANT:
        return irredundant_anchors(graph)
    raise ValueError(f"unknown anchor mode {mode!r}")


def anchor_set_statistics(anchor_sets: AnchorSets) -> Dict[str, float]:
    """Summary statistics in the style of Table III.

    Returns ``total`` (sum of |A(v)| over all vertices) and ``average``
    (total / |V|).
    """
    total = sum(len(tags) for tags in anchor_sets.values())
    count = len(anchor_sets)
    return {"total": total, "average": total / count if count else 0.0}
