"""Untimed functional interpreter for the HardwareC subset.

Executes a process's AST directly -- loops iterate, conditionals branch,
``read(port)`` consumes stimulus values -- to validate that the frontend
and the synthesized design compute the right *values* (the timing side
is covered by :mod:`repro.sim.engine` and :mod:`repro.sim.control_sim`).
The Fig. 14 experiment uses it to confirm the gcd design really computes
greatest common divisors for random inputs.

Variables and ports are masked to their declared widths, matching
HardwareC's bit-true semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.hdl.ast import (
    Assign,
    Binary,
    Block,
    Call,
    Const,
    ConstraintStmt,
    Expr,
    If,
    Process,
    Program,
    ReadExpr,
    RepeatUntil,
    Stmt,
    Unary,
    Var,
    Wait,
    While,
    WriteStmt,
)
from repro.hdl.errors import HdlLowerError


class PortStream:
    """A sequence of values an input port yields on successive reads.

    After the sequence is exhausted the last value repeats (a held
    signal), which models level-sensitive inputs like ``restart``.
    """

    def __init__(self, values: Union[int, List[int]]) -> None:
        if isinstance(values, int):
            values = [values]
        if not values:
            raise ValueError("PortStream needs at least one value")
        self._values = list(values)
        self._index = 0

    def read(self) -> int:
        """The next sample (the last value repeats when exhausted)."""
        value = self._values[min(self._index, len(self._values) - 1)]
        self._index += 1
        return value

    def peek(self) -> int:
        return self._values[min(self._index, len(self._values) - 1)]


@dataclass
class InterpreterResult:
    """Final state of a functional run.

    Attributes:
        outputs: last value written to each output port.
        output_history: every write to each output port, in order.
        variables: final variable values.
        steps: statements executed (the loop-guard budget consumed).
    """

    outputs: Dict[str, int]
    output_history: Dict[str, List[int]]
    variables: Dict[str, int]
    steps: int


class Interpreter:
    """Functional executor for one process of a program.

    Args:
        program: the parsed program (for resolving ``call``).
        process_name: which process to run (default: the first).
        max_steps: statement budget guarding non-terminating loops.
    """

    def __init__(self, program: Program, process_name: Optional[str] = None,
                 max_steps: int = 100000,
                 observer: Optional["ExecutionObserver"] = None) -> None:
        self.program = program
        self.process = (program.process(process_name) if process_name
                        else program.processes[0])
        self.max_steps = max_steps
        self.observer = observer

    # ------------------------------------------------------------------

    def run(self, inputs: Optional[Dict[str, Union[int, List[int], PortStream]]] = None
            ) -> InterpreterResult:
        """Execute the process once with the given input port stimulus."""
        streams: Dict[str, PortStream] = {}
        for name, spec in (inputs or {}).items():
            streams[name] = spec if isinstance(spec, PortStream) else PortStream(spec)

        state = _RunState(self, streams)
        state.push_process(self.process)
        state.execute_block(self.process.body)
        return InterpreterResult(
            outputs={port: history[-1] for port, history in state.outputs.items()},
            output_history=dict(state.outputs),
            variables=dict(state.variables),
            steps=state.steps,
        )


class ExecutionObserver:
    """Hooks invoked as the interpreter executes control constructs.

    Co-simulation (:mod:`repro.sim.cosim`) subclasses this to record,
    per dynamic instance, how many iterations each loop ran and which
    branch each conditional took -- the data-dependent quantities the
    timed execution engine needs as stimulus.
    """

    def loop_finished(self, stmt, trips: int) -> None:
        """A While/RepeatUntil instance completed after *trips* passes."""

    def branch_taken(self, stmt, choice: int) -> None:
        """An If instance chose branch *choice* (0 = then, 1 = else)."""


class _RunState:
    def __init__(self, interpreter: Interpreter, streams: Dict[str, PortStream]) -> None:
        self.interpreter = interpreter
        self.streams = streams
        self.variables: Dict[str, int] = {}
        self.outputs: Dict[str, List[int]] = {}
        self.widths: Dict[str, int] = {}
        self.steps = 0
        self.process_stack: List[Process] = []

    # ------------------------------------------------------------------

    def push_process(self, process: Process) -> None:
        """Bring a process's declarations into scope (for calls)."""
        self.process_stack.append(process)
        for var in process.variables:
            self.widths[var.name] = var.width
            self.variables.setdefault(var.name, 0)
        for port in process.ports:
            self.widths[port.name] = port.width

    def _mask(self, name: str, value: int) -> int:
        width = self.widths.get(name, 32)
        return value & ((1 << width) - 1)

    def _budget(self) -> None:
        self.steps += 1
        if self.steps > self.interpreter.max_steps:
            raise RuntimeError(
                f"interpreter exceeded {self.interpreter.max_steps} steps; "
                f"a data-dependent loop may not terminate under this stimulus")

    # ------------------------------------------------------------------

    def execute_block(self, block: Block) -> None:
        """Run a block (parallel blocks sample pre-block state)."""
        if block.parallel:
            self._execute_parallel(block)
            return
        for stmt in block.statements:
            self.execute(stmt)

    def _execute_parallel(self, block: Block) -> None:
        """``< ... >``: all right-hand sides sample the pre-block state."""
        updates: List[Tuple[str, int, bool]] = []  # (target, value, is_port)
        for stmt in block.statements:
            self._budget()
            if isinstance(stmt, Assign):
                updates.append((stmt.target, self.eval(stmt.value), False))
            elif isinstance(stmt, WriteStmt):
                updates.append((stmt.port, self.eval(stmt.value), True))
            else:
                # Non-assignment statements run sequentially within <>.
                self.execute(stmt)
        for target, value, is_port in updates:
            if is_port:
                self.outputs.setdefault(target, []).append(self._mask(target, value))
            else:
                self.variables[target] = self._mask(target, value)

    def execute(self, stmt: Stmt) -> None:
        """Run one statement under the step budget."""
        self._budget()
        if isinstance(stmt, Block):
            self.execute_block(stmt)
        elif isinstance(stmt, Assign):
            self.variables[stmt.target] = self._mask(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, WriteStmt):
            self.outputs.setdefault(stmt.port, []).append(
                self._mask(stmt.port, self.eval(stmt.value)))
        elif isinstance(stmt, While):
            trips = 0
            while self.eval(stmt.cond):
                self._budget()
                trips += 1
                if stmt.body is not None:
                    self.execute(stmt.body)
            self._observe_loop(stmt, trips)
        elif isinstance(stmt, RepeatUntil):
            trips = 0
            while True:
                trips += 1
                self.execute(stmt.body)
                if self.eval(stmt.cond):
                    break
            self._observe_loop(stmt, trips)
        elif isinstance(stmt, If):
            if self.eval(stmt.cond):
                self._observe_branch(stmt, 0)
                self.execute(stmt.then)
            else:
                self._observe_branch(stmt, 1)
                if stmt.otherwise is not None:
                    self.execute(stmt.otherwise)
        elif isinstance(stmt, Wait):
            # Untimed semantics: a wait consumes one sample of its
            # condition (external synchronization resolves immediately).
            self.eval(stmt.cond)
        elif isinstance(stmt, Call):
            callee = self.interpreter.program.process(stmt.callee)
            self.push_process(callee)
            self.execute_block(callee.body)
            self.process_stack.pop()
        elif isinstance(stmt, ConstraintStmt):
            pass  # timing-only, no functional effect
        else:
            raise HdlLowerError(f"cannot interpret {type(stmt).__name__}")

    def _observe_loop(self, stmt, trips: int) -> None:
        observer = self.interpreter.observer
        if observer is not None:
            observer.loop_finished(stmt, trips)

    def _observe_branch(self, stmt, choice: int) -> None:
        observer = self.interpreter.observer
        if observer is not None:
            observer.branch_taken(stmt, choice)

    # ------------------------------------------------------------------

    def eval(self, expr: Expr) -> int:
        """Evaluate an expression (short-circuit && and ||)."""
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            if expr.name in self.variables:
                return self.variables[expr.name]
            if expr.name in self.streams:
                # Reading a port by name (level-sensitive sample).
                return self.streams[expr.name].read()
            return 0
        if isinstance(expr, ReadExpr):
            stream = self.streams.get(expr.port)
            if stream is None:
                raise KeyError(f"no stimulus provided for input port {expr.port!r}")
            return self._mask(expr.port, stream.read())
        if isinstance(expr, Unary):
            value = self.eval(expr.operand)
            if expr.op == "!":
                return 0 if value else 1
            if expr.op == "~":
                return ~value
            if expr.op == "-":
                return -value
            raise ValueError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, Binary):
            left = self.eval(expr.left)
            if expr.op == "&&":
                return 1 if left and self.eval(expr.right) else 0
            if expr.op == "||":
                return 1 if left or self.eval(expr.right) else 0
            right = self.eval(expr.right)
            return _binary(expr.op, left, right)
        raise ValueError(f"cannot evaluate {type(expr).__name__}")


def _binary(op: str, left: int, right: int) -> int:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ZeroDivisionError("division by zero in HardwareC expression")
        return left // right
    if op == "%":
        if right == 0:
            raise ZeroDivisionError("modulo by zero in HardwareC expression")
        return left % right
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return left << right
    if op == ">>":
        return left >> right
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "<":
        return 1 if left < right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == ">=":
        return 1 if left >= right else 0
    raise ValueError(f"unknown binary operator {op!r}")
