"""Co-simulation: functional values drive the timed execution.

The functional interpreter knows *what* a HardwareC design computes;
the execution engine knows *when* the schedule activates things, given
loop trip counts and branch choices.  Co-simulation runs both from the
same stimulus: an instrumented interpreter pass records, per control
construct and per dynamic instance, how many iterations each loop ran
and which branch each conditional took; those recordings then feed the
timed engine through the construct registries the HDL lowerer leaves in
``design.metadata``.

The result is the full Fig. 14 experiment from one function call:
correct *values* (gcd really computes gcd) at cycle-accurate *times*
(the samples land exactly where the constraints demand), with every
timing constraint checked on the executed trace.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.core.anchors import AnchorMode
from repro.hdl.ast import Program
from repro.hdl.parser import parse
from repro.sim.engine import SimResult, Stimulus, execute_design
from repro.sim.interpreter import (
    ExecutionObserver,
    Interpreter,
    InterpreterResult,
)


class _Recorder(ExecutionObserver):
    """Records per-construct FIFOs of dynamic outcomes.

    Queues are keyed by the construct's AST pre-order index (the same
    numbering the lowerer stores in ``design.metadata``).  Within one
    construct, dynamic instances complete in the same order the engine
    later encounters them, so plain FIFOs line up.
    """

    def __init__(self, construct_index: Dict[int, int]) -> None:
        self.construct_index = construct_index
        self.loop_trips: Dict[int, Deque[int]] = {}
        self.branch_choices: Dict[int, Deque[int]] = {}

    def loop_finished(self, stmt, trips: int) -> None:
        """Queue a loop instance's trip count under its construct."""
        index = self.construct_index.get(id(stmt))
        if index is not None:
            self.loop_trips.setdefault(index, deque()).append(trips)

    def branch_taken(self, stmt, choice: int) -> None:
        """Queue a conditional instance's branch choice."""
        index = self.construct_index.get(id(stmt))
        if index is not None:
            self.branch_choices.setdefault(index, deque()).append(choice)


def index_constructs(program: Program, process_name: str) -> Dict[int, int]:
    """AST pre-order indices for the process's control constructs --
    identical numbering to the lowerer's registry."""
    from repro.hdl.ast import Block, If, RepeatUntil, While

    process = program.process(process_name)
    index: Dict[int, int] = {}
    counter = [0]

    def walk(stmt) -> None:
        if isinstance(stmt, (While, RepeatUntil, If)):
            index[id(stmt)] = counter[0]
            counter[0] += 1
        if isinstance(stmt, Block):
            for inner in stmt.statements:
                walk(inner)
        elif isinstance(stmt, While) and stmt.body is not None:
            walk(stmt.body)
        elif isinstance(stmt, RepeatUntil):
            walk(stmt.body)
        elif isinstance(stmt, If):
            walk(stmt.then)
            if stmt.otherwise is not None:
                walk(stmt.otherwise)

    walk(process.body)
    return index


@dataclass
class CosimResult:
    """Outcome of a co-simulation run.

    Attributes:
        functional: the interpreter's value-level result.
        timed: the engine's event-level result.
        violations: timing-constraint violations on the executed trace
            (empty for well-posed designs, by construction).
    """

    functional: InterpreterResult
    timed: SimResult
    violations: List[str]

    @property
    def outputs(self) -> Dict[str, int]:
        return self.functional.outputs

    @property
    def completion(self) -> int:
        return self.timed.completion


def cosimulate(source: Union[str, Program], inputs: Dict[str, object],
               process: Optional[str] = None,
               wait_delays: Union[int, Dict[str, int]] = 0,
               anchor_mode: AnchorMode = AnchorMode.IRREDUNDANT,
               max_steps: int = 100000) -> CosimResult:
    """Run a HardwareC design functionally and replay it in time.

    Args:
        source: HardwareC text or a parsed program.
        inputs: port stimulus for the functional pass (values or
            :class:`~repro.sim.interpreter.PortStream`).
        process: which process to simulate (default: the first).
        wait_delays: blocking cycles for ``wait`` operations (external
            events the functional semantics cannot decide).
        anchor_mode: anchor sets for the schedule driving the replay.
        max_steps: interpreter budget.

    Returns:
        A :class:`CosimResult` with matching values and timing.
    """
    from repro.hdl.lower import compile_source
    from repro.seqgraph.hierarchy import schedule_design
    from repro.sim.engine import check_constraints

    program = parse(source) if isinstance(source, str) else source
    process_name = process or program.processes[0].name

    # 1. functional pass with instrumentation
    recorder = _Recorder(index_constructs(program, process_name))
    from repro.hdl.printer import to_source

    interpreter = Interpreter(program, process_name, max_steps=max_steps,
                              observer=recorder)
    functional = interpreter.run(inputs)

    # 2. compile and schedule (the lowerer numbers constructs the same way)
    design = compile_source(to_source(program), root=process_name)
    result = schedule_design(design, anchor_mode=anchor_mode)

    # 3. map lowered operations back to construct indices
    loop_ops: Dict[str, int] = {}
    for entry in design.metadata.get("loops", []):
        if entry["process"] == process_name:
            loop_ops[entry["op"]] = entry["index"]
    cond_ops: Dict[str, int] = {}
    for entry in design.metadata.get("conds", []):
        if entry["process"] == process_name:
            cond_ops[entry["op"]] = entry["index"]

    def iterations_for(path: Tuple) -> int:
        op = path[-1]
        queue = recorder.loop_trips.get(loop_ops.get(op, -1))
        if queue:
            return queue.popleft()
        return 0  # the functional pass never reached this instance

    def branch_for(path: Tuple) -> int:
        op = path[-1]
        queue = recorder.branch_choices.get(cond_ops.get(op, -1))
        if queue:
            return queue.popleft()
        return 0

    stimulus = Stimulus(loop_iterations=iterations_for,
                        branch_choices=branch_for,
                        wait_delays=wait_delays)
    timed = execute_design(result, stimulus)
    violations = check_constraints(result, timed)
    return CosimResult(functional=functional, timed=timed,
                       violations=violations)
