"""Signal traces and ASCII waveform rendering.

A :class:`WaveformTrace` records (time, signal, value) events and can
render a text waveform in the spirit of the paper's Fig. 14 simulation
plot.  Values are arbitrary (bits, integers, strings); rendering prints
one row per signal with value changes marked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence


@dataclass(frozen=True)
class Event:
    """One recorded signal change."""

    time: int
    signal: str
    value: Any


class WaveformTrace:
    """An append-only log of signal changes with waveform rendering."""

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._signals: Dict[str, None] = {}

    def record(self, time: int, signal: str, value: Any) -> None:
        """Record that *signal* takes *value* at *time* (cycles)."""
        if time < 0:
            raise ValueError(f"negative time {time}")
        self._events.append(Event(time, signal, value))
        self._signals.setdefault(signal)

    def signals(self) -> List[str]:
        """All signal names, in first-recorded order."""
        return list(self._signals)

    def events(self, signal: Optional[str] = None) -> List[Event]:
        """Events, optionally filtered to one signal, time-ordered."""
        events = [e for e in self._events if signal is None or e.signal == signal]
        return sorted(events, key=lambda e: (e.time, self._events.index(e)))

    def value_at(self, signal: str, time: int, default: Any = None) -> Any:
        """The last value *signal* took at or before *time*."""
        value = default
        for event in self.events(signal):
            if event.time > time:
                break
            value = event.value
        return value

    def changes(self, signal: str) -> List[Event]:
        """Events where the signal's value actually changed."""
        result: List[Event] = []
        last: Any = object()
        for event in self.events(signal):
            if event.value != last:
                result.append(event)
                last = event.value
        return result

    def end_time(self) -> int:
        """The latest recorded event time (0 when empty)."""
        return max((e.time for e in self._events), default=0)

    def render(self, signals: Optional[Sequence[str]] = None,
               until: Optional[int] = None) -> str:
        """ASCII waveform: one row per signal, one column per cycle.

        Binary signals render as ``_`` (low) and ``#`` (high); other
        values print their last character, with ``.`` for undefined.
        """
        if signals is None:
            signals = self.signals()
        if until is None:
            until = self.end_time() + 1
        width = max((len(s) for s in signals), default=0)
        header = " " * (width + 2) + "".join(str(t % 10) for t in range(until))
        lines = [header]
        for signal in signals:
            cells = []
            for time in range(until):
                value = self.value_at(signal, time)
                if value is None:
                    cells.append(".")
                elif value in (0, False):
                    cells.append("_")
                elif value in (1, True):
                    cells.append("#")
                else:
                    cells.append(str(value)[-1])
            lines.append(f"{signal:>{width}}  " + "".join(cells))
        return "\n".join(lines)

    def to_vcd(self, timescale: str = "1ns",
               module: str = "relative_schedule") -> str:
        """Export as a Value Change Dump (IEEE 1364 §18) for external
        waveform viewers (GTKWave and friends).

        Binary-valued signals (0/1/bool) dump as 1-bit wires; other
        values dump as 32-bit vectors (negative values are clipped at
        0, strings are hashed to their length).
        """
        signals = self.signals()
        identifiers = {signal: _vcd_identifier(index)
                       for index, signal in enumerate(signals)}

        def is_binary(signal: str) -> bool:
            return all(event.value in (0, 1, True, False)
                       for event in self.events(signal))

        lines = [f"$timescale {timescale} $end",
                 f"$scope module {module} $end"]
        for signal in signals:
            width = 1 if is_binary(signal) else 32
            kind = "wire" if width == 1 else "reg"
            lines.append(f"$var {kind} {width} {identifiers[signal]} "
                         f"{signal.replace(' ', '_')} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")

        by_time: Dict[int, List[Event]] = {}
        for event in self._events:
            by_time.setdefault(event.time, []).append(event)
        for time in sorted(by_time):
            lines.append(f"#{time}")
            for event in by_time[time]:
                identifier = identifiers[event.signal]
                if is_binary(event.signal):
                    bit = 1 if event.value in (1, True) else 0
                    lines.append(f"{bit}{identifier}")
                else:
                    value = event.value
                    if isinstance(value, str):
                        value = len(value)
                    value = max(0, int(value))
                    lines.append(f"b{value:b} {identifier}")
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        return len(self._events)


def _vcd_identifier(index: int) -> str:
    """Short printable VCD identifier codes (! " # ... then pairs)."""
    alphabet = [chr(c) for c in range(33, 127)]
    if index < len(alphabet):
        return alphabet[index]
    first, second = divmod(index - len(alphabet), len(alphabet))
    return alphabet[first] + alphabet[second]
