"""Cycle-accurate simulation of relative schedules and their control.

Four layers:

* :mod:`repro.sim.trace` -- signal traces and ASCII waveform rendering
  (the medium of the paper's Fig. 14);
* :mod:`repro.sim.control_sim` -- cycle-by-cycle simulation of a
  synthesized control unit (counters / shift registers / enables) for
  one graph under a delay profile, verifying that every ``enable_v``
  fires exactly at the analytically computed start time ``T(v)``;
* :mod:`repro.sim.engine` -- hierarchical timed execution of a whole
  scheduled design under a stimulus (loop trip counts, branch choices,
  synchronization delays), producing per-operation start/finish events;
* :mod:`repro.sim.interpreter` -- an untimed functional interpreter of
  the HardwareC AST, used to check that synthesized designs compute the
  right values (e.g. that gcd really produces the gcd).
"""

from repro.sim.trace import Event, WaveformTrace
from repro.sim.control_sim import ControlSimResult, simulate_control
from repro.sim.engine import OpEvent, SimResult, Stimulus, execute_design
from repro.sim.cosim import CosimResult, cosimulate
from repro.sim.gantt import render_gantt
from repro.sim.interpreter import (
    ExecutionObserver,
    Interpreter,
    InterpreterResult,
    PortStream,
)

__all__ = [
    "Event",
    "WaveformTrace",
    "ControlSimResult",
    "simulate_control",
    "OpEvent",
    "SimResult",
    "Stimulus",
    "execute_design",
    "render_gantt",
    "CosimResult",
    "cosimulate",
    "ExecutionObserver",
    "Interpreter",
    "InterpreterResult",
    "PortStream",
]
