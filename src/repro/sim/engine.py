"""Hierarchical timed execution of a scheduled design.

Executes a :class:`~repro.seqgraph.hierarchy.HierarchicalSchedule`
under a :class:`Stimulus` that decides, per dynamic instance, how many
iterations each data-dependent loop runs, which branch each conditional
takes, and how long each WAIT synchronization blocks.  The engine
realizes the relative-schedule semantics: inside each graph instance,
an operation starts at ``max over a in A(v) of done(a) + sigma_a(v)``,
where anchors' completion times come from actually executing the
hierarchy below them.

The per-instance event list is the ground truth the integration tests
check timing constraints against (every min/max constraint must hold in
every executed instance, for every stimulus -- the run-time meaning of
well-posedness).

WAIT operations are the behavioral counterpart of anchors: their
blocking time comes from the environment.  A stimulus may return
:data:`~repro.core.delay.STALLED` for a wait that never unblocks; a
*watchdog* (:class:`~repro.core.watchdog.WatchdogConfig`, bounds keyed
by WAIT operation name) then converts the stall -- or any wait past its
bound -- into a detected timeout with the configured degradation policy
instead of an unbounded hang.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.delay import is_stalled
from repro.core.exceptions import WatchdogTimeoutError
from repro.core.watchdog import WatchdogConfig, WatchdogPolicy, WatchdogTimeout
from repro.seqgraph.hierarchy import HierarchicalSchedule
from repro.seqgraph.model import OpKind
from repro.sim.trace import WaveformTrace

#: A dynamic instance path: alternating operation names and iteration
#: indices, e.g. ("spin", 2, "decrement").
Path = Tuple[Union[str, int], ...]


@dataclass
class Stimulus:
    """Run-time choices for data-dependent behaviour.

    Attributes:
        loop_iterations: trip count for each loop instance.  Either a
            constant default, a dict keyed by loop operation name, or a
            callable receiving the full dynamic path.
        branch_choices: branch index for each conditional instance
            (same shapes as above).
        wait_delays: blocking cycles for each WAIT instance.
    """

    loop_iterations: Union[int, Dict[str, int], Callable[[Path], int]] = 1
    branch_choices: Union[int, Dict[str, int], Callable[[Path], int]] = 0
    wait_delays: Union[int, Dict[str, int], Callable[[Path], int]] = 0

    @staticmethod
    def _resolve(spec, op_name: str, path: Path, default: int) -> int:
        if callable(spec):
            return spec(path)
        if isinstance(spec, dict):
            return spec.get(op_name, default)
        return spec

    def iterations_for(self, op_name: str, path: Path) -> int:
        return self._resolve(self.loop_iterations, op_name, path, 1)

    def branch_for(self, op_name: str, path: Path) -> int:
        return self._resolve(self.branch_choices, op_name, path, 0)

    def wait_for(self, op_name: str, path: Path) -> int:
        return self._resolve(self.wait_delays, op_name, path, 0)


@dataclass(frozen=True)
class OpEvent:
    """One executed operation instance."""

    path: Path
    graph: str
    op: str
    start: int
    end: int


@dataclass
class SimResult:
    """Outcome of a hierarchical execution.

    Attributes:
        events: every executed operation instance, in completion order.
        completion: the root graph's completion time.
        trace: waveform of wait/branch (and watchdog) signals.
        timeouts: watchdog firings on WAIT operations, in time order.
        degraded: True when a FALLBACK watchdog forcibly terminated at
            least one wait at its bound; the events after that point
            reflect the degraded (bound-clamped) timing.
    """

    events: List[OpEvent]
    completion: int
    trace: WaveformTrace
    timeouts: List[WatchdogTimeout] = field(default_factory=list)
    degraded: bool = False

    def events_for(self, op: str) -> List[OpEvent]:
        """All dynamic instances of the named operation."""
        return [e for e in self.events if e.op == op]

    def start_of(self, op: str) -> int:
        """Start time of the (unique) instance of *op*.

        Raises:
            ValueError: when zero or several instances executed.
        """
        matches = self.events_for(op)
        if len(matches) != 1:
            raise ValueError(f"{op!r} executed {len(matches)} times; "
                             f"use events_for for per-instance times")
        return matches[0].start


def execute_design(result: HierarchicalSchedule,
                   stimulus: Optional[Stimulus] = None,
                   max_events: int = 100000, *,
                   watchdog: Optional[WatchdogConfig] = None) -> SimResult:
    """Execute a scheduled design from its root graph at cycle 0.

    Args:
        result: the scheduled design.
        stimulus: run-time choices; its ``wait_delays`` may return
            :data:`~repro.core.delay.STALLED` for a wait that never
            unblocks.
        max_events: safety bound on executed operation instances.
        watchdog: optional timeout bounds keyed by WAIT operation name
            (every dynamic instance of the operation is monitored).

    Raises:
        WatchdogTimeoutError: a monitored wait exceeded its bound under
            the ABORT policy (or RETRY exhausted its re-arm windows).
        RuntimeError: a wait stalled with no watchdog bound to detect it.
    """
    stimulus = stimulus or Stimulus()
    events: List[OpEvent] = []
    trace = WaveformTrace()
    timeouts: List[WatchdogTimeout] = []
    degraded = [False]

    def wait_timeout(vertex: str, begin: int, blocking, bound: int) -> int:
        """Drive one monitored wait past its bound; returns its end."""
        stalled = is_stalled(blocking)
        deadline = begin + bound
        window = bound
        spent = 0
        while True:
            # A late unblock landing inside the current window recovers
            # the run; timing constraints still hold for any delay.
            if not stalled and begin + blocking <= deadline:
                return begin + blocking
            timeouts.append(WatchdogTimeout(vertex, deadline, window, spent))
            trace.record(deadline, f"wdt_{vertex}", 1)
            if (watchdog.policy is WatchdogPolicy.RETRY
                    and spent < watchdog.max_rearms):
                spent += 1
                window = watchdog.rearm_window(bound, spent)
                deadline += max(1, window)
                continue
            if watchdog.policy is WatchdogPolicy.FALLBACK:
                # Forcibly terminate the wait at its expired window --
                # the degraded run continues with bounded timing.
                degraded[0] = True
                return deadline
            raise WatchdogTimeoutError(
                f"watchdog timeout: wait operation {vertex!r} still "
                f"blocked {deadline - begin} cycles after start "
                f"(bound W={bound}, re-arms spent {spent})",
                anchor=vertex, bound=bound, cycle=deadline, rearms=spent)

    def guard() -> None:
        if len(events) > max_events:
            raise RuntimeError(
                f"execution exceeded {max_events} events; check the "
                f"stimulus loop trip counts")

    def run_graph(graph_name: str, activation: int, path: Path) -> int:
        """Execute one instance of *graph_name*; returns its completion
        time (the sink's start)."""
        seq_graph = result.design.graph(graph_name)
        constraint_graph = result.constraint_graphs[graph_name]
        schedule = result.schedules[graph_name]
        done: Dict[str, int] = {constraint_graph.source: activation}
        start: Dict[str, int] = {constraint_graph.source: activation}

        for vertex in constraint_graph.forward_topological_order():
            if vertex == constraint_graph.source:
                continue
            offsets = schedule.offsets.get(vertex, {})
            terms = [done[a] + sigma for a, sigma in offsets.items()]
            begin = max(terms) if terms else activation
            finish = _execute_vertex(seq_graph, vertex, begin, path)
            start[vertex] = begin
            done[vertex] = finish
            events.append(OpEvent(path, graph_name, vertex, begin, finish))
            guard()
        return start[constraint_graph.sink]

    def _execute_vertex(seq_graph, vertex: str, begin: int, path: Path) -> int:
        op = seq_graph.operation(vertex)
        if op.kind is OpKind.OPERATION or op.kind is OpKind.SINK:
            return begin + op.delay
        if op.kind is OpKind.WAIT:
            blocking = stimulus.wait_for(vertex, path + (vertex,))
            trace.record(begin, f"wait_{vertex}", 1)
            bound = watchdog.bound_for(vertex) if watchdog is not None else None
            if bound is not None and (is_stalled(blocking)
                                      or blocking > bound):
                finish = wait_timeout(vertex, begin, blocking, bound)
            elif is_stalled(blocking):
                raise RuntimeError(
                    f"wait operation {vertex!r} stalled with no watchdog "
                    f"bound; the design would hang")
            else:
                finish = begin + blocking
            trace.record(finish, f"wait_{vertex}", 0)
            return finish
        if op.kind is OpKind.LOOP:
            if op.iterations is not None:
                trips = op.iterations
            else:
                trips = stimulus.iterations_for(vertex, path + (vertex,))
            clock = begin
            for index in range(trips):
                clock = run_graph(op.body, clock, path + (vertex, index))
            return clock
        if op.kind is OpKind.CALL:
            return run_graph(op.body, begin, path + (vertex,))
        if op.kind is OpKind.COND:
            choice = stimulus.branch_for(vertex, path + (vertex,))
            if not 0 <= choice < len(op.branches):
                raise ValueError(
                    f"branch choice {choice} out of range for {vertex!r} "
                    f"({len(op.branches)} branches)")
            trace.record(begin, f"branch_{vertex}", choice)
            return run_graph(op.branches[choice], begin, path + (vertex, choice))
        raise ValueError(f"cannot execute operation kind {op.kind!r}")

    completion = run_graph(result.design.root, 0, ())
    return SimResult(events, completion, trace,
                     timeouts=timeouts, degraded=degraded[0])


def check_constraints(result: HierarchicalSchedule, sim: SimResult) -> List[str]:
    """Verify every timing constraint in every executed graph instance.

    Returns a list of human-readable violation descriptions (empty when
    the execution honoured all constraints -- the run-time counterpart
    of well-posedness).
    """
    violations: List[str] = []
    by_instance: Dict[Tuple[Path, str], Dict[str, OpEvent]] = {}
    for event in sim.events:
        by_instance.setdefault((event.path, event.graph), {})[event.op] = event

    for (path, graph_name), ops in by_instance.items():
        seq_graph = result.design.graph(graph_name)
        for constraint in seq_graph.constraints:
            lhs = ops.get(constraint.from_op)
            rhs = ops.get(constraint.to_op)
            if lhs is None or rhs is None:
                continue
            separation = rhs.start - lhs.start
            kind = type(constraint).__name__
            if kind == "MinTimingConstraint" and separation < constraint.cycles:
                violations.append(
                    f"{graph_name}{list(path)}: min {constraint} violated "
                    f"(separation {separation})")
            if kind == "MaxTimingConstraint" and separation > constraint.cycles:
                violations.append(
                    f"{graph_name}{list(path)}: max {constraint} violated "
                    f"(separation {separation})")
    return violations
