"""Cycle-accurate simulation of a synthesized control unit.

Simulates one scheduled graph under a concrete anchor-delay profile:
every cycle, per-anchor elapsed counters advance (counters or shift
registers -- the semantics coincide, both measure cycles since the
anchor's ``done``), enable conditions are evaluated, and operations
start the first cycle their enable asserts.  Anchors' ``done`` events
follow their simulated start plus the profile delay, closing the loop.

The central check -- used by the integration tests and the Fig. 14
bench -- is that the observed ``enable_v`` assertion cycle equals the
analytical start time ``T(v)`` from the relative schedule for *every*
operation and *every* profile.

Beyond the paper's idealized environment, the simulator models a
*hostile* one (see :mod:`repro.resilience`):

* a profile value of :data:`~repro.core.delay.STALLED` (or a
  *completion* override returning None) models an anchor whose ``done``
  never arrives;
* a *watchdog* (:class:`~repro.core.watchdog.WatchdogConfig`) arms a
  timeout ``W(a)`` when a monitored anchor starts; a stalled or overdue
  anchor then yields a detected timeout event instead of a hang, with
  the configured policy (abort / retry-with-backoff / fall back to the
  static worst-case schedule);
* *spurious* ``done`` pulses for anchors that have not started are
  rejected and counted -- the done latch is only armed after start --
  while a pulse arriving mid-execution is indistinguishable from an
  early completion and is absorbed as one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.control.netlist import ControlUnit
from repro.core.delay import is_stalled, is_unbounded
from repro.core.exceptions import WatchdogTimeoutError
from repro.core.schedule import RelativeSchedule
from repro.core.watchdog import WatchdogConfig, WatchdogPolicy, WatchdogTimeout
from repro.sim.trace import WaveformTrace

#: Optional completion-signal override: ``(vertex, start, nominal_done)``
#: -> the cycle ``done`` actually arrives, or None for "never" (the
#: nominal done is None when the profile already says STALLED).  Used by
#: the fault-injection harness to model late/early/dropped signals.
CompletionFn = Callable[[str, int, Optional[int]], Optional[int]]


@dataclass
class ControlSimResult:
    """Outcome of a control simulation.

    Attributes:
        start_times: observed start cycle of every operation.
        done_times: completion cycle of every operation (stalled
            operations are absent).
        trace: waveform of done/enable signals (and anchor counters).
        cycles: total simulated cycles.
        timeouts: watchdog firings, in cycle order (empty when no
            watchdog was configured or none fired).
        degraded: True when the FALLBACK policy replaced the relative
            execution with the static worst-case schedule; start/done
            times then come from the bounded baseline.
        stalled: anchors that started but whose ``done`` never arrived.
        spurious_rejections: done pulses rejected because their anchor
            had not started.
        rearms: per-anchor count of RETRY re-arm windows spent.
    """

    start_times: Dict[str, int]
    done_times: Dict[str, int]
    trace: WaveformTrace
    cycles: int
    timeouts: List[WatchdogTimeout] = field(default_factory=list)
    degraded: bool = False
    stalled: List[str] = field(default_factory=list)
    spurious_rejections: int = 0
    rearms: Dict[str, int] = field(default_factory=dict)

    def matches_schedule(self, schedule: RelativeSchedule,
                         profile: Mapping[str, int]) -> bool:
        """True when every observed start equals the analytical T(v)."""
        expected = schedule.start_times(profile)
        return all(self.start_times.get(vertex) == time
                   for vertex, time in expected.items())


def simulate_control(unit: ControlUnit, schedule: RelativeSchedule,
                     profile: Optional[Mapping[str, int]] = None,
                     max_cycles: int = 100000, *,
                     watchdog: Optional[WatchdogConfig] = None,
                     completion: Optional[CompletionFn] = None,
                     spurious: Optional[Mapping[str, int]] = None
                     ) -> ControlSimResult:
    """Run the control unit cycle by cycle under *profile*.

    Args:
        unit: a counter- or shift-register-based control unit whose
            enables reference the schedule's anchor sets.
        schedule: the relative schedule the unit was synthesized from.
        profile: execution delays for the unbounded anchors (anchors
            missing from the profile run for 0 cycles; bounded
            operations use their static delay).  A value of
            :data:`~repro.core.delay.STALLED` models a completion
            signal that never arrives.
        max_cycles: safety bound.
        watchdog: optional per-anchor timeout bounds and degradation
            policy; defaults to the bounds attached to the schedule by
            ``schedule_graph(..., watchdog=...)`` (with the ABORT
            policy) when present.
        completion: optional completion-signal override (fault
            injection); see :data:`CompletionFn`.
        spurious: anchor -> cycle of an injected spurious ``done``
            pulse.  Pulses for anchors that have not started are
            rejected and counted; pulses during execution complete the
            anchor early.

    Returns:
        A :class:`ControlSimResult` with observed start/done times and a
        waveform trace containing ``done_<anchor>``, ``enable_<op>``,
        per-anchor elapsed-counter signals and ``wdt_<anchor>`` watchdog
        firings.

    Raises:
        WatchdogTimeoutError: a monitored anchor exceeded its bound and
            the policy is ABORT (or RETRY exhausted its re-arms).
        RuntimeError: the sink has not started within *max_cycles*
            (a malformed unit or schedule, or a stall with no watchdog).
    """
    profile = dict(profile or {})
    graph = schedule.graph
    trace = WaveformTrace()
    if watchdog is None and schedule.watchdog:
        watchdog = WatchdogConfig(bounds=schedule.watchdog)
    spurious = dict(spurious or {})

    start_times: Dict[str, int] = {}
    done_times: Dict[str, int] = {}
    timeouts: List[WatchdogTimeout] = []
    rearms: Dict[str, int] = {}
    deadlines: Dict[str, int] = {}
    spurious_rejections = 0

    def resolve_done(vertex: str, start: int) -> Optional[int]:
        """The cycle *vertex*'s done arrives (possibly future), or None."""
        delay = graph.delta(vertex)
        if vertex == graph.source:
            observed = profile.get(vertex, 0)
            nominal = None if is_stalled(observed) else start + observed
        elif is_unbounded(delay):
            observed = profile.get(vertex, 0)
            nominal = None if is_stalled(observed) else start + observed
        else:
            nominal = start + delay
        if completion is not None:
            actual = completion(vertex, start, nominal)
            if actual is None:
                return None
            return max(start, actual)
        return nominal

    def begin(vertex: str, cycle: int) -> None:
        """Record a start, schedule its done, arm its watchdog."""
        start_times[vertex] = cycle
        done = resolve_done(vertex, cycle)
        if done is not None:
            done_times[vertex] = done
            if vertex in graph.anchors:
                trace.record(done, f"done_{vertex}", 1)
        if watchdog is not None and vertex in graph.anchors:
            bound = watchdog.bound_for(vertex)
            if bound is not None:
                deadlines[vertex] = cycle + bound

    def check_watchdog(cycle: int) -> bool:
        """Fire overdue watchdogs; True requests the FALLBACK path."""
        for anchor in list(deadlines):
            done = done_times.get(anchor)
            if done is not None and done <= cycle:
                del deadlines[anchor]  # completed in time (or recovered)
                continue
            if cycle < deadlines[anchor]:
                continue
            base = watchdog.bound_for(anchor)
            spent = rearms.get(anchor, 0)
            window = watchdog.rearm_window(base, spent)
            timeouts.append(WatchdogTimeout(anchor, cycle, window, spent))
            trace.record(cycle, f"wdt_{anchor}", 1)
            if (watchdog.policy is WatchdogPolicy.RETRY
                    and spent < watchdog.max_rearms):
                rearms[anchor] = spent + 1
                next_window = watchdog.rearm_window(base, spent + 1)
                deadlines[anchor] = cycle + max(1, next_window)
                continue
            if watchdog.policy is WatchdogPolicy.FALLBACK:
                return True
            raise WatchdogTimeoutError(
                f"watchdog timeout: anchor {anchor!r} still running "
                f"{cycle - start_times[anchor]} cycles after start "
                f"(bound W={base}, re-arms spent {spent})",
                anchor=anchor, bound=base, cycle=cycle, rearms=spent)
        return False

    def degrade(cycle: int) -> ControlSimResult:
        """FALLBACK: the static worst-case schedule, budgeted at W."""
        from repro.baselines.worst_case import worst_case_schedule

        budget = watchdog.budget()
        outcome = worst_case_schedule(graph, budget)
        static_done = {}
        for vertex in graph.vertex_names():
            delay = graph.delta(vertex)
            static_delay = budget if is_unbounded(delay) else delay
            static_done[vertex] = outcome.start_times[vertex] + static_delay
        return ControlSimResult(
            start_times=dict(outcome.start_times), done_times=static_done,
            trace=trace, cycles=cycle + 1, timeouts=timeouts, degraded=True,
            stalled=_stalled(start_times, done_times),
            spurious_rejections=spurious_rejections, rearms=rearms)

    # The source activates the graph at cycle 0; its "execution delay"
    # delta(v0) models the activation handshake and is 0 at run time
    # unless the profile says otherwise.
    begin(graph.source, 0)

    pending = [v for v in graph.forward_topological_order() if v != graph.source]
    for cycle in range(max_cycles + 1):
        # Injected done pulses land before the counters are sampled.
        for anchor, pulse_cycle in spurious.items():
            if pulse_cycle != cycle:
                continue
            if anchor not in start_times:
                # The done latch is only armed after start: a pulse for
                # an idle anchor is detectably bogus and dropped.
                spurious_rejections += 1
                trace.record(cycle, f"spur_{anchor}", 0)
            elif done_times.get(anchor) is None or done_times[anchor] > cycle:
                done_times[anchor] = cycle  # absorbed as early completion
                trace.record(cycle, f"spur_{anchor}", 1)
                trace.record(cycle, f"done_{anchor}", 1)

        def elapsed_now() -> Dict[str, Optional[int]]:
            # elapsed(a) = cycles since anchor a completed, None if running.
            snapshot: Dict[str, Optional[int]] = {}
            for anchor in graph.anchors:
                done = done_times.get(anchor)
                snapshot[anchor] = (None if done is None or cycle < done
                                    else cycle - done)
            return snapshot

        # Zero-delay anchors completing *this* cycle can enable further
        # operations in the same cycle: iterate to an intra-cycle
        # fixpoint, re-sampling the counters after each start.
        progress = True
        while progress and pending:
            progress = False
            elapsed = elapsed_now()
            still_pending = []
            for vertex in pending:
                if unit.enables[vertex].evaluate(elapsed):
                    trace.record(cycle, f"enable_{vertex}", 1)
                    begin(vertex, cycle)
                    progress = True
                else:
                    still_pending.append(vertex)
            pending = still_pending
        for anchor, value in elapsed_now().items():
            if value is not None:
                trace.record(cycle, f"cnt_{anchor}", value)
        if watchdog is not None and deadlines and check_watchdog(cycle):
            return degrade(cycle)
        if not pending:
            return ControlSimResult(
                start_times, done_times, trace, cycle + 1,
                timeouts=timeouts,
                stalled=_stalled(start_times, done_times),
                spurious_rejections=spurious_rejections, rearms=rearms)
    raise RuntimeError(
        f"control simulation did not finish within {max_cycles} cycles; "
        f"pending operations: {pending}")


def _stalled(start_times: Dict[str, int],
             done_times: Dict[str, int]) -> List[str]:
    return [v for v in start_times if v not in done_times]
