"""Cycle-accurate simulation of a synthesized control unit.

Simulates one scheduled graph under a concrete anchor-delay profile:
every cycle, per-anchor elapsed counters advance (counters or shift
registers -- the semantics coincide, both measure cycles since the
anchor's ``done``), enable conditions are evaluated, and operations
start the first cycle their enable asserts.  Anchors' ``done`` events
follow their simulated start plus the profile delay, closing the loop.

The central check -- used by the integration tests and the Fig. 14
bench -- is that the observed ``enable_v`` assertion cycle equals the
analytical start time ``T(v)`` from the relative schedule for *every*
operation and *every* profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.control.netlist import ControlUnit
from repro.core.delay import is_unbounded
from repro.core.schedule import RelativeSchedule
from repro.sim.trace import WaveformTrace


@dataclass
class ControlSimResult:
    """Outcome of a control simulation.

    Attributes:
        start_times: observed start cycle of every operation.
        done_times: completion cycle of every operation.
        trace: waveform of done/enable signals (and anchor counters).
        cycles: total simulated cycles.
    """

    start_times: Dict[str, int]
    done_times: Dict[str, int]
    trace: WaveformTrace
    cycles: int

    def matches_schedule(self, schedule: RelativeSchedule,
                         profile: Mapping[str, int]) -> bool:
        """True when every observed start equals the analytical T(v)."""
        expected = schedule.start_times(profile)
        return all(self.start_times.get(vertex) == time
                   for vertex, time in expected.items())


def simulate_control(unit: ControlUnit, schedule: RelativeSchedule,
                     profile: Optional[Mapping[str, int]] = None,
                     max_cycles: int = 100000) -> ControlSimResult:
    """Run the control unit cycle by cycle under *profile*.

    Args:
        unit: a counter- or shift-register-based control unit whose
            enables reference the schedule's anchor sets.
        schedule: the relative schedule the unit was synthesized from.
        profile: execution delays for the unbounded anchors (anchors
            missing from the profile run for 0 cycles; bounded
            operations use their static delay).
        max_cycles: safety bound.

    Returns:
        A :class:`ControlSimResult` with observed start/done times and a
        waveform trace containing ``done_<anchor>``, ``enable_<op>`` and
        per-anchor elapsed-counter signals.

    Raises:
        RuntimeError: if the sink has not started within *max_cycles*
            (a malformed unit or schedule).
    """
    profile = dict(profile or {})
    graph = schedule.graph
    trace = WaveformTrace()

    start_times: Dict[str, int] = {}
    done_times: Dict[str, int] = {}

    def delay_of(vertex: str) -> int:
        delay = graph.delta(vertex)
        if is_unbounded(delay):
            return profile.get(vertex, 0)
        return delay

    # The source activates the graph at cycle 0; its "execution delay"
    # delta(v0) models the activation handshake and is 0 at run time
    # unless the profile says otherwise.
    start_times[graph.source] = 0
    done_times[graph.source] = profile.get(graph.source, 0)

    pending = [v for v in graph.forward_topological_order() if v != graph.source]
    for cycle in range(max_cycles + 1):

        def elapsed_now() -> Dict[str, Optional[int]]:
            # elapsed(a) = cycles since anchor a completed, None if running.
            snapshot: Dict[str, Optional[int]] = {}
            for anchor in graph.anchors:
                done = done_times.get(anchor)
                snapshot[anchor] = (None if done is None or cycle < done
                                    else cycle - done)
            return snapshot

        # Zero-delay anchors completing *this* cycle can enable further
        # operations in the same cycle: iterate to an intra-cycle
        # fixpoint, re-sampling the counters after each start.
        progress = True
        while progress and pending:
            progress = False
            elapsed = elapsed_now()
            still_pending = []
            for vertex in pending:
                if unit.enables[vertex].evaluate(elapsed):
                    trace.record(cycle, f"enable_{vertex}", 1)
                    start_times[vertex] = cycle
                    done_times[vertex] = cycle + delay_of(vertex)
                    if vertex in graph.anchors:
                        trace.record(done_times[vertex], f"done_{vertex}", 1)
                    progress = True
                else:
                    still_pending.append(vertex)
            pending = still_pending
        for anchor, value in elapsed_now().items():
            if value is not None:
                trace.record(cycle, f"cnt_{anchor}", value)
        if not pending:
            return ControlSimResult(start_times, done_times, trace, cycle + 1)
    raise RuntimeError(
        f"control simulation did not finish within {max_cycles} cycles; "
        f"pending operations: {pending}")
