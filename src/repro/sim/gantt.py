"""ASCII Gantt rendering of hierarchical execution results.

Turns a :class:`~repro.sim.engine.SimResult` into a per-operation
timeline: one row per executed operation instance, a bar spanning its
start to end cycle, markers for zero-duration events.  Useful for
eyeballing how a relative schedule unrolls under a concrete stimulus
(loop iterations appear as repeated, shifted bars).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.engine import OpEvent, SimResult


def _label(event: OpEvent) -> str:
    if not event.path:
        return event.op
    pieces = [str(piece) for piece in event.path]
    return "/".join(pieces + [event.op])


def render_gantt(sim: SimResult,
                 include: Optional[Sequence[str]] = None,
                 hide_poles: bool = True,
                 width: Optional[int] = None) -> str:
    """Render the execution as an ASCII Gantt chart.

    Args:
        sim: a hierarchical execution result.
        include: restrict to these operation names (any instance).
        hide_poles: drop source/sink rows (on by default -- they carry
            no duration).
        width: clip the time axis at this many cycles.

    Bars: ``=`` for executing cycles, ``|`` for zero-duration events.
    """
    events: List[OpEvent] = []
    for event in sim.events:
        if hide_poles and event.op in ("source", "sink"):
            continue
        if include is not None and event.op not in include:
            continue
        events.append(event)
    events.sort(key=lambda e: (e.start, e.end, _label(e)))
    if not events:
        return "(no events)"

    horizon = max(e.end for e in events) + 1
    if width is not None:
        horizon = min(horizon, width)
    label_width = max(len(_label(e)) for e in events)

    ruler = " " * (label_width + 2) + "".join(
        str(t % 10) for t in range(horizon))
    lines = [ruler]
    for event in events:
        row = []
        for t in range(horizon):
            if event.start == event.end and t == event.start:
                row.append("|")
            elif event.start <= t < event.end:
                row.append("=")
            else:
                row.append(".")
        lines.append(f"{_label(event):>{label_width}}  " + "".join(row))
    return "\n".join(lines)
