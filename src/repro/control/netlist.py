"""Structural control-netlist components and cost accounting.

The netlist is intentionally small: counters, shift registers,
comparators, and AND gates are the only component kinds the two control
schemes of Section VI need.  Costs are reported as register bits,
comparator bits, and gate inputs so the Table IV-style comparisons
(full vs irredundant anchor sets; counter vs shift register) have a
concrete, implementation-flavoured currency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


def bits_for(value: int) -> int:
    """Register width needed to count from 0 to *value* inclusive."""
    if value < 0:
        raise ValueError(f"cannot size a register for negative value {value}")
    return max(1, math.ceil(math.log2(value + 1)))


@dataclass(frozen=True)
class Counter:
    """A free-running counter cleared and started by ``done_anchor``."""

    anchor: str
    width: int

    @property
    def name(self) -> str:
        return f"cnt_{self.anchor}"


@dataclass(frozen=True)
class ShiftRegister:
    """A shift register fed by ``done_anchor``; tap *i* asserts when at
    least *i* cycles have elapsed since the anchor completed."""

    anchor: str
    length: int

    @property
    def name(self) -> str:
        return f"sr_{self.anchor}"


@dataclass(frozen=True)
class Comparator:
    """``counter(anchor) >= threshold``, *width* bits wide."""

    anchor: str
    threshold: int
    width: int

    @property
    def name(self) -> str:
        return f"cmp_{self.anchor}_ge{self.threshold}"


@dataclass(frozen=True)
class AndGate:
    """Conjunction of the named input signals."""

    output: str
    inputs: Tuple[str, ...]


@dataclass(frozen=True)
class EnableFunction:
    """The activation condition of one operation.

    ``terms`` maps each anchor in the operation's anchor set to the
    offset that must have elapsed since that anchor's completion:
    ``enable = AND over (a, sigma) of elapsed(a) >= sigma``.
    """

    operation: str
    terms: Tuple[Tuple[str, int], ...]  # (anchor, offset), sorted

    def evaluate(self, elapsed: Dict[str, Optional[int]]) -> bool:
        """True when every anchor has completed and its offset elapsed.

        *elapsed* maps anchors to cycles since completion (None while
        the anchor is still running).
        """
        for anchor, offset in self.terms:
            since = elapsed.get(anchor)
            if since is None or since < offset:
                return False
        return True


@dataclass(frozen=True)
class ControlCost:
    """Cost summary of a control unit.

    Attributes:
        registers: total register bits (counter widths or shift stages).
        comparator_bits: total comparator width (counter scheme only).
        gate_inputs: total AND-gate fan-in across enable functions.
    """

    registers: int
    comparator_bits: int
    gate_inputs: int

    def total(self, register_weight: float = 2.0,
              comparator_weight: float = 1.5,
              gate_weight: float = 1.0) -> float:
        """A scalar area estimate with configurable technology weights
        (registers are typically the most expensive element)."""
        return (register_weight * self.registers
                + comparator_weight * self.comparator_bits
                + gate_weight * self.gate_inputs)

    def __add__(self, other: "ControlCost") -> "ControlCost":
        return ControlCost(self.registers + other.registers,
                           self.comparator_bits + other.comparator_bits,
                           self.gate_inputs + other.gate_inputs)


@dataclass
class ControlUnit:
    """A synthesized control unit for one scheduled graph.

    Attributes:
        style: "counter" or "shift-register".
        counters / shift_registers: per-anchor sequencing state.
        comparators: offset comparisons (counter style only).
        and_gates: conjunction gates combining per-anchor conditions.
        enables: per-operation activation conditions, the behavioural
            contract verified by the control simulator.
    """

    style: str
    counters: List[Counter] = field(default_factory=list)
    shift_registers: List[ShiftRegister] = field(default_factory=list)
    comparators: List[Comparator] = field(default_factory=list)
    and_gates: List[AndGate] = field(default_factory=list)
    enables: Dict[str, EnableFunction] = field(default_factory=dict)

    def cost(self) -> ControlCost:
        """Aggregate register/comparator/gate cost of this unit."""
        registers = sum(c.width for c in self.counters) + \
            sum(s.length for s in self.shift_registers)
        comparator_bits = sum(c.width for c in self.comparators)
        gate_inputs = sum(len(g.inputs) for g in self.and_gates)
        return ControlCost(registers, comparator_bits, gate_inputs)

    def enable(self, operation: str) -> EnableFunction:
        return self.enables[operation]

    def __repr__(self) -> str:
        cost = self.cost()
        return (f"ControlUnit(style={self.style!r}, regs={cost.registers}, "
                f"cmp_bits={cost.comparator_bits}, gate_inputs={cost.gate_inputs})")
