"""Control generation from relative schedules (Section VI).

The start time of every operation is a set of offsets from anchor
completions, so the control logic must count cycles *relative to* each
anchor's ``done`` signal and assert ``enable_v`` when every offset has
elapsed.  Two implementation styles from the paper:

* **counter-based** (:mod:`repro.control.counter`) -- one counter per
  anchor plus a comparator per (operation, anchor) offset;
* **shift-register-based** (:mod:`repro.control.shiftreg`) -- one shift
  register of length ``sigma_a^max`` per anchor, with enables taken
  from taps: more registers, no comparators.

Both produce a :class:`~repro.control.netlist.ControlUnit` carrying a
structural netlist and a cost summary, which the Table IV benchmarks and
the redundancy-ablation experiments consume.  The cost trade-off --
comparator logic versus register count -- is exactly the one the paper
discusses, and removing redundant anchors shrinks both (fewer
synchronizations, smaller ``sigma_a^max``).
"""

from repro.control.netlist import (
    AndGate,
    Comparator,
    ControlCost,
    ControlUnit,
    Counter,
    EnableFunction,
    ShiftRegister,
)
from repro.control.counter import synthesize_counter_control
from repro.control.shiftreg import synthesize_shift_register_control
from repro.control.fsm import AdaptiveController, synthesize_adaptive_control

__all__ = [
    "AndGate",
    "Comparator",
    "ControlCost",
    "ControlUnit",
    "Counter",
    "EnableFunction",
    "ShiftRegister",
    "synthesize_counter_control",
    "synthesize_shift_register_control",
    "AdaptiveController",
    "synthesize_adaptive_control",
]
