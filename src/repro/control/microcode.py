"""Microprogrammed control for bounded graphs (Section VI's simple case).

"In the simple case where the hardware model does not contain any
unbounded delay operations, the task of control generation reduces to
the traditional control synthesis approaches of microprogrammed
controllers and FSM's."  This module implements that case: when the
only anchor is the source, every start time is a fixed cycle number,
and the control is a micro-ROM indexed by a single cycle counter --
one horizontal microword per cycle, one enable bit per operation.

Cost model: ``depth x width`` ROM bits plus the cycle counter, which
the comparison helpers put side by side with the counter/shift-register
schemes (for bounded graphs the ROM usually wins on combinational
logic and loses on storage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.control.netlist import bits_for
from repro.core.schedule import RelativeSchedule


class UnboundedScheduleError(ValueError):
    """Microcode needs fixed start times: the schedule has anchors other
    than the source, so relative control (counters / shift registers)
    is required instead."""


@dataclass
class Microcode:
    """A horizontal micro-ROM for one bounded graph.

    Attributes:
        operations: column order of the enable bits.
        words: one tuple of bits per cycle; ``words[c][i]`` enables
            ``operations[i]`` at cycle ``c``.
    """

    operations: List[str]
    words: List[Tuple[int, ...]]

    @property
    def depth(self) -> int:
        return len(self.words)

    @property
    def width(self) -> int:
        return len(self.operations)

    def rom_bits(self) -> int:
        return self.depth * self.width

    def counter_bits(self) -> int:
        return bits_for(max(0, self.depth - 1))

    def enable_cycle(self, operation: str) -> int:
        """The cycle whose microword enables *operation*."""
        column = self.operations.index(operation)
        for cycle, word in enumerate(self.words):
            if word[column]:
                return cycle
        raise KeyError(f"{operation!r} never enabled")

    def format(self) -> str:
        """Render the ROM contents."""
        header = "cycle  " + " ".join(f"{op:>10}" for op in self.operations)
        lines = [header]
        for cycle, word in enumerate(self.words):
            cells = " ".join(f"{bit:>10}" for bit in word)
            lines.append(f"{cycle:>5}  {cells}")
        return "\n".join(lines)


def synthesize_microcode(schedule: RelativeSchedule) -> Microcode:
    """Generate the micro-ROM for a bounded schedule.

    Raises:
        UnboundedScheduleError: when any operation synchronizes on an
            anchor other than the source -- fixed cycle numbers do not
            exist and relative control is needed (the paper's general
            case).
    """
    graph = schedule.graph
    source = graph.source
    if any(anchor != source for anchor in graph.anchors):
        extra = [a for a in graph.anchors if a != source]
        raise UnboundedScheduleError(
            f"graph has unbounded anchors {extra}; microcode requires "
            f"fixed start times (use counter or shift-register control)")

    start_times = schedule.start_times({})
    operations = [v for v in graph.forward_topological_order()
                  if v != source]
    depth = max(start_times.values()) + 1
    words: List[List[int]] = [[0] * len(operations) for _ in range(depth)]
    for column, operation in enumerate(operations):
        words[start_times[operation]][column] = 1
    return Microcode(operations=operations,
                     words=[tuple(word) for word in words])


def compare_with_relative_control(schedule: RelativeSchedule) -> Dict[str, float]:
    """Storage comparison: micro-ROM bits vs the relative schemes'
    register bits, for a bounded schedule."""
    from repro.control.counter import synthesize_counter_control
    from repro.control.shiftreg import synthesize_shift_register_control

    microcode = synthesize_microcode(schedule)
    counter = synthesize_counter_control(schedule).cost()
    shift = synthesize_shift_register_control(schedule).cost()
    return {
        "microcode_rom_bits": float(microcode.rom_bits()),
        "microcode_counter_bits": float(microcode.counter_bits()),
        "counter_registers": float(counter.registers),
        "counter_comparator_bits": float(counter.comparator_bits),
        "shift_registers": float(shift.registers),
    }
