"""Counter-based control generation (Section VI, Fig. 12(a)).

One counter per anchor starts counting on the anchor's completion; the
enable of operation ``v`` is the conjunction, over the anchors in its
anchor set, of ``Counter_a >= sigma_a(v)``.  Straightforward but
comparator-heavy: every (operation, anchor) pair with a non-trivial
offset needs a comparison as wide as the counter.
"""

from __future__ import annotations

from typing import Dict, List

from repro.control.netlist import (
    AndGate,
    Comparator,
    ControlUnit,
    Counter,
    EnableFunction,
    bits_for,
)
from repro.core.schedule import RelativeSchedule


def synthesize_counter_control(schedule: RelativeSchedule) -> ControlUnit:
    """Generate the counter-based control unit for *schedule*.

    The anchor sets used are exactly those the schedule was computed
    with (full, relevant, or irredundant), so scheduling with
    irredundant anchors automatically shrinks the control -- the saving
    Section VI highlights.

    Operations with an empty anchor set (the source) get a trivially
    true enable.
    """
    unit = ControlUnit(style="counter")
    max_offsets = {anchor: schedule.max_offset(anchor)
                   for anchor in schedule.graph.anchors}

    counter_widths: Dict[str, int] = {}
    for anchor, maximum in sorted(max_offsets.items()):
        if _anchor_used(schedule, anchor):
            width = bits_for(maximum)
            counter_widths[anchor] = width
            unit.counters.append(Counter(anchor, width))

    seen_comparators = set()
    for vertex in schedule.graph.forward_topological_order():
        offsets = schedule.offsets.get(vertex, {})
        terms = tuple(sorted(offsets.items()))
        unit.enables[vertex] = EnableFunction(vertex, terms)
        inputs: List[str] = []
        for anchor, offset in terms:
            comparator = Comparator(anchor, offset, counter_widths[anchor])
            if (anchor, offset) not in seen_comparators:
                seen_comparators.add((anchor, offset))
                unit.comparators.append(comparator)
            inputs.append(comparator.name)
        if len(inputs) > 1:
            unit.and_gates.append(AndGate(f"enable_{vertex}", tuple(inputs)))
    return unit


def _anchor_used(schedule: RelativeSchedule, anchor: str) -> bool:
    """An anchor needs sequencing state only if some operation holds an
    offset against it."""
    return any(anchor in offsets for offsets in schedule.offsets.values())
