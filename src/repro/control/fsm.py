"""Adaptive control: a modular interconnection of per-graph controllers.

The paper's control synthesis (Section VI, reference [25]) produces one
controller per sequencing graph; controllers communicate through
start/done handshakes.  A compound operation (loop, call, conditional)
raises ``start`` toward its body controller when its enable fires and
receives ``done`` when the body's sink activates; data-dependent loops
re-start their body until the exit condition holds, which is exactly
what makes their delay unbounded.

This module builds the controller hierarchy for a scheduled design; the
cycle-accurate semantics live in :mod:`repro.sim.control_sim` and
:mod:`repro.sim.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.control.counter import synthesize_counter_control
from repro.control.netlist import ControlCost, ControlUnit
from repro.control.shiftreg import synthesize_shift_register_control
from repro.seqgraph.hierarchy import HierarchicalSchedule
from repro.seqgraph.model import OpKind


@dataclass
class AdaptiveController:
    """The controller of one sequencing graph.

    Attributes:
        graph_name: the controlled graph.
        unit: the synthesized enable-generation netlist.
        children: compound operation name -> referenced graph names
            (one for LOOP/CALL, one per branch for COND).
        loop_ops / call_ops / cond_ops: compound operations by kind,
            for the handshake wiring.
    """

    graph_name: str
    unit: ControlUnit
    children: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    loop_ops: Tuple[str, ...] = ()
    call_ops: Tuple[str, ...] = ()
    cond_ops: Tuple[str, ...] = ()

    def handshake_count(self) -> int:
        """Start/done handshake pairs this controller drives."""
        return len(self.children)


def synthesize_adaptive_control(result: HierarchicalSchedule,
                                style: str = "shift-register"
                                ) -> Dict[str, AdaptiveController]:
    """Build the adaptive-control hierarchy for a scheduled design.

    Args:
        result: a bottom-up hierarchical schedule.
        style: "counter" or "shift-register" for the per-graph units.

    Returns:
        graph name -> controller, for every graph in the design.
    """
    if style == "counter":
        synthesize = synthesize_counter_control
    elif style == "shift-register":
        synthesize = synthesize_shift_register_control
    else:
        raise ValueError(f"unknown control style {style!r}")

    controllers: Dict[str, AdaptiveController] = {}
    for graph_name in result.design.hierarchy_order():
        seq_graph = result.design.graph(graph_name)
        unit = synthesize(result.schedules[graph_name])
        children: Dict[str, Tuple[str, ...]] = {}
        loops: List[str] = []
        calls: List[str] = []
        conds: List[str] = []
        for op in seq_graph.compound_operations():
            children[op.name] = op.referenced_graphs()
            if op.kind is OpKind.LOOP:
                loops.append(op.name)
            elif op.kind is OpKind.CALL:
                calls.append(op.name)
            elif op.kind is OpKind.COND:
                conds.append(op.name)
        controllers[graph_name] = AdaptiveController(
            graph_name=graph_name, unit=unit, children=children,
            loop_ops=tuple(loops), call_ops=tuple(calls), cond_ops=tuple(conds))
    return controllers


def total_control_cost(controllers: Dict[str, AdaptiveController]) -> ControlCost:
    """Aggregate cost over the controller hierarchy (Table IV's driver)."""
    total = ControlCost(0, 0, 0)
    for controller in controllers.values():
        total = total + controller.unit.cost()
    return total
