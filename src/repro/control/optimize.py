"""Cost-driven control optimization: mixed counter / shift-register.

Section VI closes by noting the register-versus-comparator trade-off
"rests both on the cost parameters of the logic elements and on the
resulting schedule".  This module makes that decision automatically,
*per anchor*: each anchor's sequencing state is implemented by
whichever structure is cheaper for its offset profile under the given
technology weights --

* shift register: ``sigma_a^max`` register bits, zero comparators;
* counter: ``ceil(log2(sigma_a^max + 1))`` register bits plus one
  comparator per distinct offset.

Small offset ranges favour shift registers, large sparse ones counters;
a mixed unit dominates both pure styles (the optimizer can always
reproduce either), which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.control.netlist import (
    AndGate,
    Comparator,
    ControlUnit,
    Counter,
    EnableFunction,
    ShiftRegister,
    bits_for,
)
from repro.core.schedule import RelativeSchedule


@dataclass(frozen=True)
class CostWeights:
    """Technology weights for the area estimate (see ControlCost.total)."""

    register: float = 2.0
    comparator: float = 1.5
    gate: float = 1.0


def _anchor_profile(schedule: RelativeSchedule) -> Dict[str, Set[int]]:
    """Distinct offsets referenced per anchor."""
    profile: Dict[str, Set[int]] = {}
    for offsets in schedule.offsets.values():
        for anchor, value in offsets.items():
            profile.setdefault(anchor, set()).add(value)
    return profile


def _counter_cost(offsets: Set[int], weights: CostWeights) -> float:
    width = bits_for(max(offsets))
    return weights.register * width + weights.comparator * width * len(offsets)


def _shift_cost(offsets: Set[int], weights: CostWeights) -> float:
    return weights.register * max(offsets)


def choose_styles(schedule: RelativeSchedule,
                  weights: CostWeights = CostWeights()
                  ) -> Dict[str, str]:
    """The cheaper implementation style per anchor ("counter" or
    "shift-register"); ties go to the shift register (simpler logic)."""
    choice: Dict[str, str] = {}
    for anchor, offsets in sorted(_anchor_profile(schedule).items()):
        if max(offsets) == 0:
            # no state needed beyond the done signal itself
            choice[anchor] = "shift-register"
            continue
        counter = _counter_cost(offsets, weights)
        shift = _shift_cost(offsets, weights)
        choice[anchor] = "counter" if counter < shift else "shift-register"
    return choice


def synthesize_optimal_control(schedule: RelativeSchedule,
                               weights: CostWeights = CostWeights()
                               ) -> ControlUnit:
    """A mixed-style control unit, per-anchor cost-optimal.

    Anchors assigned "counter" get a counter plus deduplicated
    comparators; anchors assigned "shift-register" get a sticky shift
    register with taps.  Enables conjoin whichever condition signals
    their anchors use.
    """
    styles = choose_styles(schedule, weights)
    profile = _anchor_profile(schedule)
    unit = ControlUnit(style="mixed")

    for anchor, style in styles.items():
        offsets = profile[anchor]
        if style == "counter":
            unit.counters.append(Counter(anchor, bits_for(max(offsets))))
        elif max(offsets) > 0:
            unit.shift_registers.append(ShiftRegister(anchor, max(offsets)))

    seen_comparators: Set[Tuple[str, int]] = set()
    for vertex in schedule.graph.forward_topological_order():
        offsets = schedule.offsets.get(vertex, {})
        terms = tuple(sorted(offsets.items()))
        unit.enables[vertex] = EnableFunction(vertex, terms)
        inputs: List[str] = []
        for anchor, offset in terms:
            if styles.get(anchor) == "counter":
                if (anchor, offset) not in seen_comparators:
                    seen_comparators.add((anchor, offset))
                    unit.comparators.append(Comparator(
                        anchor, offset, bits_for(max(profile[anchor]))))
                inputs.append(f"cmp_{anchor}_ge{offset}")
            else:
                inputs.append(f"sr_{anchor}[{offset}]")
        if len(inputs) > 1:
            unit.and_gates.append(AndGate(f"enable_{vertex}", tuple(inputs)))
    return unit


def compare_styles(schedule: RelativeSchedule,
                   weights: CostWeights = CostWeights()
                   ) -> Dict[str, float]:
    """Weighted area of the three implementations (pure counter, pure
    shift register, optimal mixed) for one schedule."""
    from repro.control.counter import synthesize_counter_control
    from repro.control.shiftreg import synthesize_shift_register_control

    def area(unit: ControlUnit) -> float:
        return unit.cost().total(register_weight=weights.register,
                                 comparator_weight=weights.comparator,
                                 gate_weight=weights.gate)

    return {
        "counter": area(synthesize_counter_control(schedule)),
        "shift-register": area(synthesize_shift_register_control(schedule)),
        "mixed": area(synthesize_optimal_control(schedule, weights)),
    }
