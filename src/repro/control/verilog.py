"""Verilog emission for synthesized control units.

Renders a :class:`~repro.control.netlist.ControlUnit` as a synthesizable
Verilog-2001 module: one ``done_<anchor>`` input per anchor the unit
synchronizes on, one ``enable_<op>`` output per operation, and the
per-anchor sequencing state (counter or sticky shift register) in
between.  The module is the hardware the paper's Section VI describes;
the cycle semantics match :mod:`repro.sim.control_sim` exactly
(``enable_v`` asserts the first cycle every anchor's offset has
elapsed, counting the completion cycle as elapsed-0).

The emitter is deliberately self-contained text generation -- the test
suite checks structural invariants (balanced blocks, declared signals,
tap indices) rather than running a simulator.

Timing note: the sequencing state is registered, so the emitted module
asserts each condition one clock after the corresponding ``done`` pulse
(the standard registered-control discipline); the *relative* spacing
between enables -- the property the schedule guarantees -- is identical
to the analytical model of :mod:`repro.sim.control_sim`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set

from repro.control.netlist import ControlUnit

_IDENT = re.compile(r"[^A-Za-z0-9_]")


def _sanitize(name: str) -> str:
    """Make an arbitrary operation/anchor name a legal Verilog identifier."""
    cleaned = _IDENT.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "s_" + cleaned
    return cleaned


def to_verilog(unit: ControlUnit, module_name: str = "relative_control") -> str:
    """Emit *unit* as a Verilog module.

    Args:
        unit: a counter- or shift-register-based control unit.
        module_name: the emitted module's name.

    Returns:
        Verilog source text.
    """
    if unit.style == "counter":
        return _emit_counter(unit, module_name)
    if unit.style == "shift-register":
        return _emit_shift_register(unit, module_name)
    raise ValueError(f"unknown control style {unit.style!r}")


def _ports(unit: ControlUnit) -> (List[str], List[str]):
    anchors: Set[str] = set()
    for enable in unit.enables.values():
        for anchor, _ in enable.terms:
            anchors.add(anchor)
    done_ports = [f"done_{_sanitize(a)}" for a in sorted(anchors)]
    enable_ports = [f"enable_{_sanitize(op)}" for op in unit.enables]
    return done_ports, enable_ports


def _header(module_name: str, done_ports: List[str],
            enable_ports: List[str]) -> List[str]:
    ports = ["clk", "rst"] + done_ports + enable_ports
    lines = [f"module {module_name} ("]
    lines += [f"    {p}," for p in ports[:-1]]
    lines.append(f"    {ports[-1]}")
    lines.append(");")
    lines.append("  input clk;")
    lines.append("  input rst;")
    for port in done_ports:
        lines.append(f"  input {port};")
    for port in enable_ports:
        lines.append(f"  output {port};")
    lines.append("")
    return lines


def _emit_counter(unit: ControlUnit, module_name: str) -> str:
    done_ports, enable_ports = _ports(unit)
    lines = _header(module_name, done_ports, enable_ports)

    lines.append("  // one counter per anchor, started by its done pulse")
    widths: Dict[str, int] = {}
    for counter in unit.counters:
        anchor = _sanitize(counter.anchor)
        widths[counter.anchor] = counter.width
        lines.append(f"  reg started_{anchor};")
        lines.append(f"  reg [{counter.width - 1}:0] cnt_{anchor};")
        lines.append(f"  always @(posedge clk) begin")
        lines.append(f"    if (rst) begin")
        lines.append(f"      started_{anchor} <= 1'b0;")
        lines.append(f"      cnt_{anchor} <= {counter.width}'d0;")
        lines.append(f"    end else if (done_{anchor} && !started_{anchor}) begin")
        lines.append(f"      started_{anchor} <= 1'b1;")
        lines.append(f"      cnt_{anchor} <= {counter.width}'d0;")
        lines.append(f"    end else if (started_{anchor} && "
                     f"cnt_{anchor} != {{{counter.width}{{1'b1}}}})")
        lines.append(f"      cnt_{anchor} <= cnt_{anchor} + {counter.width}'d1;")
        lines.append(f"  end")
        lines.append("")

    lines.append("  // offset comparators")
    for comparator in unit.comparators:
        anchor = _sanitize(comparator.anchor)
        lines.append(
            f"  wire cmp_{anchor}_ge{comparator.threshold} = "
            f"started_{anchor} && (cnt_{anchor} >= "
            f"{comparator.width}'d{comparator.threshold});")
    lines.append("")

    lines.append("  // enables: conjunction over the anchor set")
    for op, enable in unit.enables.items():
        target = f"enable_{_sanitize(op)}"
        if not enable.terms:
            lines.append(f"  assign {target} = 1'b1;")
            continue
        terms = " && ".join(
            f"cmp_{_sanitize(anchor)}_ge{offset}"
            for anchor, offset in enable.terms)
        lines.append(f"  assign {target} = {terms};")
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines)


def _emit_shift_register(unit: ControlUnit, module_name: str) -> str:
    done_ports, enable_ports = _ports(unit)
    lines = _header(module_name, done_ports, enable_ports)

    lines.append("  // one sticky shift register per anchor: tap i asserts")
    lines.append("  // once at least i cycles have elapsed since done")
    lengths: Dict[str, int] = {}
    for register in unit.shift_registers:
        anchor = _sanitize(register.anchor)
        lengths[register.anchor] = register.length
        top = register.length
        lines.append(f"  reg [{top}:0] sr_{anchor};")
        lines.append(f"  always @(posedge clk) begin")
        lines.append(f"    if (rst)")
        lines.append(f"      sr_{anchor} <= {top + 1}'d0;")
        lines.append(f"    else")
        # sticky: keep all set taps, shift them up, admit the done pulse
        lines.append(f"      sr_{anchor} <= sr_{anchor} | "
                     f"(sr_{anchor} << 1) | {{{top}'d0, done_{anchor}}};")
        lines.append(f"  end")
        lines.append("")

    lines.append("  // enables: conjunction of shift-register taps")
    for op, enable in unit.enables.items():
        target = f"enable_{_sanitize(op)}"
        if not enable.terms:
            lines.append(f"  assign {target} = 1'b1;")
            continue
        terms: List[str] = []
        for anchor, offset in enable.terms:
            name = _sanitize(anchor)
            if anchor in lengths:
                terms.append(f"sr_{name}[{offset}]")
            else:
                # anchor with no register (max offset 0): the done pulse
                terms.append(f"done_{name}")
        lines.append(f"  assign {target} = " + " && ".join(terms) + ";")
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines)
