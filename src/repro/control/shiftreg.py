"""Shift-register-based control generation (Section VI, Fig. 12(b)).

One shift register per anchor, of length ``sigma_a^max``, fed by the
anchor's ``done`` signal; tap ``SR_a[i]`` asserts once at least ``i``
cycles have elapsed since the anchor completed (tap 0 is the ``done``
signal itself).  Enables are plain conjunctions of taps: the comparator
logic of the counter scheme disappears at the price of more registers.
"""

from __future__ import annotations

from typing import List

from repro.control.netlist import (
    AndGate,
    ControlUnit,
    EnableFunction,
    ShiftRegister,
)
from repro.core.schedule import RelativeSchedule


def synthesize_shift_register_control(schedule: RelativeSchedule) -> ControlUnit:
    """Generate the shift-register-based control unit for *schedule*.

    Register count is the sum over anchors of the *maximum* offset any
    operation holds against that anchor -- which is why removing
    redundant anchors (smaller anchor sets, smaller ``sigma_a^max``)
    directly reduces the implementation (Table IV's "sum of max"
    column).
    """
    unit = ControlUnit(style="shift-register")
    for anchor in sorted(schedule.graph.anchors):
        length = _used_max_offset(schedule, anchor)
        if length is None:
            continue
        unit.shift_registers.append(ShiftRegister(anchor, length))

    for vertex in schedule.graph.forward_topological_order():
        offsets = schedule.offsets.get(vertex, {})
        terms = tuple(sorted(offsets.items()))
        unit.enables[vertex] = EnableFunction(vertex, terms)
        if len(terms) > 1:
            inputs = tuple(f"sr_{anchor}[{offset}]" for anchor, offset in terms)
            unit.and_gates.append(AndGate(f"enable_{vertex}", inputs))
    return unit


def _used_max_offset(schedule: RelativeSchedule, anchor: str):
    """Shift-register length for *anchor*: the largest offset referenced,
    or None when no operation synchronizes on it."""
    values: List[int] = [offsets[anchor]
                         for offsets in schedule.offsets.values()
                         if anchor in offsets]
    if not values:
        return None
    return max(values)
