"""Fault injection for the relative-scheduling runtime.

A *fault* perturbs the completion signalling of one anchor:

* ``STALL`` -- the operation never finishes; its ``done`` never arrives;
* ``LATE(k)`` / ``EARLY(k)`` -- ``done`` arrives ``k`` cycles after /
  before the profile says (early completions clamp at the start cycle);
* ``DROP`` -- the operation finishes but its ``done`` pulse is lost.
  At the signal level this is indistinguishable from a stall, and the
  runtime must treat it as one (only a watchdog can unstick it);
* ``SPURIOUS(c)`` -- a ``done`` pulse appears at absolute cycle ``c``
  with no completion behind it.  A pulse for an anchor that has not
  started is detectably bogus (the done latch is armed at start) and is
  rejected and counted; a pulse mid-execution is indistinguishable from
  an early completion and is absorbed as one.

:func:`run_with_faults` executes a schedule's control unit under a
fault plan and classifies the outcome against the containment contract:

* **detected** -- a watchdog fired (timeout event, taxonomy abort, or
  degradation to the static worst-case fallback);
* **masked** -- the run completed and the *observed* start/done times
  satisfy every constraint-graph edge inequality (the relative schedule
  absorbed the perturbation, as Theorem 4's any-profile correctness
  promises);
* **silent** -- the run completed but some observed inequality is
  violated, or it hung past the cycle budget.  A silent outcome is a
  runtime bug; the chaos campaign fails on any.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.delay import STALLED, is_stalled, is_unbounded
from repro.core.exceptions import WatchdogTimeoutError
from repro.core.graph import ConstraintGraph
from repro.core.schedule import RelativeSchedule
from repro.core.watchdog import WatchdogConfig
from repro.sim.control_sim import ControlSimResult, simulate_control


class FaultKind(enum.Enum):
    """How a completion signal misbehaves."""

    STALL = "stall"
    LATE = "late"
    EARLY = "early"
    DROP = "drop"
    SPURIOUS = "spurious"


@dataclass(frozen=True)
class Fault:
    """One injected fault.

    Attributes:
        kind: the misbehaviour.
        anchor: the anchor whose signalling is perturbed.
        amount: LATE/EARLY -- the shift in cycles; SPURIOUS -- the
            absolute cycle of the injected pulse; ignored otherwise.
    """

    kind: FaultKind
    anchor: str
    amount: int = 0

    def __str__(self) -> str:
        if self.kind in (FaultKind.LATE, FaultKind.EARLY, FaultKind.SPURIOUS):
            return f"{self.kind.value}({self.amount})@{self.anchor}"
        return f"{self.kind.value}@{self.anchor}"


@dataclass(frozen=True)
class FaultPlan:
    """A set of faults injected into one run (at most one completion
    fault per anchor; spurious pulses stack on top)."""

    faults: Tuple[Fault, ...] = ()

    def __str__(self) -> str:
        return "+".join(str(f) for f in self.faults) or "none"

    def completion_faults(self) -> Dict[str, Fault]:
        """anchor -> its completion-signal fault (stall/late/early/drop)."""
        plan: Dict[str, Fault] = {}
        for fault in self.faults:
            if fault.kind is FaultKind.SPURIOUS:
                continue
            if fault.anchor in plan:
                raise ValueError(
                    f"two completion faults for anchor {fault.anchor!r}: "
                    f"{plan[fault.anchor]} and {fault}")
            plan[fault.anchor] = fault
        return plan

    def spurious_pulses(self) -> Dict[str, int]:
        """anchor -> absolute cycle of its injected spurious pulse."""
        return {f.anchor: f.amount for f in self.faults
                if f.kind is FaultKind.SPURIOUS}

    def completion_override(self):
        """The ``completion`` callback :func:`simulate_control` expects."""
        plan = self.completion_faults()
        if not plan:
            return None

        def override(vertex: str, start: int,
                     nominal: Optional[int]) -> Optional[int]:
            fault = plan.get(vertex)
            if fault is None:
                return nominal
            if fault.kind in (FaultKind.STALL, FaultKind.DROP):
                return None
            if nominal is None:
                return None  # late/early shift of a stalled signal: still stalled
            if fault.kind is FaultKind.LATE:
                return nominal + fault.amount
            return max(start, nominal - fault.amount)  # EARLY

        return override


@dataclass
class FaultRun:
    """Outcome of one fault-injected execution.

    Attributes:
        classification: ``"detected"``, ``"masked"``, or ``"silent"``.
        result: the simulation result (None when the run aborted).
        error: the taxonomy error that aborted the run (None otherwise).
        violations: observed edge inequalities that failed (only a
            ``"silent"`` run has any).
        effective_profile: per-anchor observed delay (done - start);
            STALLED for anchors whose done never arrived.
    """

    classification: str
    result: Optional[ControlSimResult] = None
    error: Optional[WatchdogTimeoutError] = None
    violations: List[str] = field(default_factory=list)
    effective_profile: Dict[str, object] = field(default_factory=dict)

    @property
    def detected(self) -> bool:
        return self.classification == "detected"

    @property
    def masked(self) -> bool:
        return self.classification == "masked"

    @property
    def contained(self) -> bool:
        """The containment contract: detected or masked, never silent."""
        return self.classification in ("detected", "masked")


def observed_violations(graph: ConstraintGraph,
                        start_times: Mapping[str, int],
                        done_times: Mapping[str, int]) -> List[str]:
    """Edge inequalities violated by an *observed* execution.

    For a bounded edge ``(t, h, w)`` the run must show
    ``T(h) >= T(t) + w`` (this covers sequencing, minimum and --
    via the negative-weight backward edge -- maximum constraints).
    For an unbounded edge the run must show ``T(h) >= done(t)``: the
    head waited for the anchor's actual completion.  A head that
    started while its unbounded tail never completed is a violation
    (the run consumed a result that does not exist).
    """
    violations: List[str] = []
    for edge in graph.edges():
        t_start = start_times.get(edge.tail)
        h_start = start_times.get(edge.head)
        if t_start is None or h_start is None:
            continue  # neither ran: nothing observed to violate
        if is_unbounded(edge.weight):
            done = done_times.get(edge.tail)
            if done is None:
                violations.append(
                    f"{edge.head!r} started at {h_start} but its unbounded "
                    f"predecessor {edge.tail!r} never completed")
            elif h_start < done:
                violations.append(
                    f"{edge.head!r} started at {h_start}, before "
                    f"{edge.tail!r} completed at {done}")
        elif h_start < t_start + edge.weight:
            violations.append(
                f"edge {edge.tail!r}->{edge.head!r} (w={edge.weight}): "
                f"{h_start} < {t_start} + {edge.weight}")
    return violations


def effective_profile(schedule: RelativeSchedule,
                      result: ControlSimResult) -> Dict[str, object]:
    """The delay profile the run *actually* exhibited.

    ``done - start`` per anchor; STALLED when the anchor started but its
    done never arrived.  This is the classification ground truth: a
    masked run is one whose observed starts satisfy the constraints
    under this profile, whatever was injected.
    """
    profile: Dict[str, object] = {}
    for anchor in schedule.graph.anchors:
        start = result.start_times.get(anchor)
        if start is None:
            continue
        done = result.done_times.get(anchor)
        profile[anchor] = STALLED if done is None else done - start
    return profile


def run_with_faults(schedule: RelativeSchedule,
                    profile: Optional[Mapping[str, int]] = None,
                    plan: Optional[FaultPlan] = None, *,
                    watchdog: Optional[WatchdogConfig] = None,
                    style: str = "counter",
                    max_cycles: int = 100000) -> FaultRun:
    """Execute *schedule*'s control unit under *plan* and classify.

    Args:
        schedule: the relative schedule under test.
        profile: the honest delay profile the faults perturb (values may
            already be STALLED).
        plan: the faults to inject (None injects nothing).
        watchdog: timeout bounds/policy; without one, a stall can only
            end in a hang (classified silent).
        style: control style, ``"counter"`` or ``"shift-register"``.
        max_cycles: hang bound for the simulation.
    """
    from repro.control.counter import synthesize_counter_control
    from repro.control.shiftreg import synthesize_shift_register_control

    plan = plan or FaultPlan()
    if style == "counter":
        unit = synthesize_counter_control(schedule)
    elif style == "shift-register":
        unit = synthesize_shift_register_control(schedule)
    else:
        raise ValueError(f"unknown control style {style!r}")

    try:
        result = simulate_control(
            unit, schedule, profile, max_cycles,
            watchdog=watchdog,
            completion=plan.completion_override(),
            spurious=plan.spurious_pulses())
    except WatchdogTimeoutError as error:
        return FaultRun(classification="detected", error=error)
    except RuntimeError:
        # Hung past the cycle budget: an undetected stall.
        return FaultRun(classification="silent",
                        violations=["run hung past the cycle budget "
                                    "with no watchdog detection"])

    if result.degraded or result.timeouts:
        # Degradation and recovered-after-timeout runs both surfaced a
        # detection event; a RETRY recovery is *also* masked, but
        # detected is the stronger claim.
        return FaultRun(classification="detected", result=result,
                        effective_profile=effective_profile(schedule, result))

    eff = effective_profile(schedule, result)
    stalled_blocking = [
        anchor for anchor, value in eff.items()
        if is_stalled(value) and any(
            anchor in schedule.offsets.get(v, {})
            for v in schedule.graph.vertex_names() if v != anchor)
    ]
    violations = observed_violations(schedule.graph, result.start_times,
                                     result.done_times)
    if violations or stalled_blocking:
        for anchor in stalled_blocking:
            violations.append(
                f"anchor {anchor!r} stalled yet every dependent operation "
                f"started (no detection event)")
        return FaultRun(classification="silent", result=result,
                        violations=violations, effective_profile=eff)
    return FaultRun(classification="masked", result=result,
                    effective_profile=eff)
