"""Seeded chaos campaigns: fault-injection at scale.

Each case derives deterministically from its seed: a graph from the
:mod:`repro.qa.generators` scenario rotation, an honest delay profile,
a watchdog configuration (bound, policy, re-arm budget), a control
style, and a fault plan of one to three completion faults plus an
optional spurious pulse.  The case runs through
:func:`repro.resilience.faults.run_with_faults` and must come back
*contained*: detected or masked, never silent.

Run from the command line (the CI smoke job)::

    python -m repro.resilience.chaos --seed 0 --cases 200

Exit status 1 means at least one silent divergence -- a runtime bug.
"""

from __future__ import annotations

import argparse
import random
import sys
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.exceptions import ConstraintGraphError
from repro.core.watchdog import WatchdogConfig, WatchdogPolicy
from repro.qa.generators import generate_case
from repro.resilience.faults import Fault, FaultKind, FaultPlan, FaultRun, run_with_faults
from repro.resilience.guard import RunBudget, guarded_schedule

#: Cases never need more cycles than this; a case that does has hung.
_CASE_MAX_CYCLES = 20000

#: Campaign-level guard rails: generated graphs stay far below these,
#: so hitting one is itself a generator bug worth failing on.
_CASE_BUDGET = RunBudget(max_vertices=512, max_edges=8192, deadline_s=30.0)


@dataclass(frozen=True)
class ChaosCase:
    """One deterministic fault-injection case."""

    seed: int
    scenario: str
    profile: Dict[str, int]
    plan: FaultPlan
    watchdog: WatchdogConfig
    style: str


@dataclass
class CampaignStats:
    """Aggregate outcome of a chaos campaign."""

    cases: int = 0
    unschedulable: int = 0
    faultless: int = 0
    detected: int = 0
    masked: int = 0
    divergences: List[str] = field(default_factory=list)
    by_kind: Dict[str, int] = field(default_factory=dict)
    by_policy: Dict[str, int] = field(default_factory=dict)

    @property
    def silent(self) -> int:
        return len(self.divergences)

    def summary(self) -> str:
        lines = [
            f"chaos campaign: {self.cases} cases "
            f"({self.unschedulable} unschedulable, {self.faultless} fault-free)",
            f"  detected: {self.detected}",
            f"  masked:   {self.masked}",
            f"  silent:   {self.silent}",
        ]
        if self.by_kind:
            kinds = ", ".join(f"{k}={n}" for k, n in sorted(self.by_kind.items()))
            lines.append(f"  faults injected: {kinds}")
        if self.by_policy:
            policies = ", ".join(f"{p}={n}"
                                 for p, n in sorted(self.by_policy.items()))
            lines.append(f"  policies: {policies}")
        for divergence in self.divergences[:10]:
            lines.append(f"  SILENT {divergence}")
        if len(self.divergences) > 10:
            lines.append(f"  ... and {len(self.divergences) - 10} more")
        return "\n".join(lines)


def _sample_plan(rng: random.Random, anchors: List[str],
                 bound: int) -> FaultPlan:
    """One to three completion faults on distinct anchors, plus an
    occasional spurious pulse."""
    faults: List[Fault] = []
    targets = rng.sample(anchors, rng.randint(1, min(3, len(anchors))))
    for anchor in targets:
        kind = rng.choice([FaultKind.STALL, FaultKind.LATE, FaultKind.EARLY,
                           FaultKind.DROP])
        if kind is FaultKind.LATE:
            # Straddle the watchdog boundary: some late completions stay
            # inside the bound (masked), some push past it (detected).
            faults.append(Fault(kind, anchor, rng.randint(1, 2 * bound)))
        elif kind is FaultKind.EARLY:
            faults.append(Fault(kind, anchor, rng.randint(1, bound)))
        else:
            faults.append(Fault(kind, anchor))
    if rng.random() < 0.4:
        target = rng.choice(anchors)
        faults.append(Fault(FaultKind.SPURIOUS, target, rng.randint(0, 3 * bound)))
    return FaultPlan(tuple(faults))


def generate_chaos_case(seed: int,
                        policy: Optional[WatchdogPolicy] = None) -> ChaosCase:
    """The deterministic chaos case for *seed*.

    The graph itself comes from the fuzzing scenario rotation (same
    seed); this function derives the runtime environment -- profile,
    watchdog, faults -- from an independent stream so changing one
    generator does not silently reshuffle the other.
    """
    case = generate_case(seed)
    rng = random.Random(seed ^ zlib.crc32(b"chaos"))
    graph = case.graph
    anchors = [a for a in graph.anchors if a != graph.source]

    profile = {a: rng.randint(0, 10) for a in anchors}
    bound = rng.randint(6, 18)
    chosen_policy = policy or rng.choice(list(WatchdogPolicy))
    watchdog = WatchdogConfig(default=bound, policy=chosen_policy,
                              max_rearms=rng.randint(1, 3), backoff=2)
    plan = (FaultPlan() if not anchors
            else _sample_plan(rng, anchors, bound))
    style = rng.choice(["counter", "shift-register"])
    return ChaosCase(seed=seed, scenario=case.scenario, profile=profile,
                     plan=plan, watchdog=watchdog, style=style)


def run_chaos_case(case: ChaosCase) -> Optional[FaultRun]:
    """Execute one case; None when the seed's graph is unschedulable
    (ill-posed beyond rescue, unfeasible -- not this harness's domain)."""
    graph = generate_case(case.seed).graph
    try:
        schedule = guarded_schedule(graph, _CASE_BUDGET)
    except ConstraintGraphError:
        return None
    return run_with_faults(schedule, case.profile, case.plan,
                           watchdog=case.watchdog, style=case.style,
                           max_cycles=_CASE_MAX_CYCLES)


def run_campaign(start_seed: int, count: int,
                 policy: Optional[WatchdogPolicy] = None) -> CampaignStats:
    """Run *count* seeded cases; every fault-injected run must be
    detected or masked."""
    stats = CampaignStats()
    for seed in range(start_seed, start_seed + count):
        stats.cases += 1
        case = generate_chaos_case(seed, policy)
        outcome = run_chaos_case(case)
        if outcome is None:
            stats.unschedulable += 1
            continue
        if not case.plan.faults:
            stats.faultless += 1
        for fault in case.plan.faults:
            stats.by_kind[fault.kind.value] = (
                stats.by_kind.get(fault.kind.value, 0) + 1)
        policy_name = case.watchdog.policy.value
        stats.by_policy[policy_name] = stats.by_policy.get(policy_name, 0) + 1
        if outcome.detected:
            stats.detected += 1
        elif outcome.masked:
            stats.masked += 1
        else:
            stats.divergences.append(
                f"seed={seed} scenario={case.scenario} plan={case.plan} "
                f"policy={policy_name} style={case.style}: "
                f"{'; '.join(outcome.violations) or 'unclassified'}")
    return stats


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.chaos",
        description="Seeded fault-injection campaign against the "
                    "relative-scheduling runtime.")
    parser.add_argument("--seed", type=int, default=0,
                        help="first seed of the campaign (default 0)")
    parser.add_argument("--cases", type=int, default=200,
                        help="number of seeded cases (default 200)")
    parser.add_argument("--policy", choices=[p.value for p in WatchdogPolicy],
                        default=None,
                        help="pin every case to one degradation policy "
                             "(default: rotate per seed)")
    args = parser.parse_args(argv)

    policy = WatchdogPolicy(args.policy) if args.policy else None
    stats = run_campaign(args.seed, args.cases, policy)
    print(stats.summary())
    if stats.silent:
        print(f"FAIL: {stats.silent} silent divergence(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
