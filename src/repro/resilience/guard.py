"""Hardened entry points: run budgets, kernel fallback, untrusted input.

:func:`guarded_schedule` wraps :func:`repro.core.scheduler.schedule_graph`
with a :class:`RunBudget`:

* **size caps** reject oversized graphs before any analysis runs;
* an **iteration cap** is checked against the Theorem 8 bound
  ``|Eb| + 1`` up front -- the bound is known before scheduling, so a
  graph that could exceed the cap is refused, not aborted halfway;
* a **wall-clock deadline** is threaded through every pipeline stage
  and checked once per scheduler round;
* an internal error in the indexed kernel (a bug, not a taxonomy
  rejection) triggers an automatic retry on the dict reference kernel,
  counted on the tracer as ``guard.kernel_fallbacks`` so silent
  fallbacks show up in run reports.

:func:`load_untrusted_graph` parses graph JSON from outside the trust
boundary: strict structural validation
(:func:`repro.qa.serialize.validate_graph_dict`), JSON ``NaN`` /
``Infinity`` rejected at the parser, and optional size caps applied
*before* the graph is built.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.core.anchors import AnchorMode
from repro.core.exceptions import (
    BudgetExceededError,
    ConstraintGraphError,
    MalformedInputError,
)
from repro.core.graph import ConstraintGraph
from repro.core.schedule import RelativeSchedule
from repro.core.scheduler import schedule_graph
from repro.observability import STATE as _OBS


@dataclass(frozen=True)
class RunBudget:
    """Resource limits for one hardened pipeline run.

    Attributes:
        max_vertices: refuse graphs with more vertices.
        max_edges: refuse graphs with more edges.
        max_iterations: refuse graphs whose Theorem 8 bound ``|Eb| + 1``
            exceeds this (the scheduler never iterates past the bound,
            so the check is exact and runs before any work).
        deadline_s: wall-clock seconds the run may take, checked between
            pipeline stages and once per scheduler round.
    """

    max_vertices: Optional[int] = None
    max_edges: Optional[int] = None
    max_iterations: Optional[int] = None
    deadline_s: Optional[float] = None

    def check_size(self, graph: ConstraintGraph) -> None:
        """Refuse an oversized graph (BudgetExceededError)."""
        n_vertices = len(graph.vertex_names())
        if self.max_vertices is not None and n_vertices > self.max_vertices:
            raise BudgetExceededError(
                f"graph has {n_vertices} vertices, over the budget of "
                f"{self.max_vertices}")
        n_edges = len(graph.edges())
        if self.max_edges is not None and n_edges > self.max_edges:
            raise BudgetExceededError(
                f"graph has {n_edges} edges, over the budget of "
                f"{self.max_edges}")

    def check_iteration_bound(self, graph: ConstraintGraph) -> None:
        """Refuse a graph whose worst-case round count is over budget."""
        if self.max_iterations is None:
            return
        bound = len(graph.backward_edges()) + 1
        if bound > self.max_iterations:
            raise BudgetExceededError(
                f"Theorem 8 iteration bound |Eb|+1 = {bound} exceeds the "
                f"iteration budget {self.max_iterations}")

    def absolute_deadline(self) -> Optional[float]:
        """The perf_counter instant this run must finish by."""
        if self.deadline_s is None:
            return None
        return time.perf_counter() + self.deadline_s

    @classmethod
    def parse(cls, spec: str) -> "RunBudget":
        """Parse the shared budget spec mini-language.

        ``"vertices=500,edges=4000,iterations=64,deadline=5.0"`` (any
        subset, ``deadline`` in seconds) -- the format the CLI's
        ``--budget`` flag and the service's configuration both use.

        Raises:
            ValueError: naming the first bad entry, key, or value.
        """
        fields: dict = {"vertices": None, "edges": None,
                        "iterations": None, "deadline": None}
        for item in spec.split(","):
            if "=" not in item:
                raise ValueError(f"bad budget entry {item!r} "
                                 f"(expected key=value)")
            key, value = item.split("=", 1)
            key = key.strip()
            if key not in fields:
                raise ValueError(f"unknown budget key {key!r} "
                                 f"(expected one of {sorted(fields)})")
            try:
                fields[key] = float(value) if key == "deadline" else int(value)
            except ValueError:
                raise ValueError(f"bad budget value {value!r}") from None
        return cls(max_vertices=fields["vertices"],
                   max_edges=fields["edges"],
                   max_iterations=fields["iterations"],
                   deadline_s=fields["deadline"])


def guarded_schedule(graph: ConstraintGraph,
                     budget: Optional[RunBudget] = None, *,
                     watchdog=None,
                     anchor_mode: AnchorMode = AnchorMode.IRREDUNDANT,
                     auto_well_pose: bool = True,
                     validate: bool = True) -> RelativeSchedule:
    """Schedule *graph* under a :class:`RunBudget`, with kernel fallback.

    Taxonomy rejections (ill-posed, unfeasible, over-budget, malformed)
    propagate unchanged -- they are correct answers.  Any *other*
    exception from the indexed kernel is treated as an internal kernel
    error: the run is retried once on the dict reference kernel and the
    fallback is counted on the active tracer (``guard.kernel_fallbacks``,
    plus a ``guard.kernel_fallback`` event naming the error).

    Args:
        graph: the graph to schedule (validated against the budget's
            size caps first).
        budget: resource limits; None imposes none.
        watchdog: optional per-anchor timeout bounds to validate and
            attach to the schedule (see ``schedule_graph``).
        anchor_mode: anchor-set variant, as in ``schedule_graph``.
        auto_well_pose: serialize ill-posed graphs, as in
            ``schedule_graph``.
        validate: re-check the resulting offsets, as in
            ``schedule_graph``.

    Raises:
        BudgetExceededError: a cap or the deadline was exceeded.
        ConstraintGraphError: the graph is genuinely unschedulable.
    """
    budget = budget or RunBudget()
    budget.check_size(graph)
    budget.check_iteration_bound(graph)
    deadline = budget.absolute_deadline()

    # schedule_graph never mutates its input (make_well_posed copies
    # before serializing), so the retry below can reuse *graph* as-is.
    def run(use_indexed: bool) -> RelativeSchedule:
        return schedule_graph(
            graph, anchor_mode=anchor_mode,
            auto_well_pose=auto_well_pose, validate=validate,
            use_indexed=use_indexed, watchdog=watchdog, deadline=deadline)

    try:
        return run(use_indexed=True)
    except ConstraintGraphError:
        raise
    except Exception as error:
        tracer = _OBS.tracer
        if tracer.enabled:
            tracer.count("guard.kernel_fallbacks")
            tracer.event("guard.kernel_fallback",
                         error=f"{type(error).__name__}: {error}")
        return run(use_indexed=False)


def load_untrusted_graph(source: Union[str, Path],
                         budget: Optional[RunBudget] = None,
                         *, is_path: Optional[bool] = None) -> ConstraintGraph:
    """Parse and validate graph JSON from outside the trust boundary.

    Args:
        source: a filesystem path or a JSON string (a ``Path`` object or
            *is_path=True* forces the former, *is_path=False* the
            latter; by default a string is treated as a path).
        budget: size caps applied to the *declared* vertex/edge lists
            before any graph object is built.

    Raises:
        MalformedInputError: the JSON is not valid, not an object, uses
            non-finite numbers, or fails structural validation (see
            :func:`repro.qa.serialize.validate_graph_dict`).
        BudgetExceededError: the declared payload is over the caps.
    """
    if is_path is None:
        is_path = True
    if isinstance(source, Path) or is_path:
        try:
            text = Path(source).read_text()
        except OSError as error:
            raise MalformedInputError(
                f"cannot read graph file {str(source)!r}: {error}") from error
    else:
        text = str(source)

    def reject_nonfinite(token: str) -> float:
        raise MalformedInputError(
            f"graph JSON uses the non-finite number {token}")

    try:
        data = json.loads(text, parse_constant=reject_nonfinite)
    except MalformedInputError:
        raise
    except ValueError as error:
        raise MalformedInputError(f"graph JSON does not parse: {error}") from error

    return untrusted_graph_from_dict(data, budget)


def untrusted_graph_from_dict(data: Any,
                              budget: Optional[RunBudget] = None
                              ) -> ConstraintGraph:
    """Validate and build a graph from an already-parsed untrusted dict.

    The tail of :func:`load_untrusted_graph`, exposed for callers that
    parse JSON themselves (the HTTP service decodes whole request
    bodies): declared-size caps *before* any graph object is built,
    then strict structural validation, then reconstruction through the
    public graph API.

    Raises:
        MalformedInputError: the payload is not an object or fails
            strict structural validation.
        BudgetExceededError: the declared payload is over the caps.
    """
    from repro.qa.serialize import graph_from_dict, validate_graph_dict

    if not isinstance(data, dict):
        raise MalformedInputError(
            f"graph JSON must be an object, got {type(data).__name__}")
    if budget is not None:
        declared_vertices = data.get("vertices")
        declared_edges = data.get("edges")
        if (budget.max_vertices is not None
                and isinstance(declared_vertices, list)
                and len(declared_vertices) > budget.max_vertices):
            raise BudgetExceededError(
                f"untrusted graph declares {len(declared_vertices)} vertices, "
                f"over the budget of {budget.max_vertices}")
        if (budget.max_edges is not None and isinstance(declared_edges, list)
                and len(declared_edges) > budget.max_edges):
            raise BudgetExceededError(
                f"untrusted graph declares {len(declared_edges)} edges, "
                f"over the budget of {budget.max_edges}")
    validate_graph_dict(data, strict=True)
    return graph_from_dict(data)
