"""Crash-recovery verification: journal a stream, kill it, replay it.

The durability contract of :mod:`repro.runtime.journal` is *bit-identity
at every kill point*: truncate the journal at any acknowledged record
boundary, replay the prefix through a fresh executor, and the recovered
state must equal the uninterrupted run's state at that same boundary --
issues, done cycles, the armed-watchdog set and its arming order, the
stream clock, everything :meth:`~repro.runtime.executor.OnlineExecutor.
state_snapshot` covers.  A kill *inside* a record (a torn tail) must
recover to the boundary before it: the torn record was never
acknowledged, so losing it is not loss.

This module is the shared harness behind that contract's three
consumers: the qa oracle's 14th check (``crash_recovery``), the runtime
chaos campaign's ``--crash`` mode, and the journal test suite.  It
writes the journal through the real :class:`~repro.runtime.journal.
SessionJournal` append path (mirroring the service's
journal-then-apply-then-acknowledge ordering, including the
stop-after-abort rule) and recovers through the real
:func:`~repro.runtime.journal.replay_journal` path -- the harness
introduces no parallel implementation that could drift.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.exceptions import MalformedInputError
from repro.runtime.journal import (
    SessionJournal,
    apply_batch,
    executor_from_open_record,
    read_journal,
    replay_journal,
    validate_batch,
)


@dataclass
class CrashReport:
    """Outcome of sweeping kill points over one journaled stream.

    Attributes:
        boundary_checks: clean-kill points verified (truncation at a
            record boundary).
        torn_checks: mid-record kill points verified (torn tails).
        divergences: every bit-identity violation found, as readable
            ``kill@<bytes>: field expected != recovered`` strings.  A
            non-empty list is a durability bug, full stop.
    """

    boundary_checks: int = 0
    torn_checks: int = 0
    divergences: List[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.divergences


def compare_snapshots(expected: Dict[str, Any],
                      got: Dict[str, Any]) -> List[str]:
    """Field-by-field diff of two executor state snapshots."""
    mismatches = []
    for key in sorted(set(expected) | set(got)):
        want, have = expected.get(key), got.get(key)
        if want != have:
            mismatches.append(f"{key}: expected {want!r}, recovered {have!r}")
    return mismatches


def record_boundaries(raw: bytes) -> List[int]:
    """Byte offsets of every complete-record boundary in *raw*,
    including 0 (the empty prefix) -- the clean kill points."""
    boundaries = [0]
    offset = 0
    for line in raw.split(b"\n")[:-1]:
        offset += len(line) + 1
        boundaries.append(offset)
    return boundaries


def journal_stream(path: Union[str, Path], graph_dict: Dict[str, Any],
                   events: List[Tuple[str, int]], *,
                   mode: str = "full",
                   watchdog: Optional[Dict[str, Any]] = None,
                   source_done: int = 0,
                   auto_well_pose: bool = True,
                   fsync: str = "never",
                   budget: Any = None) -> List[Dict[str, Any]]:
    """Stream *events* through a journaled executor, one record each.

    Follows the service's exact ordering -- validate, append, apply --
    including the stop-after-abort rule (a batch the service would
    refuse to journal never reaches the journal here either).  Returns
    the uninterrupted run's state snapshot *after every acknowledged
    record* (index 0 = the genesis state, before any event): the
    ground truth :func:`verify_crash_points` compares recoveries to.
    """
    journal = SessionJournal(path, fsync=fsync)
    journal.append_open("case", graph_dict, mode=mode, watchdog=watchdog,
                        source_done=source_done,
                        auto_well_pose=auto_well_pose)
    genesis = read_journal(path).open_record
    executor = executor_from_open_record(genesis, budget)
    snapshots = [executor.state_snapshot()]
    seq = 0
    for anchor, cycle in events:
        try:
            validate_batch(executor, [(anchor, cycle)])
        except MalformedInputError:
            continue  # the service answers 400 and journals nothing
        seq += 1
        journal.append_events(seq, [(anchor, cycle)])
        outcome = apply_batch(executor, seq, [(anchor, cycle)])
        snapshots.append(executor.state_snapshot())
        if outcome.error:
            break  # the service refuses further events (409)
    return snapshots


def verify_crash_points(path: Union[str, Path],
                        snapshots: List[Dict[str, Any]], *,
                        budget: Any = None,
                        rng: Optional[random.Random] = None,
                        torn_per_record: int = 1) -> CrashReport:
    """Kill the journal at every record boundary (and inside records)
    and demand bit-identical recovery.

    For each boundary ``k`` the journal is truncated there, recovered
    through :func:`~repro.runtime.journal.replay_journal`, and the
    recovered snapshot compared to ``snapshots[k]``.  For torn tails,
    *torn_per_record* byte offsets strictly inside each record (all of
    them when the rng is None) are additionally checked: the recovery
    must ignore the fragment and equal the boundary before it -- "the
    run without that event".
    """
    path = Path(path)
    raw = path.read_bytes()
    boundaries = record_boundaries(raw)
    kill_file = path.with_suffix(path.suffix + ".kill")
    report = CrashReport()

    def recover_and_compare(cut: int, expected_index: int,
                            expect_torn: bool) -> None:
        kill_file.write_bytes(raw[:cut])
        state = read_journal(kill_file)
        if state.torn_tail != expect_torn:
            report.divergences.append(
                f"kill@{cut}: torn_tail {state.torn_tail} "
                f"(expected {expect_torn})")
        if expected_index == 0:
            # Only the genesis record (or less) survived: nothing was
            # acknowledged, so there is nothing to recover -- but the
            # scan must still classify the file as unrecoverable
            # cleanly rather than crash or invent state.
            if state.batches or (cut < boundaries[1] and state.recoverable):
                report.divergences.append(
                    f"kill@{cut}: scan invented acknowledged state "
                    f"from an unacknowledged prefix")
            if not state.recoverable:
                return
        expected = snapshots[expected_index]
        try:
            executor, outcomes = replay_journal(state, budget)
        except Exception as exc:  # noqa: BLE001 - report, never die
            report.divergences.append(
                f"kill@{cut}: recovery crashed: {type(exc).__name__}: {exc}")
            return
        if len(outcomes) != expected_index:
            report.divergences.append(
                f"kill@{cut}: recovered {len(outcomes)} batches, "
                f"expected {expected_index}")
        for line in compare_snapshots(expected, executor.state_snapshot()):
            report.divergences.append(f"kill@{cut}: {line}")

    # Clean kills: every record boundary (boundary k leaves the open
    # record plus k-1 event records; boundary 0 is the empty file).
    for k, cut in enumerate(boundaries):
        recover_and_compare(cut, max(0, k - 1), expect_torn=False)
        report.boundary_checks += 1

    # Torn kills: offsets strictly inside a record.  Killing inside
    # event record k (1-based) must recover the run *without* event k.
    for k in range(1, len(boundaries)):
        lo, hi = boundaries[k - 1], boundaries[k]
        inner = range(lo + 1, hi)
        if not inner:
            continue
        if rng is None or len(inner) <= torn_per_record:
            cuts = list(inner)
        else:
            cuts = rng.sample(list(inner), torn_per_record)
        for cut in cuts:
            recover_and_compare(cut, max(0, k - 2), expect_torn=True)
            report.torn_checks += 1

    kill_file.unlink(missing_ok=True)
    return report
