"""Fault injection, watchdog anchors, and graceful degradation.

The paper's runtime model trusts its environment: every anchor's
``done`` eventually arrives, every delay profile is honest, every input
graph is well-formed.  This package drops those assumptions:

* :mod:`repro.resilience.faults` -- a seeded fault-injection harness
  perturbing delay profiles and completion signals (stalls, late/early
  completions, dropped done-pulses, spurious pulses), plus the
  *detected-or-masked* classifier: every injected fault must either be
  detected (a taxonomy error or watchdog timeout event) or masked (the
  recovered execution still satisfies every timing constraint) --
  never a silent wrong result;
* :mod:`repro.resilience.guard` -- a hardened pipeline wrapper with run
  budgets (size caps, iteration caps against the Theorem 8 bound,
  wall-clock deadlines), automatic indexed-to-reference kernel fallback,
  and a strict validating loader for untrusted graph JSON;
* :mod:`repro.resilience.chaos` -- the seeded campaign driver
  (``python -m repro.resilience.chaos``) that runs fault-injection
  cases at scale and fails on any silent divergence;
* :mod:`repro.resilience.recovery` -- the crash-recovery harness:
  journal a stream through the real write-ahead path, kill the journal
  at every record boundary (and inside records), replay, and demand
  bit-identical executor state (shared by the qa oracle's
  ``crash_recovery`` check and ``python -m repro.runtime.chaos
  --crash``).

Watchdog bounds and policies themselves live in
:mod:`repro.core.watchdog` so the simulators can honor them without
importing this package.
"""

from repro.core.watchdog import (
    WatchdogConfig,
    WatchdogPolicy,
    WatchdogTimeout,
    validate_watchdog_bounds,
)
from repro.resilience.faults import (
    Fault,
    FaultKind,
    FaultPlan,
    FaultRun,
    observed_violations,
    run_with_faults,
)
from repro.resilience.guard import (
    RunBudget,
    guarded_schedule,
    load_untrusted_graph,
)
from repro.resilience.recovery import (
    CrashReport,
    compare_snapshots,
    journal_stream,
    record_boundaries,
    verify_crash_points,
)

# NOTE: repro.resilience.chaos is deliberately not imported here -- it
# is a runnable module (``python -m repro.resilience.chaos``), and
# importing it from the package initializer would make runpy re-execute
# it under that invocation.  Import it directly.

__all__ = [
    "WatchdogConfig",
    "WatchdogPolicy",
    "WatchdogTimeout",
    "validate_watchdog_bounds",
    "Fault",
    "FaultKind",
    "FaultPlan",
    "FaultRun",
    "observed_violations",
    "run_with_faults",
    "RunBudget",
    "guarded_schedule",
    "load_untrusted_graph",
    "CrashReport",
    "compare_snapshots",
    "journal_stream",
    "record_boundaries",
    "verify_crash_points",
]
