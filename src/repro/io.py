"""JSON serialization for constraint graphs, schedules, and designs.

Round-trippable dictionaries (and file helpers) for the artifacts a
synthesis flow wants to persist: lowered constraint graphs, computed
relative schedules, and hierarchical designs.  The format is versioned
and self-describing (a ``kind`` tag per document) so
:func:`load_json` can dispatch.

Unbounded delays serialize as the string ``"unbounded"``; everything
else is plain JSON scalars and lists.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Union

from repro.core.anchors import AnchorMode
from repro.core.constraints import MaxTimingConstraint, MinTimingConstraint
from repro.core.delay import UNBOUNDED, Delay, is_unbounded
from repro.core.graph import ConstraintGraph, EdgeKind
from repro.core.schedule import RelativeSchedule
from repro.seqgraph.model import Design, OpKind, Operation, SequencingGraph

FORMAT_VERSION = 1

_UNBOUNDED_TOKEN = "unbounded"


def _delay_out(delay: Delay) -> Union[int, str]:
    return _UNBOUNDED_TOKEN if is_unbounded(delay) else delay


def _delay_in(value: Union[int, str]) -> Delay:
    if value == _UNBOUNDED_TOKEN:
        return UNBOUNDED
    if isinstance(value, int):
        return value
    raise ValueError(f"bad delay value {value!r}")


# ----------------------------------------------------------------------
# constraint graphs
# ----------------------------------------------------------------------


def graph_to_dict(graph: ConstraintGraph) -> Dict[str, Any]:
    """Serialize a constraint graph."""
    vertices = [{"name": v.name, "delay": _delay_out(v.delay),
                 **({"tag": v.tag} if v.tag else {})}
                for v in graph.vertices()]
    edges: List[Dict[str, Any]] = []
    for edge in graph.edges():
        entry: Dict[str, Any] = {"tail": edge.tail, "head": edge.head,
                                 "kind": edge.kind.value}
        if not edge.is_unbounded:
            entry["weight"] = edge.weight
        edges.append(entry)
    return {
        "kind": "constraint_graph",
        "version": FORMAT_VERSION,
        "source": graph.source,
        "sink": graph.sink,
        "vertices": vertices,
        "edges": edges,
    }


def graph_from_dict(data: Dict[str, Any]) -> ConstraintGraph:
    """Reconstruct a constraint graph serialized by :func:`graph_to_dict`."""
    _expect(data, "constraint_graph")
    source = data["source"]
    sink = data["sink"]
    by_name = {entry["name"]: entry for entry in data["vertices"]}
    graph = ConstraintGraph(source=source, sink=sink,
                            sink_delay=_delay_in(by_name[sink]["delay"]))
    for entry in data["vertices"]:
        if entry["name"] in (source, sink):
            continue
        graph.add_operation(entry["name"], _delay_in(entry["delay"]),
                            tag=entry.get("tag"))
    for entry in data["edges"]:
        kind = EdgeKind(entry["kind"])
        if kind is EdgeKind.SEQUENCING:
            graph.add_sequencing_edge(entry["tail"], entry["head"])
        elif kind is EdgeKind.SERIALIZATION:
            graph.add_serialization_edge(entry["tail"], entry["head"])
        elif kind is EdgeKind.MIN_TIME:
            graph.add_min_constraint(entry["tail"], entry["head"],
                                     entry["weight"])
        elif kind is EdgeKind.MAX_TIME:
            # stored as the backward edge (to, from) with weight -u
            graph.add_max_constraint(entry["head"], entry["tail"],
                                     -entry["weight"])
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown edge kind {kind!r}")
    return graph


# ----------------------------------------------------------------------
# relative schedules
# ----------------------------------------------------------------------


def schedule_to_dict(schedule: RelativeSchedule) -> Dict[str, Any]:
    """Serialize a schedule together with its graph."""
    return {
        "kind": "relative_schedule",
        "version": FORMAT_VERSION,
        "anchor_mode": schedule.anchor_mode.value,
        "iterations": schedule.iterations,
        "graph": graph_to_dict(schedule.graph),
        "offsets": {vertex: dict(entries)
                    for vertex, entries in schedule.offsets.items()},
        "anchor_sets": {vertex: sorted(tags)
                        for vertex, tags in schedule.anchor_sets.items()},
    }


def schedule_from_dict(data: Dict[str, Any]) -> RelativeSchedule:
    """Reconstruct a schedule; its graph is rebuilt alongside."""
    _expect(data, "relative_schedule")
    graph = graph_from_dict(data["graph"])
    schedule = RelativeSchedule(
        graph=graph,
        anchor_sets={vertex: frozenset(tags)
                     for vertex, tags in data["anchor_sets"].items()},
        offsets={vertex: {a: int(s) for a, s in entries.items()}
                 for vertex, entries in data["offsets"].items()},
        anchor_mode=AnchorMode(data["anchor_mode"]),
        iterations=int(data["iterations"]),
    )
    schedule.validate()
    return schedule


# ----------------------------------------------------------------------
# sequencing graphs and designs
# ----------------------------------------------------------------------


def _operation_to_dict(op: Operation) -> Dict[str, Any]:
    entry: Dict[str, Any] = {"name": op.name, "kind": op.kind.value}
    if op.kind is OpKind.OPERATION:
        entry["delay"] = op.delay
    if op.body is not None:
        entry["body"] = op.body
    if op.branches:
        entry["branches"] = list(op.branches)
    if op.iterations is not None:
        entry["iterations"] = op.iterations
    if op.reads:
        entry["reads"] = list(op.reads)
    if op.writes:
        entry["writes"] = list(op.writes)
    if op.resource_class:
        entry["resource_class"] = op.resource_class
    if op.tag:
        entry["tag"] = op.tag
    return entry


def _operation_from_dict(entry: Dict[str, Any]) -> Operation:
    return Operation(
        name=entry["name"],
        kind=OpKind(entry["kind"]),
        delay=entry.get("delay", 0 if entry["kind"] != "operation" else 1),
        body=entry.get("body"),
        branches=tuple(entry.get("branches", ())),
        iterations=entry.get("iterations"),
        reads=tuple(entry.get("reads", ())),
        writes=tuple(entry.get("writes", ())),
        resource_class=entry.get("resource_class"),
        tag=entry.get("tag"),
    )


def seqgraph_to_dict(graph: SequencingGraph) -> Dict[str, Any]:
    """Serialize one sequencing graph."""
    return {
        "kind": "sequencing_graph",
        "version": FORMAT_VERSION,
        "name": graph.name,
        "operations": [_operation_to_dict(op) for op in graph.operations()
                       if op.kind not in (OpKind.SOURCE, OpKind.SINK)],
        "edges": [[tail, head] for tail, head in graph.edges()],
        "constraints": [
            {"type": "min" if isinstance(c, MinTimingConstraint) else "max",
             "from": c.from_op, "to": c.to_op, "cycles": c.cycles}
            for c in graph.constraints],
    }


def seqgraph_from_dict(data: Dict[str, Any]) -> SequencingGraph:
    """Reconstruct one sequencing graph."""
    _expect(data, "sequencing_graph")
    graph = SequencingGraph(data["name"])
    for entry in data["operations"]:
        graph.add_operation(_operation_from_dict(entry))
    for tail, head in data["edges"]:
        graph.add_edge(tail, head)
    for entry in data["constraints"]:
        cls = MinTimingConstraint if entry["type"] == "min" else MaxTimingConstraint
        graph.add_constraint(cls(entry["from"], entry["to"], entry["cycles"]))
    return graph


def design_to_dict(design: Design) -> Dict[str, Any]:
    """Serialize a hierarchical design (including its metadata, e.g.
    the HDL lowerer's construct registries used by co-simulation)."""
    return {
        "kind": "design",
        "version": FORMAT_VERSION,
        "name": design.name,
        "root": design.root,
        "graphs": [seqgraph_to_dict(design.graph(name))
                   for name in design.graphs],
        "metadata": design.metadata,
    }


def design_from_dict(data: Dict[str, Any]) -> Design:
    """Reconstruct a hierarchical design (validated)."""
    _expect(data, "design")
    design = Design(data["name"], root=data["root"])
    for entry in data["graphs"]:
        design.add_graph(seqgraph_from_dict(entry))
    design.root = data["root"]
    design.metadata = dict(data.get("metadata", {}))
    design.validate()
    return design


# ----------------------------------------------------------------------
# file helpers
# ----------------------------------------------------------------------

_SERIALIZERS = {
    ConstraintGraph: graph_to_dict,
    RelativeSchedule: schedule_to_dict,
    SequencingGraph: seqgraph_to_dict,
    Design: design_to_dict,
}

_DESERIALIZERS = {
    "constraint_graph": graph_from_dict,
    "relative_schedule": schedule_from_dict,
    "sequencing_graph": seqgraph_from_dict,
    "design": design_from_dict,
}


def to_dict(obj: Any) -> Dict[str, Any]:
    """Serialize any supported artifact to a JSON-ready dict."""
    for cls, serializer in _SERIALIZERS.items():
        if isinstance(obj, cls):
            return serializer(obj)
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def from_dict(data: Dict[str, Any]) -> Any:
    """Reconstruct any supported artifact from its dict."""
    kind = data.get("kind")
    deserializer = _DESERIALIZERS.get(kind)
    if deserializer is None:
        raise ValueError(f"unknown document kind {kind!r}")
    return deserializer(data)


def save_json(obj: Any, path_or_file: Union[str, IO[str]]) -> None:
    """Serialize *obj* to a JSON file (path or open text file)."""
    data = to_dict(obj)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
    else:
        json.dump(data, path_or_file, indent=2, sort_keys=True)


def load_json(path_or_file: Union[str, IO[str]]) -> Any:
    """Load any supported artifact from a JSON file."""
    if isinstance(path_or_file, str):
        with open(path_or_file) as handle:
            data = json.load(handle)
    else:
        data = json.load(path_or_file)
    return from_dict(data)


def _expect(data: Dict[str, Any], kind: str) -> None:
    if data.get("kind") != kind:
        raise ValueError(f"expected a {kind!r} document, got {data.get('kind')!r}")
    version = data.get("version", 0)
    if version > FORMAT_VERSION:
        raise ValueError(f"document version {version} is newer than this "
                         f"library supports ({FORMAT_VERSION})")
