"""Seeded fuzzing CLI: ``python -m repro.qa.fuzz --seed 0 --cases 300``.

Runs the scenario generators through the oracle's invariant catalogue.
Exit status 0 means every case passed every check; 1 means at least one
divergence (each is printed, and -- with ``--out`` -- shrunk to a
minimal repro and written as JSON for the regression corpus in
``tests/qa/regressions/``).

The run is fully deterministic: case ``seed`` always builds the same
graph (seeds rotate through the scenarios) and every oracle check
derives its rng from the case seed, so a reported seed replays exactly
with ``--seed N --cases 1``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.qa.generators import SCENARIOS, case_stream
from repro.qa.oracle import ORACLE_CHECKS, run_oracle
from repro.qa.serialize import dump_repro
from repro.qa.shrink import shrink


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.qa.fuzz",
        description="metamorphic + differential fuzzing of the scheduling "
                    "pipeline")
    parser.add_argument("--seed", type=int, default=0,
                        help="first case seed (default 0)")
    parser.add_argument("--cases", type=int, default=300,
                        help="number of cases (default 300)")
    parser.add_argument("--scenario", choices=sorted(SCENARIOS),
                        help="pin one generator scenario instead of rotating")
    parser.add_argument("--check", choices=sorted(ORACLE_CHECKS),
                        action="append", dest="checks",
                        help="run only these oracle checks (repeatable)")
    parser.add_argument("--out", type=Path, metavar="DIR",
                        help="shrink each failure and write a JSON repro here")
    parser.add_argument("--fail-fast", action="store_true",
                        help="stop at the first divergence")
    parser.add_argument("--shrink-budget", type=int, default=400,
                        help="oracle evaluations per shrink (default 400)")
    parser.add_argument("--progress-every", type=int, default=50,
                        help="progress line cadence (0 disables)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    failures = 0
    examined = 0
    for case in case_stream(args.seed, args.cases, args.scenario):
        examined += 1
        divergences = run_oracle(case.graph, seed=case.seed, checks=args.checks)
        for divergence in divergences:
            failures += 1
            print(f"FAIL seed={case.seed} scenario={case.scenario} "
                  f"check={divergence.check}: {divergence.message}")
            if args.out is not None:
                result = shrink(case.graph, divergence.check, case.seed,
                                max_evaluations=args.shrink_budget)
                args.out.mkdir(parents=True, exist_ok=True)
                name = f"{divergence.check}_{case.scenario}_seed{case.seed}.json"
                dump_repro(args.out / name, result.graph,
                           check=result.check, message=result.message,
                           seed=case.seed, scenario=case.scenario)
                print(f"  shrunk {result.vertices_before}v/"
                      f"{result.edges_before}e -> {result.vertices_after}v/"
                      f"{result.edges_after}e "
                      f"({result.evaluations} evals) -> {args.out / name}")
        if args.fail_fast and failures:
            break
        if args.progress_every and examined % args.progress_every == 0:
            print(f"... {examined}/{args.cases} cases, {failures} divergences",
                  flush=True)
    print(f"{examined} cases, {failures} divergences")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
