"""Greedy shrinking of failing fuzz cases to minimal repros.

The shrinker works on the :func:`repro.qa.serialize.graph_to_dict`
representation, so every candidate is by construction serializable --
whatever survives can be dumped straight into the regression corpus.
Transformations, applied greedily to fixpoint under an evaluation
budget:

* drop a vertex (with every incident edge);
* drop a single edge;
* bound an unbounded delay at zero (de-anchor);
* shrink a bounded delay toward zero;
* shrink a timing-constraint weight toward zero.

A candidate is accepted when the *same oracle check* still fails in the
same way (real divergence stays a real divergence; a crash stays a
crash) -- message wording is allowed to drift, which is what lets the
shrinker make progress past cosmetic details.  Checks replay
deterministically because :func:`repro.qa.oracle.run_oracle` derives
each check's rng from the case seed and the check name only.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.graph import ConstraintGraph
from repro.qa.oracle import run_oracle
from repro.qa.serialize import graph_from_dict, graph_to_dict

_CRASH_PREFIX = "oracle check crashed"


@dataclass
class ShrinkResult:
    """The minimized graph plus bookkeeping for the repro file."""

    graph: ConstraintGraph
    check: str
    message: str
    evaluations: int
    vertices_before: int
    vertices_after: int
    edges_before: int
    edges_after: int


def _failure_message(data: Dict[str, Any], check: str, seed: int,
                     want_crash: bool) -> Optional[str]:
    """The divergence message when *data* still fails *check*, else None."""
    try:
        graph = graph_from_dict(data)
    except Exception:
        return None  # candidate is not even a constructible graph
    for divergence in run_oracle(graph, seed=seed, checks=[check]):
        if divergence.message.startswith(_CRASH_PREFIX) == want_crash:
            return divergence.message
    return None


def _drop_vertex(data: Dict[str, Any], name: str) -> Dict[str, Any]:
    candidate = _copy.deepcopy(data)
    candidate["vertices"] = [v for v in candidate["vertices"]
                             if v["name"] != name]
    candidate["edges"] = [e for e in candidate["edges"]
                          if name not in (e["tail"], e["head"])]
    return candidate


def _drop_edge(data: Dict[str, Any], index: int) -> Dict[str, Any]:
    candidate = _copy.deepcopy(data)
    del candidate["edges"][index]
    return candidate


def _with_delay(data: Dict[str, Any], name: str, delay) -> Dict[str, Any]:
    candidate = _copy.deepcopy(data)
    for vertex in candidate["vertices"]:
        if vertex["name"] == name:
            vertex["delay"] = delay
    return candidate


def _with_weight(data: Dict[str, Any], index: int, weight) -> Dict[str, Any]:
    candidate = _copy.deepcopy(data)
    candidate["edges"][index]["weight"] = weight
    return candidate


def _toward_zero(value: int) -> List[int]:
    """Candidate replacements for *value*, most aggressive first."""
    out = []
    if value != 0:
        out.append(0)
    half = int(value / 2)  # truncate toward zero (negative max weights!)
    if half not in (0, value):
        out.append(half)
    return out


def shrink(graph: ConstraintGraph, check: str, seed: int,
           max_evaluations: int = 400) -> ShrinkResult:
    """Greedily minimize *graph* while oracle *check* keeps failing.

    *seed* must be the fuzz case's seed: the oracle check replays with
    the rng it had when the divergence was found.  Returns the original
    graph unchanged if it does not fail (budget counts that probe too).
    """
    data = graph_to_dict(graph)
    evaluations = 0

    def probe(candidate: Dict[str, Any], want_crash: bool) -> Optional[str]:
        nonlocal evaluations
        if evaluations >= max_evaluations:
            return None
        evaluations += 1
        return _failure_message(candidate, check, seed, want_crash)

    message = probe(data, want_crash=False)
    want_crash = False
    if message is None:
        message = probe(data, want_crash=True)
        want_crash = True
    if message is None:
        rebuilt = graph_from_dict(data)
        return ShrinkResult(rebuilt, check, "(did not reproduce)", evaluations,
                            len(data["vertices"]), len(data["vertices"]),
                            len(data["edges"]), len(data["edges"]))

    vertices_before = len(data["vertices"])
    edges_before = len(data["edges"])
    protected = {data["source"], data["sink"]}

    progress = True
    while progress and evaluations < max_evaluations:
        progress = False
        for name in [v["name"] for v in data["vertices"]]:
            if name in protected:
                continue
            found = probe(_drop_vertex(data, name), want_crash)
            if found is not None:
                data, message, progress = _drop_vertex(data, name), found, True
        for index in range(len(data["edges"]) - 1, -1, -1):
            found = probe(_drop_edge(data, index), want_crash)
            if found is not None:
                data, message, progress = _drop_edge(data, index), found, True
        for vertex in list(data["vertices"]):
            name, delay = vertex["name"], vertex["delay"]
            candidates = [0] if delay == "unbounded" else _toward_zero(delay)
            for replacement in candidates:
                found = probe(_with_delay(data, name, replacement), want_crash)
                if found is not None:
                    data = _with_delay(data, name, replacement)
                    message, progress = found, True
                    break
        for index, edge in enumerate(list(data["edges"])):
            if edge["kind"] not in ("min_time", "max_time"):
                continue  # sequencing/serialization weights are derived
            for replacement in _toward_zero(edge["weight"]):
                found = probe(_with_weight(data, index, replacement), want_crash)
                if found is not None:
                    data = _with_weight(data, index, replacement)
                    message, progress = found, True
                    break

    return ShrinkResult(graph_from_dict(data), check, message, evaluations,
                        vertices_before, len(data["vertices"]),
                        edges_before, len(data["edges"]))
