"""The invariant catalogue: differential and metamorphic oracle checks.

Every check takes a pristine copy of the input graph and returns
``None`` (invariant holds) or a human-readable divergence message.  The
catalogue covers:

**Differential (indexed kernel vs. dict reference)**

* ``wellposed_verdict`` -- :func:`check_well_posed` classification;
* ``anchor_analyses`` -- full / relevant / irredundant anchor sets,
  including exception-type agreement on unfeasible graphs;
* ``pipeline`` -- end-to-end ``schedule_graph``: identical offsets,
  identical iteration counts (within the Theorem 8 bound), identical
  exception types on rejected graphs, for FULL and IRREDUNDANT modes.

**Metamorphic (paper theorems as executable properties)**

* ``warm_start`` -- ``add_constraint_incremental`` equals from-scratch
  rescheduling (Lemma 8), and the indexed warm start replays the dict
  warm start's iteration accounting;
* ``make_well_posed`` -- the serialized graph is well-posed, *edge
  minimal* (removing any serialization edge re-breaks Theorem 2) and
  idempotent (Theorem 7), and refusal agrees with the Lemma 3
  existence test;
* ``redundant_edge`` -- adding a forward edge already implied by the
  minimum schedule never changes any offset (Theorem 8 minimality);
* ``copy_cache`` -- ``graph.copy()`` and cache-version bumps are
  invisible: same offsets before/after, and ``validate()`` stays green
  once the versioned raw-row fast path is stale;
* ``anchor_modes`` -- FULL / RELEVANT / IRREDUNDANT schedules agree on
  shared offsets and on start times under random delay profiles
  (Theorems 4 and 6);
* ``observability`` -- tracing is a pure observer: a traced run
  reproduces the untraced outcome exactly; every ``scheduler.run``
  event respects the Theorem 8 iteration bound ``|Eb| + 1``; the
  roll-up counters reconcile with the returned schedule's
  ``iterations``; and a warm restart from the fixpoint of an unchanged
  graph performs **zero** relaxations (hence strictly fewer than any
  from-scratch run that did work, Lemma 8);
* ``fault_containment`` -- an injected completion fault (stall, late,
  early, dropped or spurious done) under a watchdog is either
  *detected* (timeout event, taxonomy abort, or degradation to the
  static fallback) or *masked* (the recovered execution still satisfies
  every constraint edge) -- never a silent wrong result (see
  :mod:`repro.resilience.faults`);
* ``lint_consistency`` -- the static diagnostics of :mod:`repro.lint`
  agree with the scheduler: the linter flags a graph ill-posed or
  unfeasible exactly when :func:`check_well_posed` rejects it; applying
  the Lemma 7 fix-it yields ``make_well_posed``'s minimal edge set and
  a graph that schedules cleanly; and removing a lint-flagged duplicate
  serialization edge (RS303) preserves start times under random delay
  profiles;
* ``batch_consistency`` -- :func:`repro.core.batch.schedule_many` over
  copies and renamed isomorphs of the graph, through a persistent
  result cache cold and warm, is bit-identical (offsets and exception
  types) to per-graph ``schedule_graph`` in FULL anchor mode;
* ``anomaly_freedom`` -- streaming a sampled delay profile's completion
  events through the online executor one at a time, no prefix ever
  commits an operation start later than the static relative schedule's
  start under the observed delays, the complete stream reproduces the
  static starts exactly, and the whole log matches a cycle-accurate
  control simulation of the same profile (see :mod:`repro.runtime`);
* ``crash_recovery`` -- the sampled stream is journaled through the
  write-ahead :mod:`repro.runtime.journal` path and the journal is
  killed at **every** record boundary (plus torn offsets inside
  records): recovery by replay must be bit-identical to the
  uninterrupted run at that boundary -- issues, done cycles, watchdog
  arming and order, stream clock -- and a torn final line must recover
  exactly the run without that event (the durability contract behind
  the service's ``/sessions`` streams).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.anchors import AnchorMode, find_anchor_sets, irredundant_anchors, relevant_anchors
from repro.core.constraints import MaxTimingConstraint, MinTimingConstraint
from repro.core.graph import ConstraintGraph
from repro.core.incremental import add_constraint_incremental
from repro.core.reference import (
    check_well_posed_reference,
    find_anchor_sets_reference,
    irredundant_anchors_reference,
    relevant_anchors_reference,
    schedule_graph_reference,
)
from repro.core.scheduler import IterativeIncrementalScheduler, schedule_graph
from repro.core.wellposed import (
    WellPosedness,
    can_be_made_well_posed,
    check_well_posed,
    containment_violations,
    make_well_posed,
    serialization_edges,
)


@dataclass(frozen=True)
class Divergence:
    """One violated invariant."""

    check: str
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.message}"


def _outcome(fn: Callable[[], object]) -> Tuple[str, object]:
    """Run *fn*; ``("ok", value)`` or ``("raise", exception type name)``.

    Exception *types* are the contract: both kernels must reject a graph
    for the same reason, but message wording is free to differ.
    """
    try:
        return "ok", fn()
    except Exception as exc:
        return "raise", type(exc).__name__


def _edge_multiset(graph: ConstraintGraph):
    from collections import Counter

    return Counter((e.tail, e.head, e.weight, e.kind) for e in graph.edges())


# ----------------------------------------------------------------------
# differential checks
# ----------------------------------------------------------------------


def check_wellposed_verdict(graph: ConstraintGraph,
                            rng: random.Random) -> Optional[str]:
    kind_i, res_i = _outcome(lambda: check_well_posed(graph.copy()))
    kind_r, res_r = _outcome(lambda: check_well_posed_reference(graph.copy()))
    if (kind_i, res_i) != (kind_r, res_r):
        return (f"indexed {kind_i}:{res_i} != reference {kind_r}:{res_r}")
    return None


def check_anchor_analyses(graph: ConstraintGraph,
                          rng: random.Random) -> Optional[str]:
    pairs = [
        ("full", find_anchor_sets, find_anchor_sets_reference),
        ("relevant", relevant_anchors, relevant_anchors_reference),
        ("irredundant", irredundant_anchors, irredundant_anchors_reference),
    ]
    for label, indexed_fn, reference_fn in pairs:
        kind_i, res_i = _outcome(lambda: indexed_fn(graph.copy()))  # noqa: B023 - invoked immediately
        kind_r, res_r = _outcome(lambda: reference_fn(graph.copy()))  # noqa: B023 - invoked immediately
        if kind_i != kind_r:
            return f"{label}: indexed {kind_i}:{res_i} != reference {kind_r}:{res_r}"
        if kind_i == "ok" and dict(res_i) != dict(res_r):
            diff = [v for v in res_i if res_i[v] != res_r.get(v)]
            return f"{label} anchor sets differ at {sorted(diff)[:5]}"
    return None


def check_pipeline(graph: ConstraintGraph, rng: random.Random) -> Optional[str]:
    for mode in (AnchorMode.FULL, AnchorMode.IRREDUNDANT):
        kind_i, res_i = _outcome(
            lambda: schedule_graph(graph.copy(), anchor_mode=mode))  # noqa: B023 - invoked immediately
        kind_r, res_r = _outcome(
            lambda: schedule_graph_reference(graph.copy(), anchor_mode=mode))  # noqa: B023 - invoked immediately
        if kind_i != kind_r:
            return (f"{mode.value}: indexed {kind_i}:{res_i} != "
                    f"reference {kind_r}:{res_r}")
        if kind_i == "raise":
            if res_i != res_r:
                return (f"{mode.value}: indexed raised {res_i}, "
                        f"reference raised {res_r}")
            continue
        if res_i.offsets != res_r.offsets:
            diff = [v for v in res_i.offsets
                    if res_i.offsets[v] != res_r.offsets.get(v)]
            return f"{mode.value}: offsets differ at {sorted(diff)[:5]}"
        if res_i.iterations != res_r.iterations:
            return (f"{mode.value}: iterations {res_i.iterations} != "
                    f"{res_r.iterations}")
        bound = len(res_i.graph.backward_edges()) + 1
        if res_i.iterations > bound:
            return (f"{mode.value}: {res_i.iterations} iterations exceeds "
                    f"the Theorem 8 bound |Eb|+1 = {bound}")
    return None


# ----------------------------------------------------------------------
# metamorphic checks
# ----------------------------------------------------------------------


def _schedulable(graph: ConstraintGraph) -> Optional[object]:
    """A FULL-mode schedule of a copy, or None when the pipeline
    (correctly or not -- other checks compare that) rejects the graph."""
    try:
        return schedule_graph(graph.copy(), anchor_mode=AnchorMode.FULL)
    except Exception:
        return None


def check_warm_start(graph: ConstraintGraph, rng: random.Random) -> Optional[str]:
    schedule = _schedulable(graph)
    if schedule is None:
        return None
    base = schedule.graph  # possibly serialized by the pipeline
    order = base.forward_topological_order()
    pairs = [(t, h) for i, t in enumerate(order) for h in order[i + 1:]]
    if not pairs:
        return None
    # Mix constraint flavors: min constraints along existing paths are
    # the cheap warm-start case; min constraints between *unrelated*
    # vertices grow anchor sets (and can break containment downstream);
    # max constraints exercise the reject paths.
    reachable = [p for p in pairs if base.is_forward_reachable(*p)]
    roll = rng.random()
    if roll < 0.5 and reachable:
        tail, head = rng.choice(reachable)
        constraint: object = MinTimingConstraint(tail, head, rng.randint(0, 8))
    elif roll < 0.75:
        tail, head = rng.choice(pairs)
        constraint = MinTimingConstraint(tail, head, rng.randint(0, 8))
    else:
        tail, head = rng.choice(reachable or pairs)
        constraint = MaxTimingConstraint(tail, head, rng.randint(1, 12))

    kind_w, warm = _outcome(lambda: add_constraint_incremental(schedule, constraint))

    def scratch_run():
        scratch_graph = base.copy()
        constraint.apply(scratch_graph)
        return schedule_graph(scratch_graph, anchor_mode=AnchorMode.FULL,
                              auto_well_pose=False)

    kind_s, scratch = _outcome(scratch_run)
    if kind_w != kind_s:
        return (f"add {constraint}: incremental {kind_w}:"
                f"{warm if kind_w == 'raise' else ''} != "
                f"scratch {kind_s}:{scratch if kind_s == 'raise' else ''}")
    if kind_w == "raise":
        if warm != scratch:
            return (f"add {constraint}: incremental raised {warm}, "
                    f"scratch raised {scratch}")
        return None
    if warm.offsets != scratch.offsets:
        diff = [v for v in warm.offsets
                if warm.offsets[v] != scratch.offsets.get(v)]
        return f"add {constraint}: warm offsets differ at {sorted(diff)[:5]}"

    # Iteration accounting: indexed warm start == dict warm start.
    warm_graph = base.copy()
    constraint.apply(warm_graph)
    anchor_sets = find_anchor_sets(warm_graph)
    runs = {}
    for label, use_indexed in (("indexed", True), ("dict", False)):
        scheduler = IterativeIncrementalScheduler(
            warm_graph.copy(), anchor_mode=AnchorMode.FULL,
            anchor_sets=anchor_sets, use_indexed=use_indexed)
        runs[label] = _outcome(lambda: scheduler.run_from(schedule.offsets))  # noqa: B023 - invoked immediately
    (kind_i, res_i), (kind_d, res_d) = runs["indexed"], runs["dict"]
    if kind_i != kind_d:
        return f"warm kernels disagree: indexed {kind_i} != dict {kind_d}"
    if kind_i == "ok":
        if res_i.offsets != res_d.offsets:
            return "warm kernels disagree on offsets"
        if res_i.iterations != res_d.iterations:
            return (f"warm iteration accounting: indexed {res_i.iterations} "
                    f"!= dict {res_d.iterations}")
    return None


def check_make_well_posed(graph: ConstraintGraph,
                          rng: random.Random) -> Optional[str]:
    try:
        status = check_well_posed(graph.copy())
    except Exception:
        return None  # cyclic forward graph etc. -- not this check's domain
    if status is not WellPosedness.ILL_POSED:
        return None
    rescuable = can_be_made_well_posed(graph.copy())
    kind, result = _outcome(lambda: make_well_posed(graph.copy()))
    if kind == "raise":
        if result != "IllPosedError":
            return f"make_well_posed raised {result}"
        if rescuable:
            return ("make_well_posed refused but can_be_made_well_posed "
                    "says a serialization exists (Lemma 3)")
        return None
    if not rescuable:
        return ("make_well_posed produced a graph but "
                "can_be_made_well_posed says none exists (Lemma 3)")
    if check_well_posed(result) is not WellPosedness.WELL_POSED:
        return "make_well_posed output is not well-posed (Theorem 2)"
    for edge in serialization_edges(result):
        probe = result.copy()
        probe.remove_edge(edge)
        if not containment_violations(probe):
            return (f"serialization edge {edge.tail}->{edge.head} is "
                    f"unnecessary: output is not edge-minimal (Theorem 7)")
    again = make_well_posed(result.copy())
    if _edge_multiset(again) != _edge_multiset(result):
        return "make_well_posed is not idempotent"
    return None


def check_redundant_edge(graph: ConstraintGraph,
                         rng: random.Random) -> Optional[str]:
    schedule = _schedulable(graph)
    if schedule is None:
        return None
    base = schedule.graph
    offsets = schedule.offsets
    anchor_sets = schedule.anchor_sets
    order = base.forward_topological_order()
    candidates: List[Tuple[str, str, int]] = []
    for i, tail in enumerate(order):
        for head in order[i + 1:]:
            if not (set(anchor_sets[tail]) <= set(anchor_sets[head])):
                continue
            slacks = [offsets[head][a] - offsets[tail][a]
                      for a in anchor_sets[tail]]
            if base.is_anchor(tail) and tail in offsets[head]:
                slacks.append(offsets[head][tail])
            if not slacks:
                continue
            slack = min(slacks)
            if slack >= 0:
                candidates.append((tail, head, slack))
    if not candidates:
        return None
    for tail, head, slack in rng.sample(candidates, min(3, len(candidates))):
        mutated = base.copy()
        mutated.add_min_constraint(tail, head, slack)
        kind, res = _outcome(lambda: schedule_graph(  # noqa: B023 - invoked immediately
            mutated, anchor_mode=AnchorMode.FULL, auto_well_pose=False))
        if kind == "raise":
            return (f"redundant edge ({tail}->{head}, l={slack}) made the "
                    f"pipeline raise {res}")
        if res.offsets != offsets:
            diff = [v for v in res.offsets if res.offsets[v] != offsets.get(v)]
            return (f"redundant edge ({tail}->{head}, l={slack}) changed "
                    f"offsets at {sorted(diff)[:5]}")
    return None


def check_copy_cache(graph: ConstraintGraph, rng: random.Random) -> Optional[str]:
    first = _schedulable(graph)
    if first is None:
        return None
    second = _schedulable(graph)
    if second is None or second.offsets != first.offsets:
        return "schedule_graph(graph.copy()) is not reproducible"

    # Cache-version bump: mutate then revert; all memoised analyses are
    # invalidated but the graph is semantically identical.
    bumped = first.graph.copy()
    schedule_before = schedule_graph(bumped, anchor_mode=AnchorMode.FULL,
                                     auto_well_pose=False)
    probe_edge = bumped.add_min_constraint(bumped.source, bumped.sink, 0)
    bumped.remove_edge(probe_edge)
    kind, after = _outcome(lambda: schedule_graph(
        bumped, anchor_mode=AnchorMode.FULL, auto_well_pose=False))
    if kind == "raise":
        return f"cache-version bump made the pipeline raise {after}"
    if after.offsets != schedule_before.offsets:
        return "cache-version bump changed offsets"
    # The stale raw-row fast path must fall back to the precise scan.
    kind, _ = _outcome(schedule_before.validate)
    if kind == "raise":
        return "validate() failed after a cache-version bump"
    return None


def check_anchor_modes(graph: ConstraintGraph,
                       rng: random.Random) -> Optional[str]:
    schedules = {}
    for mode in (AnchorMode.FULL, AnchorMode.RELEVANT, AnchorMode.IRREDUNDANT):
        kind, res = _outcome(lambda: schedule_graph(graph.copy(), anchor_mode=mode))  # noqa: B023 - invoked immediately
        schedules[mode] = (kind, res)
    kinds = {kind for kind, _ in schedules.values()}
    if len(kinds) > 1:
        detail = {m.value: k for m, (k, _) in schedules.items()}
        return f"anchor modes disagree on acceptance: {detail}"
    if kinds == {"raise"}:
        types = {res for _, res in schedules.values()}
        if len(types) > 1:
            return f"anchor modes raise different exceptions: {sorted(types)}"
        return None
    # Reduced modes may track fewer anchors, and even a shared offset
    # sigma_a(v) can legitimately shrink (propagation skips vertices
    # that stopped tracking ``a``); the contract is that *start times*
    # are unchanged for every delay profile (Theorems 4 and 6).
    full = schedules[AnchorMode.FULL][1]
    anchors = full.graph.anchors
    profiles = [{a: 0 for a in anchors}]
    profiles += [{a: rng.randint(0, 15) for a in anchors} for _ in range(4)]
    for mode in (AnchorMode.RELEVANT, AnchorMode.IRREDUNDANT):
        other = schedules[mode][1]
        for profile in profiles:
            if full.start_times(profile) != other.start_times(profile):
                return (f"{mode.value} start times differ from full mode "
                        f"under profile {profile} (Theorems 4/6)")
    return None


def check_observability(graph: ConstraintGraph,
                        rng: random.Random) -> Optional[str]:
    from repro.observability import Tracer, build_report, iteration_bound_violations, use_tracer

    kind_plain, plain = _outcome(
        lambda: schedule_graph(graph.copy(), anchor_mode=AnchorMode.FULL))
    tracer = Tracer()
    with use_tracer(tracer):
        kind_traced, traced = _outcome(
            lambda: schedule_graph(graph.copy(), anchor_mode=AnchorMode.FULL))
    report = build_report(tracer)

    if kind_plain != kind_traced:
        return (f"tracing changed the outcome: plain {kind_plain}, "
                f"traced {kind_traced}")
    bad = iteration_bound_violations(report)
    if bad:
        run = bad[0]
        return (f"scheduler.run event reports {run['iterations']} iterations "
                f"> Theorem 8 bound {run['bound']}")
    if kind_plain == "raise":
        if plain != traced:
            return (f"tracing changed the exception: plain {plain}, "
                    f"traced {traced}")
        return None
    if traced.offsets != plain.offsets:
        return "tracing changed the schedule's offsets"

    runs = report["scheduler"]["runs"]
    if len(runs) != 1:
        return f"one schedule_graph call recorded {len(runs)} scheduler.run events"
    if runs[0]["iterations"] != traced.iterations:
        return (f"scheduler.run reports {runs[0]['iterations']} iterations, "
                f"schedule says {traced.iterations}")
    if report["scheduler"]["total_iterations"] != traced.iterations:
        return (f"scheduler.iterations counter "
                f"{report['scheduler']['total_iterations']} != "
                f"schedule.iterations {traced.iterations}")
    iteration_events = report["scheduler"]["iteration_events"]
    if len(iteration_events) != traced.iterations:
        return (f"{len(iteration_events)} scheduler.iteration events for "
                f"{traced.iterations} iterations")
    kernel = report["kernel"]
    if kernel["indexed_runs"] + kernel["reference_runs"] != 1:
        return (f"kernel run counters do not sum to 1: {kernel}")

    # Warm restart from the fixpoint of the *unchanged* graph: the first
    # sweep finds every offset already at its longest-path value, so the
    # run converges in one round with zero relaxations -- strictly fewer
    # than any from-scratch run that moved an offset (Lemma 8).
    scratch_relaxations = report["scheduler"]["total_relaxations"]
    warm_tracer = Tracer()
    scheduler = IterativeIncrementalScheduler(
        traced.graph.copy(), anchor_mode=AnchorMode.FULL,
        anchor_sets=traced.anchor_sets)
    with use_tracer(warm_tracer):
        kind_warm, rerun = _outcome(lambda: scheduler.run_from(traced.offsets))
    if kind_warm != "ok":
        return f"warm restart on the unchanged graph raised {rerun}"
    if rerun.offsets != traced.offsets:
        return "warm restart on the unchanged graph moved offsets"
    warm_relaxations = warm_tracer.counter("scheduler.relaxations")
    if warm_relaxations != 0:
        return (f"warm restart on the unchanged graph performed "
                f"{warm_relaxations} relaxations (expected 0; from-scratch "
                f"did {scratch_relaxations})")
    if scratch_relaxations > 0 and warm_relaxations >= scratch_relaxations:
        return (f"warm restart did {warm_relaxations} relaxations, not "
                f"fewer than from-scratch's {scratch_relaxations}")
    return None


def check_fault_containment(graph: ConstraintGraph,
                            rng: random.Random) -> Optional[str]:
    # Imported lazily: resilience builds on sim and control, which the
    # rest of the oracle does not need.
    from repro.core.watchdog import WatchdogConfig, WatchdogPolicy
    from repro.resilience.faults import Fault, FaultKind, FaultPlan, run_with_faults

    schedule = _schedulable(graph)
    if schedule is None:
        return None
    anchors = [a for a in schedule.graph.anchors if a != schedule.graph.source]
    if not anchors:
        return None
    bound = rng.randint(5, 15)
    target = rng.choice(anchors)
    kind = rng.choice(list(FaultKind))
    if kind in (FaultKind.LATE, FaultKind.EARLY):
        amount = rng.randint(1, 2 * bound)
    else:
        amount = rng.randint(0, 2 * bound)
    plan = FaultPlan((Fault(kind, target, amount),))
    profile = {a: rng.randint(0, 8) for a in anchors}
    policy = rng.choice(list(WatchdogPolicy))
    watchdog = WatchdogConfig(default=bound, policy=policy,
                              max_rearms=rng.randint(1, 3))
    outcome = run_with_faults(schedule, profile, plan,
                              watchdog=watchdog, max_cycles=20000)
    if not outcome.contained:
        detail = "; ".join(outcome.violations) or "unclassified"
        return (f"fault {plan} under {policy.value} watchdog (W={bound}) "
                f"was silent: {detail}")
    return None


def check_lint_consistency(graph: ConstraintGraph,
                           rng: random.Random) -> Optional[str]:
    # Imported lazily: lint sits above the core analyses and the rest
    # of the oracle does not need it.
    from repro.lint import LintEngine, apply_fixes

    engine = LintEngine()
    kind_l, report = _outcome(lambda: engine.lint_graph(graph.copy()))
    if kind_l != "ok":
        return f"lint crashed on a fuzz graph: {report}"
    codes = set(report.codes())

    kind_w, verdict = _outcome(lambda: check_well_posed(graph.copy()))
    if kind_w == "raise":
        # check_well_posed only raises on structural violations the
        # linter classifies as RS1xx.
        if verdict == "CyclicForwardGraphError" and "RS101" not in codes:
            return "check_well_posed found a forward cycle but RS101 is absent"
        return None

    if (verdict is WellPosedness.UNFEASIBLE) != ("RS201" in codes):
        return (f"feasibility disagrees: verdict {verdict.value}, "
                f"lint codes {sorted(codes)}")
    ill_posed_flagged = bool(codes & {"RS202", "RS203"})
    if (verdict is WellPosedness.ILL_POSED) != ill_posed_flagged:
        return (f"well-posedness disagrees: verdict {verdict.value}, "
                f"lint codes {sorted(codes)}")

    rescuable = report.by_code("RS202")
    if rescuable:
        if any(d.fix is None for d in rescuable):
            return "RS202 diagnostic without the Lemma 7 fix"
        fixed = graph.copy()
        kind_f, applied = _outcome(
            lambda: apply_fixes(fixed, report, select={"RS202"}))
        if kind_f != "ok":
            return f"applying the RS202 fix raised {applied}"
        reference = make_well_posed(graph.copy())
        if _edge_multiset(fixed) != _edge_multiset(reference):
            return ("the --fix'ed graph's edges differ from "
                    "make_well_posed's minimal serialization")
        if check_well_posed(fixed.copy()) is not WellPosedness.WELL_POSED:
            return "the --fix'ed graph is still not well-posed"
        if _schedulable(fixed) is None:
            return "the --fix'ed graph does not schedule cleanly"
        refix = engine.lint_graph(fixed.copy())
        if set(refix.codes()) & {"RS202", "RS203"}:
            return "the --fix'ed graph still lints as ill-posed"

    # Fix-its that drop duplicate serialization edges (RS303) must
    # preserve the schedule exactly: synthesize a duplicate, lint, fix,
    # and compare start times under a random delay profile.
    schedule = _schedulable(graph)
    if schedule is None:
        return None
    unbounded_forward = [e for e in graph.forward_edges() if e.is_unbounded]
    if not unbounded_forward:
        return None
    seed_edge = rng.choice(unbounded_forward)
    mutated = graph.copy()
    mutated.add_serialization_edge(seed_edge.tail, seed_edge.head)
    mutated_report = engine.lint_graph(mutated.copy())
    flagged = [d for d in mutated_report.by_code("RS303")
               if d.span.edge == (seed_edge.tail, seed_edge.head)]
    if not flagged:
        return (f"duplicate serialization {seed_edge.tail!r} -> "
                f"{seed_edge.head!r} not flagged RS303")
    fixed = mutated.copy()
    apply_fixes(fixed, flagged[:1])
    if _edge_multiset(fixed) != _edge_multiset(graph):
        return "the RS303 fix did not restore the original edge multiset"
    after = _schedulable(fixed)
    if after is None:
        return "the RS303-fixed graph no longer schedules"
    anchors = [a for a in schedule.graph.anchors]
    profile = {a: rng.randint(0, 9) for a in anchors}
    if schedule.start_times(profile) != after.start_times(profile):
        return ("removing a duplicate serialization edge changed start "
                "times under a random delay profile")
    return None


def check_batch_consistency(graph: ConstraintGraph,
                            rng: random.Random) -> Optional[str]:
    """``schedule_many`` must be bit-identical to the per-graph pipeline.

    The input graph is expanded into a four-graph corpus -- two verbatim
    copies plus two renamed isomorphs, so the batch deduplicator and the
    canonical hash both fire -- scheduled through a temp-dir persistent
    cache twice (cold file, then warm), and every result compared to
    ``schedule_graph(anchor_mode=FULL)`` on a pristine copy: same
    offsets, same exception *types*.  The warm pass additionally proves
    a cache hit relabeled onto a renamed graph changes nothing.
    """
    import os
    import tempfile

    from repro.core.batch import schedule_many
    from repro.qa.generators import renamed_isomorph

    corpus = [graph.copy(), renamed_isomorph(graph, rng),
              graph.copy(), renamed_isomorph(graph, rng)]
    expected = []
    for g in corpus:
        expected.append(_outcome(
            lambda g=g: schedule_graph(g.copy(), anchor_mode=AnchorMode.FULL)))
    with tempfile.TemporaryDirectory() as tmp:
        cache_path = os.path.join(tmp, "schedules.jsonl")
        for label in ("cold", "warm"):
            run = schedule_many([g.copy() for g in corpus], cache=cache_path)
            for i, (kind, want) in enumerate(expected):
                got_kind, got = _outcome(run[i].unpack)
                if got_kind != kind:
                    return (f"{label} #{i}: batch {got_kind}"
                            f":{got if got_kind == 'raise' else ''} != "
                            f"per-graph {kind}"
                            f":{want if kind == 'raise' else ''}")
                if kind == "raise":
                    if got != want:
                        return (f"{label} #{i}: batch raised {got}, "
                                f"per-graph raised {want}")
                elif got.offsets != want.offsets:
                    diff = [v for v in got.offsets
                            if got.offsets[v] != want.offsets.get(v)]
                    return (f"{label} #{i}: batch offsets differ from "
                            f"per-graph at {sorted(diff)[:5]}")
    return None


def check_anomaly_freedom(graph: ConstraintGraph,
                          rng: random.Random) -> Optional[str]:
    """The online executor never issues later than the static schedule.

    A complete delay profile is sampled, its completion events derived
    analytically (``start_times(profile)`` plus each anchor's delay)
    and streamed through an :class:`~repro.runtime.OnlineExecutor` one
    event at a time.  After **every** prefix, each committed start must
    not exceed the static relative schedule's start under the full
    observed profile -- issuing later would mean the incremental
    reschedule manufactured a delay no completion justifies (an
    *anomaly*).  On the complete stream the starts must *equal* the
    static starts exactly, and the whole log must match a cycle-accurate
    control simulation of the same profile (the two implementations
    share only the watchdog arithmetic).
    """
    from repro.runtime.driver import replay_faults
    from repro.runtime.events import CompletionEvent
    from repro.runtime.executor import OnlineExecutor

    schedule = _schedulable(graph)
    if schedule is None:
        return None
    base = schedule.graph  # possibly serialized by the pipeline
    anchors = [a for a in base.anchors if a != base.source]
    profile = {a: rng.randint(0, 12) for a in anchors}
    static = schedule.start_times(profile)
    # Same-cycle ties stream in topological order: a gating anchor's
    # completion must precede a dependent's zero-delay completion on
    # the same cycle, or the latter would arrive before its own start.
    order = {name: position for position, name
             in enumerate(base.forward_topological_order())}
    events = sorted(
        ((static[a] + profile[a], order[a], a) for a in anchors))

    executor = OnlineExecutor(schedule)
    fed = 0
    for cycle, _, anchor in events:
        executor.feed(CompletionEvent(anchor, cycle))
        fed += 1
        for op, issued in executor.log.issues.items():
            if issued > static[op]:
                return (f"after {fed}/{len(events)} events, {op!r} issued "
                        f"at {issued} > static start {static[op]} "
                        f"(profile {profile})")
    log = executor.close()
    if not log.complete:
        return (f"complete stream left operations unissued: "
                f"{log.unissued[:5]} (profile {profile})")
    for op, want in static.items():
        if log.issues.get(op) != want:
            return (f"final start of {op!r}: executor {log.issues.get(op)} "
                    f"!= static {want} (profile {profile})")

    replay = replay_faults(schedule, profile)
    if not replay.equivalent:
        return (f"executor vs control-sim divergence under profile "
                f"{profile}: {'; '.join(replay.mismatches[:3])}")
    return None


def check_crash_recovery(graph: ConstraintGraph,
                         rng: random.Random) -> Optional[str]:
    """Kill-at-every-event-boundary durability of the event journal.

    The same event stream ``anomaly_freedom`` derives is written
    through the real write-ahead journal path (one record per event,
    sometimes under a sampled watchdog config, mirroring the service's
    journal-then-apply ordering).  The journal is then truncated at
    every record boundary and at sampled byte offsets *inside* records,
    and recovered through the real replay path.  Every recovery must be
    bit-identical to the uninterrupted executor at that boundary --
    :meth:`~repro.runtime.executor.OnlineExecutor.state_snapshot`
    equality covers issue cycles, done cycles, armed watchdogs and
    their arming order, and the stream clock -- and a torn final line
    must equal the run without that event.  On a complete, undegraded
    run the recovered issue cycles must also equal the static
    schedule's ``start_times(observed)`` (the anomaly-freedom bridge:
    recovery preserves not just state but optimality).
    """
    import os
    import tempfile

    from repro.core.watchdog import WatchdogPolicy
    from repro.qa.serialize import graph_to_dict
    from repro.resilience.recovery import journal_stream, verify_crash_points

    schedule = _schedulable(graph)
    if schedule is None:
        return None
    base = schedule.graph
    anchors = [a for a in base.anchors if a != base.source]
    profile = {a: rng.randint(0, 12) for a in anchors}
    static = schedule.start_times(profile)
    order = {name: position for position, name
             in enumerate(base.forward_topological_order())}
    events = [(a, cycle) for cycle, _, a in sorted(
        (static[a] + profile[a], order[a], a) for a in anchors)]

    watchdog = None
    if anchors and rng.random() < 0.5:
        # Half the cases run monitored, so recovery is also exercised
        # across timeout firings, re-arms, aborts and degradations.
        policy = rng.choice(list(WatchdogPolicy))
        watchdog = {
            "bounds": {a: rng.randint(1, 15)
                       for a in sorted(rng.sample(
                           anchors, rng.randint(1, len(anchors))))},
            "policy": policy.value,
        }

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "case.journal")
        snapshots = journal_stream(path, graph_to_dict(base), events,
                                   mode="full", watchdog=watchdog)
        report = verify_crash_points(path, snapshots, rng=rng,
                                     torn_per_record=2)
    if not report.identical:
        return (f"{len(report.divergences)} recovery divergence(s) over "
                f"{report.boundary_checks} boundary + {report.torn_checks} "
                f"torn kill points (watchdog {watchdog}, profile "
                f"{profile}): {'; '.join(report.divergences[:3])}")

    final = snapshots[-1]
    if not final["pending"] and not final["degraded"] \
            and not final["closed"]:
        want = schedule.start_times(final["observed"])
        for op, start in want.items():
            if final["issues"].get(op) != start:
                return (f"journaled run's final start of {op!r}: "
                        f"{final['issues'].get(op)} != static "
                        f"start_times(observed) {start} "
                        f"(profile {profile}, watchdog {watchdog})")
    return None


#: The catalogue, in execution order.
ORACLE_CHECKS: Dict[str, Callable[[ConstraintGraph, random.Random], Optional[str]]] = {
    "wellposed_verdict": check_wellposed_verdict,
    "anchor_analyses": check_anchor_analyses,
    "pipeline": check_pipeline,
    "warm_start": check_warm_start,
    "make_well_posed": check_make_well_posed,
    "redundant_edge": check_redundant_edge,
    "copy_cache": check_copy_cache,
    "anchor_modes": check_anchor_modes,
    "observability": check_observability,
    "fault_containment": check_fault_containment,
    "lint_consistency": check_lint_consistency,
    "batch_consistency": check_batch_consistency,
    "anomaly_freedom": check_anomaly_freedom,
    "crash_recovery": check_crash_recovery,
}


def run_oracle(graph: ConstraintGraph, seed: int = 0,
               checks: Optional[List[str]] = None) -> List[Divergence]:
    """Run the catalogue (or the named *checks*) against *graph*.

    Each check gets its own deterministic rng derived from *seed* and
    the check name, so a single check replays identically whether run
    alone (the shrinker does this) or as part of the full catalogue.
    A check that crashes is itself reported as a divergence: the oracle
    never masks an unexpected exception as a pass.
    """
    divergences: List[Divergence] = []
    for name, fn in ORACLE_CHECKS.items():
        if checks is not None and name not in checks:
            continue
        rng = random.Random(seed ^ zlib.crc32(name.encode("ascii")))
        try:
            message = fn(graph, rng)
        except Exception as exc:  # noqa: BLE001 - the oracle must not die
            message = f"oracle check crashed: {type(exc).__name__}: {exc}"
        if message:
            divergences.append(Divergence(check=name, message=message))
    return divergences
