"""Seeded scenario generators for the metamorphic fuzzing oracle.

The differential suite of PR 1 sampled one flavor of random graph; this
module generates the *adversarial* shapes the invariant catalogue needs
(see :mod:`repro.qa.oracle`):

* ``ill_posed_chain`` -- maximum constraints racing across anchor
  frames, with chained backward edges, so ``make_well_posed`` has to
  cascade serializations (and sometimes must refuse, Lemma 3);
* ``zero_weight_cycle`` -- maximum constraints tightened to *exactly*
  the longest path between their endpoints, closing zero-weight cycles
  that sit on the feasibility boundary of Theorem 1;
* ``anchor_dense`` -- a majority of operations unbounded, stressing the
  bitmask anchor analyses and per-anchor offset bookkeeping;
* ``numpy_gate`` -- vertex counts straddling
  :data:`repro.core.indexed._NUMPY_MIN_N`, so every case pair exercises
  both the vectorized and the scalar kernel paths;
* ``well_posed_small`` / ``constrained_mix`` -- the bread-and-butter
  flavors of the PR 1 differential suite, kept in the mix so the oracle
  keeps covering the common path.

Every generator is deterministic given its seed, and every case carries
its scenario name so a shrunk repro records where it came from.

The module also builds the *batch corpora* for
:func:`repro.core.batch.schedule_many`: chain-ladder designs
(:func:`chain_ladder_graph` / :func:`unfeasible_chain_graph`), renamed
isomorphic copies (:func:`renamed_isomorph`), and the mixed dedup-heavy
:func:`batch_corpus` the consistency oracle and the throughput
benchmarks share.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.delay import UNBOUNDED, is_unbounded
from repro.core.graph import ConstraintGraph, EdgeKind
from repro.core.indexed import _NUMPY_MIN_N
from repro.core.paths import NO_PATH, longest_paths_from
from repro.designs.random_graphs import random_constraint_graph, random_dag


@dataclass(frozen=True)
class FuzzCase:
    """One generated input: the graph plus its provenance."""

    seed: int
    scenario: str
    graph: ConstraintGraph


def _well_posed_small(rng: random.Random) -> ConstraintGraph:
    return random_constraint_graph(
        rng, rng.randint(6, 24),
        edge_probability=rng.uniform(0.15, 0.4),
        unbounded_probability=rng.uniform(0.1, 0.3),
        n_min_constraints=rng.randint(0, 4),
        n_max_constraints=rng.randint(0, 4))


def _constrained_mix(rng: random.Random) -> ConstraintGraph:
    """Anything goes: ill-posed and infeasible placements allowed."""
    return random_constraint_graph(
        rng, rng.randint(8, 40),
        edge_probability=rng.uniform(0.1, 0.35),
        unbounded_probability=rng.uniform(0.05, 0.35),
        n_min_constraints=rng.randint(0, 5),
        n_max_constraints=rng.randint(0, 5),
        well_posed_only=False,
        feasible_only=rng.random() < 0.5)


def _numpy_gate(rng: random.Random) -> ConstraintGraph:
    """Sizes straddling the vectorization gate of the indexed kernel."""
    n = rng.randint(_NUMPY_MIN_N - 6, _NUMPY_MIN_N + 10)
    return random_constraint_graph(
        rng, n,
        edge_probability=rng.uniform(0.05, 0.12),
        unbounded_probability=rng.uniform(0.1, 0.25),
        n_min_constraints=rng.randint(0, 6),
        n_max_constraints=rng.randint(0, 6),
        well_posed_only=rng.random() < 0.7)


def _anchor_dense(rng: random.Random) -> ConstraintGraph:
    """Most operations unbounded: wide bitmasks, many anchor frames."""
    return random_constraint_graph(
        rng, rng.randint(8, 36),
        edge_probability=rng.uniform(0.15, 0.35),
        unbounded_probability=rng.uniform(0.5, 0.85),
        n_min_constraints=rng.randint(0, 4),
        n_max_constraints=rng.randint(0, 4),
        well_posed_only=rng.random() < 0.5)


def _zero_weight_cycle(rng: random.Random) -> ConstraintGraph:
    """Maximum constraints at exactly the longest-path bound.

    Each placed constraint closes a cycle of total weight zero -- the
    tightest consistent bound.  One unit less would make the graph
    unfeasible, so these graphs sit on the boundary the positive-cycle
    walk-length certificates and the ``|Eb| + 1`` iteration bound must
    classify exactly.
    """
    graph = random_dag(rng, rng.randint(6, 30),
                       edge_probability=rng.uniform(0.15, 0.35),
                       unbounded_probability=rng.uniform(0.0, 0.3))
    order = graph.forward_topological_order()
    pairs: List[Tuple[str, str]] = []
    for i, tail in enumerate(order):
        for head in order[i + 1:]:
            if graph.is_forward_reachable(tail, head):
                pairs.append((tail, head))
    rng.shuffle(pairs)
    placed = 0
    for tail, head in pairs:
        if placed >= rng.randint(1, 4):
            break
        span = longest_paths_from(graph, tail)[head]
        if span is NO_PATH or span < 0:
            continue
        slack = 0 if rng.random() < 0.8 else rng.randint(1, 2)
        graph.add_max_constraint(tail, head, span + slack)
        placed += 1
    return graph


def _ill_posed_chain(rng: random.Random) -> ConstraintGraph:
    """Operations hanging off separate anchors, tied by chains of
    maximum constraints -- the Fig. 3(b) pattern generalized.

    ``make_well_posed`` must cascade serializations along the backward
    chains; with probability ~0.25 an anchor is planted *between* the
    endpoints of one constraint (Fig. 3(a)), making the graph
    unrescuable so the ``IllPosedError`` paths get differential
    coverage too.
    """
    graph = ConstraintGraph(source="src", sink="snk")
    n_frames = rng.randint(2, 4)
    frames: List[List[str]] = []
    for f in range(n_frames):
        anchor = f"a{f}"
        graph.add_operation(anchor, UNBOUNDED)
        graph.add_sequencing_edge("src", anchor)
        ops = []
        previous = anchor
        for k in range(rng.randint(1, 3)):
            op = f"f{f}op{k}"
            graph.add_operation(op, rng.randint(0, 6))
            graph.add_sequencing_edge(previous, op)
            previous = op
            ops.append(op)
        frames.append(ops)
    # Backward chains across frames: each maximum constraint races the
    # head frame's unknown anchor delay against the tail frame's.
    n_links = rng.randint(1, n_frames + 1)
    for _ in range(n_links):
        f_from, f_to = rng.sample(range(n_frames), 2)
        graph.add_max_constraint(rng.choice(frames[f_from]),
                                 rng.choice(frames[f_to]),
                                 rng.randint(1, 10))
    if rng.random() < 0.25:
        # Fig. 3(a): an anchor on the path between the endpoints of a
        # maximum constraint -- no serialization can rescue this.
        mid = "amid"
        graph.add_operation(mid, UNBOUNDED)
        before = f"before_{mid}"
        after = f"after_{mid}"
        graph.add_operation(before, rng.randint(1, 4))
        graph.add_operation(after, rng.randint(1, 4))
        graph.add_sequencing_edge("src", before)
        graph.add_sequencing_edge(before, mid)
        graph.add_sequencing_edge(mid, after)
        graph.add_max_constraint(before, after, rng.randint(1, 8))
    graph.make_polar()
    return graph


def _sparse_long_chain(rng: random.Random) -> ConstraintGraph:
    """Long thin graphs: deep topological levels, few parallel edges."""
    return random_constraint_graph(
        rng, rng.randint(40, 90),
        edge_probability=rng.uniform(0.02, 0.05),
        unbounded_probability=rng.uniform(0.05, 0.2),
        n_min_constraints=rng.randint(2, 8),
        n_max_constraints=rng.randint(2, 8),
        well_posed_only=rng.random() < 0.6)


# ----------------------------------------------------------------------
# batch corpora (schedule_many consistency checks and throughput benches)
# ----------------------------------------------------------------------


def chain_ladder_graph(rng: random.Random, n_lo: int = 8, n_hi: int = 24,
                       unbounded_probability: float = 0.2) -> ConstraintGraph:
    """A well-posed chain design with max-constraint ladders.

    Operations form a sequencing chain with random forward shortcuts;
    bounded three-operation runs get a ladder of two maximum constraints
    plus a minimum constraint stretching across it, which forces several
    relaxation iterations in the scheduler (the batch kernel's dense
    sweep must reproduce the same iteration count).  Ladders never span
    an anchor, so the graph stays well-posed -- the cacheable verdict
    the batch corpus needs in volume.
    """
    n = rng.randint(n_lo, n_hi)
    graph = ConstraintGraph(source="src", sink="snk", sink_delay=0)
    names = [f"v{i}" for i in range(n)]
    delays: List[Optional[int]] = []
    for name in names:
        if rng.random() < unbounded_probability:
            graph.add_operation(name, UNBOUNDED)
            delays.append(None)
        else:
            delay = rng.randint(1, 6)
            graph.add_operation(name, delay)
            delays.append(delay)
    chain = ["src"] + names + ["snk"]
    for tail, head in zip(chain, chain[1:]):
        graph.add_sequencing_edge(tail, head)
    for _ in range(n // 3):
        a = rng.randint(0, len(chain) - 2)
        b = rng.randint(a + 1, len(chain) - 1)
        graph.add_sequencing_edge(chain[a], chain[b])
    ladders = 0
    for a in range(1, n - 2):
        if ladders >= 3:
            break
        segment = delays[a - 1:a + 2]
        if any(d is None for d in segment):
            continue
        slack = rng.randint(1, 2)
        graph.add_max_constraint(names[a - 1], names[a], delays[a - 1] + slack)
        graph.add_max_constraint(names[a], names[a + 1], delays[a] + slack)
        graph.add_min_constraint(names[a - 1], names[a + 1],
                                 delays[a - 1] + delays[a] + slack)
        ladders += 1
    for _ in range(rng.randint(1, 3)):
        a = rng.randint(1, len(chain) - 2)
        b = rng.randint(a + 1, len(chain) - 1)
        graph.add_min_constraint(chain[a], chain[b], rng.randint(1, 5))
    return graph


def unfeasible_chain_graph(rng: random.Random, n_lo: int = 24,
                           n_hi: int = 40) -> ConstraintGraph:
    """A chain design with a contradictory min/max pair: Theorem 1
    rejects it (positive cycle), exercising the batch error paths."""
    graph = chain_ladder_graph(rng, n_lo, n_hi)
    names = [v.name for v in graph.vertices()
             if v.name not in (graph.source, graph.sink)]
    delays = {v.name: v.delay for v in graph.vertices()}
    for i in range(len(names) - 3):
        segment = names[i:i + 3]
        if any(is_unbounded(delays[name]) for name in segment):
            continue
        total = sum(delays[name] for name in segment)
        for tail, head in zip(segment, segment[1:]):
            graph.add_max_constraint(tail, head, delays[tail] + 1)
        graph.add_min_constraint(segment[0], segment[-1], total + 40)
        return graph
    graph.add_min_constraint(names[0], names[-1], 10**6)
    return graph


def renamed_isomorph(graph: ConstraintGraph,
                     rng: random.Random) -> ConstraintGraph:
    """An isomorphic copy under permuted names and shuffled insertion.

    Operations get fresh names (``r<k>``) in a random permutation, and
    both vertex and edge insertion orders are shuffled, so nothing about
    the serialized form survives -- only the structure.  The canonical
    hash must map the copy to the same key as *graph*; a result cache
    keyed on it turns the copy into a hit.
    """
    names = [v.name for v in graph.vertices()
             if v.name not in (graph.source, graph.sink)]
    permutation = list(range(len(names)))
    rng.shuffle(permutation)
    rename = {name: f"r{p}" for name, p in zip(names, permutation)}
    rename[graph.source] = graph.source
    rename[graph.sink] = graph.sink
    copy = ConstraintGraph(source=graph.source, sink=graph.sink,
                           sink_delay=graph._vertices[graph.sink].delay)
    order = list(names)
    rng.shuffle(order)
    for name in order:
        vertex = graph._vertices[name]
        copy.add_operation(rename[name], vertex.delay, tag=vertex.tag)
    edges = graph.edges()
    rng.shuffle(edges)
    for edge in edges:
        tail, head = rename[edge.tail], rename[edge.head]
        if edge.kind is EdgeKind.SEQUENCING:
            copy.add_sequencing_edge(tail, head)
        elif edge.kind is EdgeKind.MIN_TIME:
            copy.add_min_constraint(tail, head, edge.weight)
        elif edge.kind is EdgeKind.MAX_TIME:
            # Stored as the backward graph edge (to, from) with -u.
            copy.add_max_constraint(head, tail, -edge.weight)
        else:
            copy.add_serialization_edge(tail, head)
    return copy


def batch_corpus(seed: int, size: int, *, n_unique: int = 30,
                 unfeasible_share: float = 0.2, n_lo: int = 8,
                 n_hi: int = 24,
                 unbounded_probability: float = 0.2
                 ) -> List[ConstraintGraph]:
    """A deterministic mixed corpus for :func:`repro.core.batch.schedule_many`.

    *n_unique* base graphs (an *unfeasible_share* of them unfeasible,
    the rest well-posed chain-ladder designs) are padded to *size* with
    renamed isomorphs and shuffled -- the dedup-heavy shape of a
    production corpus, where most inputs are known designs under fresh
    names.  Every graph is independently generated from *seed*, so the
    corpus replays identically across processes.
    """
    rng = random.Random(seed)
    n_unfeasible = int(n_unique * unfeasible_share)
    uniques = [chain_ladder_graph(rng, n_lo, n_hi, unbounded_probability)
               for _ in range(n_unique - n_unfeasible)]
    uniques += [unfeasible_chain_graph(rng, max(n_lo, 4), max(n_hi, 8))
                for _ in range(n_unfeasible)]
    corpus = list(uniques)
    while len(corpus) < size:
        corpus.append(renamed_isomorph(rng.choice(uniques), rng))
    corpus = corpus[:size]
    rng.shuffle(corpus)
    return corpus


#: scenario name -> builder(rng); insertion order is the rotation order.
SCENARIOS: Dict[str, Callable[[random.Random], ConstraintGraph]] = {
    "well_posed_small": _well_posed_small,
    "constrained_mix": _constrained_mix,
    "numpy_gate": _numpy_gate,
    "anchor_dense": _anchor_dense,
    "zero_weight_cycle": _zero_weight_cycle,
    "ill_posed_chain": _ill_posed_chain,
    "sparse_long_chain": _sparse_long_chain,
}


def generate_case(seed: int, scenario: Optional[str] = None) -> FuzzCase:
    """The deterministic case for *seed*.

    Without *scenario*, seeds rotate through :data:`SCENARIOS` so any
    contiguous seed range covers every scenario evenly.
    """
    names = list(SCENARIOS)
    if scenario is None:
        scenario = names[seed % len(names)]
    builder = SCENARIOS[scenario]
    return FuzzCase(seed=seed, scenario=scenario,
                    graph=builder(random.Random(seed)))


def case_stream(start_seed: int, count: int,
                scenario: Optional[str] = None) -> Iterator[FuzzCase]:
    """*count* deterministic cases starting at *start_seed*."""
    for seed in range(start_seed, start_seed + count):
        yield generate_case(seed, scenario)
