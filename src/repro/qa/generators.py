"""Seeded scenario generators for the metamorphic fuzzing oracle.

The differential suite of PR 1 sampled one flavor of random graph; this
module generates the *adversarial* shapes the invariant catalogue needs
(see :mod:`repro.qa.oracle`):

* ``ill_posed_chain`` -- maximum constraints racing across anchor
  frames, with chained backward edges, so ``make_well_posed`` has to
  cascade serializations (and sometimes must refuse, Lemma 3);
* ``zero_weight_cycle`` -- maximum constraints tightened to *exactly*
  the longest path between their endpoints, closing zero-weight cycles
  that sit on the feasibility boundary of Theorem 1;
* ``anchor_dense`` -- a majority of operations unbounded, stressing the
  bitmask anchor analyses and per-anchor offset bookkeeping;
* ``numpy_gate`` -- vertex counts straddling
  :data:`repro.core.indexed._NUMPY_MIN_N`, so every case pair exercises
  both the vectorized and the scalar kernel paths;
* ``well_posed_small`` / ``constrained_mix`` -- the bread-and-butter
  flavors of the PR 1 differential suite, kept in the mix so the oracle
  keeps covering the common path.

Every generator is deterministic given its seed, and every case carries
its scenario name so a shrunk repro records where it came from.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.delay import UNBOUNDED
from repro.core.graph import ConstraintGraph
from repro.core.indexed import _NUMPY_MIN_N
from repro.core.paths import NO_PATH, longest_paths_from
from repro.designs.random_graphs import random_constraint_graph, random_dag


@dataclass(frozen=True)
class FuzzCase:
    """One generated input: the graph plus its provenance."""

    seed: int
    scenario: str
    graph: ConstraintGraph


def _well_posed_small(rng: random.Random) -> ConstraintGraph:
    return random_constraint_graph(
        rng, rng.randint(6, 24),
        edge_probability=rng.uniform(0.15, 0.4),
        unbounded_probability=rng.uniform(0.1, 0.3),
        n_min_constraints=rng.randint(0, 4),
        n_max_constraints=rng.randint(0, 4))


def _constrained_mix(rng: random.Random) -> ConstraintGraph:
    """Anything goes: ill-posed and infeasible placements allowed."""
    return random_constraint_graph(
        rng, rng.randint(8, 40),
        edge_probability=rng.uniform(0.1, 0.35),
        unbounded_probability=rng.uniform(0.05, 0.35),
        n_min_constraints=rng.randint(0, 5),
        n_max_constraints=rng.randint(0, 5),
        well_posed_only=False,
        feasible_only=rng.random() < 0.5)


def _numpy_gate(rng: random.Random) -> ConstraintGraph:
    """Sizes straddling the vectorization gate of the indexed kernel."""
    n = rng.randint(_NUMPY_MIN_N - 6, _NUMPY_MIN_N + 10)
    return random_constraint_graph(
        rng, n,
        edge_probability=rng.uniform(0.05, 0.12),
        unbounded_probability=rng.uniform(0.1, 0.25),
        n_min_constraints=rng.randint(0, 6),
        n_max_constraints=rng.randint(0, 6),
        well_posed_only=rng.random() < 0.7)


def _anchor_dense(rng: random.Random) -> ConstraintGraph:
    """Most operations unbounded: wide bitmasks, many anchor frames."""
    return random_constraint_graph(
        rng, rng.randint(8, 36),
        edge_probability=rng.uniform(0.15, 0.35),
        unbounded_probability=rng.uniform(0.5, 0.85),
        n_min_constraints=rng.randint(0, 4),
        n_max_constraints=rng.randint(0, 4),
        well_posed_only=rng.random() < 0.5)


def _zero_weight_cycle(rng: random.Random) -> ConstraintGraph:
    """Maximum constraints at exactly the longest-path bound.

    Each placed constraint closes a cycle of total weight zero -- the
    tightest consistent bound.  One unit less would make the graph
    unfeasible, so these graphs sit on the boundary the positive-cycle
    walk-length certificates and the ``|Eb| + 1`` iteration bound must
    classify exactly.
    """
    graph = random_dag(rng, rng.randint(6, 30),
                       edge_probability=rng.uniform(0.15, 0.35),
                       unbounded_probability=rng.uniform(0.0, 0.3))
    order = graph.forward_topological_order()
    pairs: List[Tuple[str, str]] = []
    for i, tail in enumerate(order):
        for head in order[i + 1:]:
            if graph.is_forward_reachable(tail, head):
                pairs.append((tail, head))
    rng.shuffle(pairs)
    placed = 0
    for tail, head in pairs:
        if placed >= rng.randint(1, 4):
            break
        span = longest_paths_from(graph, tail)[head]
        if span is NO_PATH or span < 0:
            continue
        slack = 0 if rng.random() < 0.8 else rng.randint(1, 2)
        graph.add_max_constraint(tail, head, span + slack)
        placed += 1
    return graph


def _ill_posed_chain(rng: random.Random) -> ConstraintGraph:
    """Operations hanging off separate anchors, tied by chains of
    maximum constraints -- the Fig. 3(b) pattern generalized.

    ``make_well_posed`` must cascade serializations along the backward
    chains; with probability ~0.25 an anchor is planted *between* the
    endpoints of one constraint (Fig. 3(a)), making the graph
    unrescuable so the ``IllPosedError`` paths get differential
    coverage too.
    """
    graph = ConstraintGraph(source="src", sink="snk")
    n_frames = rng.randint(2, 4)
    frames: List[List[str]] = []
    for f in range(n_frames):
        anchor = f"a{f}"
        graph.add_operation(anchor, UNBOUNDED)
        graph.add_sequencing_edge("src", anchor)
        ops = []
        previous = anchor
        for k in range(rng.randint(1, 3)):
            op = f"f{f}op{k}"
            graph.add_operation(op, rng.randint(0, 6))
            graph.add_sequencing_edge(previous, op)
            previous = op
            ops.append(op)
        frames.append(ops)
    # Backward chains across frames: each maximum constraint races the
    # head frame's unknown anchor delay against the tail frame's.
    n_links = rng.randint(1, n_frames + 1)
    for _ in range(n_links):
        f_from, f_to = rng.sample(range(n_frames), 2)
        graph.add_max_constraint(rng.choice(frames[f_from]),
                                 rng.choice(frames[f_to]),
                                 rng.randint(1, 10))
    if rng.random() < 0.25:
        # Fig. 3(a): an anchor on the path between the endpoints of a
        # maximum constraint -- no serialization can rescue this.
        mid = "amid"
        graph.add_operation(mid, UNBOUNDED)
        before = f"before_{mid}"
        after = f"after_{mid}"
        graph.add_operation(before, rng.randint(1, 4))
        graph.add_operation(after, rng.randint(1, 4))
        graph.add_sequencing_edge("src", before)
        graph.add_sequencing_edge(before, mid)
        graph.add_sequencing_edge(mid, after)
        graph.add_max_constraint(before, after, rng.randint(1, 8))
    graph.make_polar()
    return graph


def _sparse_long_chain(rng: random.Random) -> ConstraintGraph:
    """Long thin graphs: deep topological levels, few parallel edges."""
    return random_constraint_graph(
        rng, rng.randint(40, 90),
        edge_probability=rng.uniform(0.02, 0.05),
        unbounded_probability=rng.uniform(0.05, 0.2),
        n_min_constraints=rng.randint(2, 8),
        n_max_constraints=rng.randint(2, 8),
        well_posed_only=rng.random() < 0.6)


#: scenario name -> builder(rng); insertion order is the rotation order.
SCENARIOS: Dict[str, Callable[[random.Random], ConstraintGraph]] = {
    "well_posed_small": _well_posed_small,
    "constrained_mix": _constrained_mix,
    "numpy_gate": _numpy_gate,
    "anchor_dense": _anchor_dense,
    "zero_weight_cycle": _zero_weight_cycle,
    "ill_posed_chain": _ill_posed_chain,
    "sparse_long_chain": _sparse_long_chain,
}


def generate_case(seed: int, scenario: Optional[str] = None) -> FuzzCase:
    """The deterministic case for *seed*.

    Without *scenario*, seeds rotate through :data:`SCENARIOS` so any
    contiguous seed range covers every scenario evenly.
    """
    names = list(SCENARIOS)
    if scenario is None:
        scenario = names[seed % len(names)]
    builder = SCENARIOS[scenario]
    return FuzzCase(seed=seed, scenario=scenario,
                    graph=builder(random.Random(seed)))


def case_stream(start_seed: int, count: int,
                scenario: Optional[str] = None) -> Iterator[FuzzCase]:
    """*count* deterministic cases starting at *start_seed*."""
    for seed in range(start_seed, start_seed + count):
        yield generate_case(seed, scenario)
