"""Metamorphic + differential fuzzing oracle for the scheduling pipeline.

``generators`` builds adversarial seeded graphs, ``oracle`` runs the
invariant catalogue (cross-kernel equality plus the paper's theorems as
metamorphic properties), ``shrink`` minimizes failures, ``serialize``
round-trips graphs to the JSON regression corpus, and ``fuzz`` is the
CLI: ``python -m repro.qa.fuzz --seed 0 --cases 300``.
"""

from repro.qa.generators import SCENARIOS, FuzzCase, case_stream, generate_case
from repro.qa.oracle import ORACLE_CHECKS, Divergence, run_oracle
from repro.qa.serialize import (
    MAX_ABS_WEIGHT,
    dump_repro,
    graph_from_dict,
    graph_to_dict,
    graphs_equal,
    load_repro,
    validate_graph_dict,
)
from repro.qa.shrink import ShrinkResult, shrink

__all__ = [
    "SCENARIOS",
    "FuzzCase",
    "case_stream",
    "generate_case",
    "ORACLE_CHECKS",
    "Divergence",
    "run_oracle",
    "MAX_ABS_WEIGHT",
    "dump_repro",
    "graph_from_dict",
    "graph_to_dict",
    "graphs_equal",
    "load_repro",
    "validate_graph_dict",
    "ShrinkResult",
    "shrink",
]
