"""JSON (de)serialization of constraint graphs for the regression corpus.

A serialized graph is a plain dict (stable key order, JSON-friendly
types) that reconstructs the graph *exactly*: same vertex insertion
order, same edge insertion order, same delays, weights and edge kinds.
Determinism matters because every analysis iterates vertices and edges
in insertion order, so a repro that only matched up to reordering could
fail to reproduce the divergence it was shrunk for.

Unbounded delays/weights are spelled ``"unbounded"``; maximum timing
constraints are stored as their graph edge (the backward ``(to, from)``
edge with weight ``-u``) and rebuilt through the public
:meth:`ConstraintGraph.add_max_constraint` API.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.delay import UNBOUNDED, is_unbounded
from repro.core.graph import ConstraintGraph, EdgeKind

#: Schema version stamped into every repro file, so a future format
#: change can keep replaying the existing corpus.
FORMAT_VERSION = 1


def _delay_to_json(delay) -> Union[int, str]:
    return "unbounded" if is_unbounded(delay) else delay


def _delay_from_json(value):
    return UNBOUNDED if value == "unbounded" else value


def graph_to_dict(graph: ConstraintGraph) -> Dict[str, Any]:
    """Serialize *graph* to a JSON-compatible dict (see module docs)."""
    vertices = []
    for vertex in graph.vertices():
        record: Dict[str, Any] = {
            "name": vertex.name,
            "delay": _delay_to_json(vertex.delay),
        }
        if vertex.tag is not None:
            record["tag"] = vertex.tag
        vertices.append(record)
    edges = []
    for edge in graph.edges():
        edges.append({
            "tail": edge.tail,
            "head": edge.head,
            "weight": _delay_to_json(edge.weight),
            "kind": edge.kind.value,
        })
    return {
        "format": FORMAT_VERSION,
        "source": graph.source,
        "sink": graph.sink,
        "vertices": vertices,
        "edges": edges,
    }


def graph_from_dict(data: Dict[str, Any]) -> ConstraintGraph:
    """Rebuild the graph serialized by :func:`graph_to_dict`.

    Vertices and edges are re-added in the recorded order through the
    public construction API, so derived weights (sequencing and
    serialization edges carry ``delta(tail)``) are re-derived and the
    rebuilt graph is indistinguishable from the original.
    """
    source = data["source"]
    sink = data["sink"]
    delays = {record["name"]: _delay_from_json(record["delay"])
              for record in data["vertices"]}
    graph = ConstraintGraph(source=source, sink=sink,
                            sink_delay=delays.get(sink, 0))
    for record in data["vertices"]:
        if record["name"] in (source, sink):
            continue
        graph.add_operation(record["name"], _delay_from_json(record["delay"]),
                            tag=record.get("tag"))
    for record in data["edges"]:
        kind = EdgeKind(record["kind"])
        tail, head = record["tail"], record["head"]
        weight = _delay_from_json(record["weight"])
        if kind is EdgeKind.SEQUENCING:
            graph.add_sequencing_edge(tail, head)
        elif kind is EdgeKind.MIN_TIME:
            graph.add_min_constraint(tail, head, weight)
        elif kind is EdgeKind.MAX_TIME:
            # Stored as the backward graph edge (to, from) with -u.
            graph.add_max_constraint(head, tail, -weight)
        elif kind is EdgeKind.SERIALIZATION:
            graph.add_serialization_edge(tail, head)
        else:  # pragma: no cover - EdgeKind() above already raised
            raise ValueError(f"unknown edge kind {record['kind']!r}")
    return graph


def graphs_equal(a: ConstraintGraph, b: ConstraintGraph) -> bool:
    """Structural equality: same polarity, ordered vertices and edges."""
    return graph_to_dict(a) == graph_to_dict(b)


def dump_repro(path: Union[str, Path], graph: ConstraintGraph, *,
               check: str, message: str, seed: int, scenario: str) -> None:
    """Write a shrunk failing graph plus its divergence metadata."""
    payload = {
        "check": check,
        "message": message,
        "seed": seed,
        "scenario": scenario,
        "graph": graph_to_dict(graph),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_repro(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a repro file back; ``result["graph"]`` stays a dict (use
    :func:`graph_from_dict` to instantiate it)."""
    return json.loads(Path(path).read_text())
