"""JSON (de)serialization of constraint graphs for the regression corpus.

A serialized graph is a plain dict (stable key order, JSON-friendly
types) that reconstructs the graph *exactly*: same vertex insertion
order, same edge insertion order, same delays, weights and edge kinds.
Determinism matters because every analysis iterates vertices and edges
in insertion order, so a repro that only matched up to reordering could
fail to reproduce the divergence it was shrunk for.

Unbounded delays/weights are spelled ``"unbounded"``; maximum timing
constraints are stored as their graph edge (the backward ``(to, from)``
edge with weight ``-u``) and rebuilt through the public
:meth:`ConstraintGraph.add_max_constraint` API.

Deserialization validates structurally before touching the graph API
(:func:`validate_graph_dict`): missing keys, wrong types, NaN or
astronomically large weights, self-loops, duplicate vertices and
undeclared edge endpoints all raise
:class:`~repro.core.exceptions.MalformedInputError` (a taxonomy error
the CLI contract already covers) instead of leaking ``KeyError`` /
``TypeError`` from deep inside reconstruction.  *Strict* mode -- for
input from outside the trust boundary -- additionally rejects exact
duplicate edges; the default mode keeps them, because parallel edges
are legal in the graph model and round-tripping a legitimate graph must
never fail.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.delay import UNBOUNDED, Delay, is_unbounded
from repro.core.exceptions import ConstraintGraphError, MalformedInputError
from repro.core.graph import ConstraintGraph, EdgeKind

#: Schema version stamped into every repro file, so a future format
#: change can keep replaying the existing corpus.
FORMAT_VERSION = 1

#: Largest weight/delay magnitude accepted from serialized input.  All
#: analyses do exact integer arithmetic, so correctness is not at risk;
#: the cap stops adversarial inputs from driving longest-path sums into
#: numbers whose mere formatting is quadratic.  2**53 is far beyond any
#: cycle count that can be simulated and is exactly representable even
#: if a consumer lowers weights to doubles.
MAX_ABS_WEIGHT = 2 ** 53


def _delay_to_json(delay: Delay) -> Union[int, str]:
    return "unbounded" if is_unbounded(delay) else int(delay)


def _delay_from_json(value: Union[int, str]) -> Delay:
    return UNBOUNDED if value == "unbounded" else int(value)


def graph_to_dict(graph: ConstraintGraph) -> Dict[str, Any]:
    """Serialize *graph* to a JSON-compatible dict (see module docs)."""
    vertices = []
    for vertex in graph.vertices():
        record: Dict[str, Any] = {
            "name": vertex.name,
            "delay": _delay_to_json(vertex.delay),
        }
        if vertex.tag is not None:
            record["tag"] = vertex.tag
        vertices.append(record)
    edges = []
    for edge in graph.edges():
        edges.append({
            "tail": edge.tail,
            "head": edge.head,
            "weight": _delay_to_json(edge.weight),
            "kind": edge.kind.value,
        })
    return {
        "format": FORMAT_VERSION,
        "source": graph.source,
        "sink": graph.sink,
        "vertices": vertices,
        "edges": edges,
    }


def _check_weight(value: Any, what: str, *, allow_negative: bool) -> None:
    """One serialized delay/weight: ``"unbounded"`` or a sane integer."""
    if value == "unbounded":
        return
    if isinstance(value, bool) or not isinstance(value, int):
        raise MalformedInputError(
            f"{what} must be an integer or \"unbounded\", got {value!r}")
    if not allow_negative and value < 0:
        raise MalformedInputError(f"{what} must be non-negative, got {value}")
    if abs(value) > MAX_ABS_WEIGHT:
        raise MalformedInputError(
            f"{what} magnitude {abs(value)} exceeds the cap 2**53")


def validate_graph_dict(data: Any, *, strict: bool = False) -> None:
    """Structurally validate a serialized graph before rebuilding it.

    Checks everything :func:`graph_from_dict` would otherwise trip over
    at an arbitrary depth: required keys, value types, NaN / non-integer
    / oversized weights, duplicate vertex names, self-loop edges,
    undeclared edge endpoints, unknown edge kinds, and a source or sink
    missing from the vertex list.

    Args:
        data: the candidate payload (any JSON value).
        strict: additionally reject exact duplicate edges.  Off by
            default because parallel edges are legal in the graph model
            and every legitimate round-trip must keep succeeding.

    Raises:
        MalformedInputError: naming the first problem found.
    """
    if not isinstance(data, dict):
        raise MalformedInputError(
            f"serialized graph must be an object, got {type(data).__name__}")
    missing = [key for key in ("source", "sink", "vertices", "edges")
               if key not in data]
    if missing:
        raise MalformedInputError(
            f"serialized graph misses required key(s) {missing}")
    if "format" in data and data["format"] != FORMAT_VERSION:
        raise MalformedInputError(
            f"serialized graph declares format {data['format']!r}; this "
            f"build reads format {FORMAT_VERSION}")
    source, sink = data["source"], data["sink"]
    for label, value in (("source", source), ("sink", sink)):
        if not isinstance(value, str) or not value:
            raise MalformedInputError(
                f"serialized graph {label} must be a non-empty string, "
                f"got {value!r}")
    if not isinstance(data["vertices"], list):
        raise MalformedInputError("serialized graph \"vertices\" must be a list")
    if not isinstance(data["edges"], list):
        raise MalformedInputError("serialized graph \"edges\" must be a list")

    names = set()
    for index, record in enumerate(data["vertices"]):
        if not isinstance(record, dict):
            raise MalformedInputError(
                f"vertex #{index} must be an object, got {type(record).__name__}")
        if "name" not in record or "delay" not in record:
            raise MalformedInputError(
                f"vertex #{index} misses required key(s) "
                f"{[k for k in ('name', 'delay') if k not in record]}")
        name = record["name"]
        if not isinstance(name, str) or not name:
            raise MalformedInputError(
                f"vertex #{index} name must be a non-empty string, got {name!r}")
        if name in names:
            raise MalformedInputError(f"duplicate vertex {name!r}")
        names.add(name)
        _check_weight(record["delay"], f"delay of vertex {name!r}",
                      allow_negative=False)
        if "tag" in record and not isinstance(record["tag"], str):
            raise MalformedInputError(
                f"tag of vertex {name!r} must be a string, got {record['tag']!r}")
    for label, value in (("source", source), ("sink", sink)):
        if value not in names:
            raise MalformedInputError(
                f"{label} {value!r} is not in the vertex list")

    kinds = {kind.value for kind in EdgeKind}
    seen_edges = set()
    for index, record in enumerate(data["edges"]):
        if not isinstance(record, dict):
            raise MalformedInputError(
                f"edge #{index} must be an object, got {type(record).__name__}")
        missing = [k for k in ("tail", "head", "weight", "kind")
                   if k not in record]
        if missing:
            raise MalformedInputError(
                f"edge #{index} misses required key(s) {missing}")
        tail, head = record["tail"], record["head"]
        for end, value in (("tail", tail), ("head", head)):
            if not isinstance(value, str):
                raise MalformedInputError(
                    f"edge #{index} {end} must be a string, got {value!r}")
            if value not in names:
                raise MalformedInputError(
                    f"edge #{index} {end} {value!r} is not a declared vertex")
        if tail == head:
            raise MalformedInputError(
                f"edge #{index} is a self-loop on {tail!r}")
        if record["kind"] not in kinds:
            raise MalformedInputError(
                f"edge #{index} has unknown kind {record['kind']!r} "
                f"(expected one of {sorted(kinds)})")
        _check_weight(record["weight"], f"weight of edge #{index}",
                      allow_negative=True)
        if strict:
            key = (tail, head, record["kind"],
                   str(record["weight"]))
            if key in seen_edges:
                raise MalformedInputError(
                    f"edge #{index} duplicates an earlier "
                    f"{record['kind']} edge {tail!r}->{head!r}")
            seen_edges.add(key)


def graph_from_dict(data: Dict[str, Any], *, strict: bool = False) -> ConstraintGraph:
    """Rebuild the graph serialized by :func:`graph_to_dict`.

    Vertices and edges are re-added in the recorded order through the
    public construction API, so derived weights (sequencing and
    serialization edges carry ``delta(tail)``) are re-derived and the
    rebuilt graph is indistinguishable from the original.

    The payload is validated first (:func:`validate_graph_dict`); any
    problem -- structural, or caught later by the graph construction
    API -- surfaces as a taxonomy error, never a raw ``KeyError`` /
    ``TypeError``.
    """
    validate_graph_dict(data, strict=strict)
    try:
        return _graph_from_valid_dict(data)
    except ConstraintGraphError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise MalformedInputError(
            f"serialized graph failed to reconstruct: "
            f"{type(error).__name__}: {error}") from error


def _graph_from_valid_dict(data: Dict[str, Any]) -> ConstraintGraph:
    source = data["source"]
    sink = data["sink"]
    delays = {record["name"]: _delay_from_json(record["delay"])
              for record in data["vertices"]}
    graph = ConstraintGraph(source=source, sink=sink,
                            sink_delay=delays.get(sink, 0))
    for record in data["vertices"]:
        if record["name"] in (source, sink):
            continue
        graph.add_operation(record["name"], _delay_from_json(record["delay"]),
                            tag=record.get("tag"))
    for record in data["edges"]:
        kind = EdgeKind(record["kind"])
        tail, head = record["tail"], record["head"]
        weight = _delay_from_json(record["weight"])
        if kind is EdgeKind.SEQUENCING:
            graph.add_sequencing_edge(tail, head)
        elif kind is EdgeKind.MIN_TIME:
            graph.add_min_constraint(tail, head, weight)
        elif kind is EdgeKind.MAX_TIME:
            # Stored as the backward graph edge (to, from) with -u.
            graph.add_max_constraint(head, tail, -weight)
        elif kind is EdgeKind.SERIALIZATION:
            graph.add_serialization_edge(tail, head)
        else:  # pragma: no cover - EdgeKind() above already raised
            raise ValueError(f"unknown edge kind {record['kind']!r}")
    return graph


def graphs_equal(a: ConstraintGraph, b: ConstraintGraph) -> bool:
    """Structural equality: same polarity, ordered vertices and edges."""
    return graph_to_dict(a) == graph_to_dict(b)


def dump_repro(path: Union[str, Path], graph: ConstraintGraph, *,
               check: str, message: str, seed: int, scenario: str) -> None:
    """Write a shrunk failing graph plus its divergence metadata."""
    payload = {
        "check": check,
        "message": message,
        "seed": seed,
        "scenario": scenario,
        "graph": graph_to_dict(graph),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_repro(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a repro file back; ``result["graph"]`` stays a dict (use
    :func:`graph_from_dict` to instantiate it)."""
    return json.loads(Path(path).read_text())
